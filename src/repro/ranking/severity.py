"""Severity stratification and grouping (§9).

"We try to approximate the ideal ranking by first stratifying errors based
on their severity, then sorting within each class ..."

"Errors annotated with SECURITY are ranked highest, those annotated with
ERROR are ranked next, and those annotated with MINOR are ranked last."

"We also group all errors that are computed from a common analysis fact
into the same class.  For example, all use-after-free errors that involve
the same freeing function are placed in the same class.  Such grouping
makes it easy to suppress them all if the analysis is wrong."
"""

from repro.engine.errors import SEVERITY_ORDER
from repro.ranking.generic import generic_sort_key

#: Error kinds implementers "almost always fix first": hard to diagnose
#: with testing (§9).  Lower = more severe.
HARD_TO_TEST = ("use-after-free", "missing-unlock", "security-hole")


def severity_class(report):
    """0 for SECURITY, 1 for ERROR, 2 unannotated, 3 for MINOR."""
    return SEVERITY_ORDER.get(report.severity, 2)


def stratify(reports):
    """Order reports severity-class-first, generic criteria within each.

    Returns the flat ranked list; use :func:`group_by_rule` for the
    common-analysis-fact view.
    """
    return sorted(reports, key=lambda r: (severity_class(r),) + generic_sort_key(r))


def group_by_rule(reports):
    """Group errors computed from a common analysis fact (their rule_id)."""
    groups = {}
    for report in reports:
        groups.setdefault(report.rule_id, []).append(report)
    return groups


def suppress_rule(reports, rule_id):
    """Drop a whole group at once ("easy to suppress them all if the
    analysis is wrong").  One-shot wrapper over the triage predicate
    (:mod:`repro.reports.triage`), which is where persistent rule
    suppressions live."""
    from repro.reports.triage import TriageEntry, TriageStore

    return TriageStore([TriageEntry("rule", rule_id)]).filter(reports)
