"""The lock checker (Figure 3): path-specific transitions and
``$end_of_path$``.

Warns when locks are (1) released without being acquired, (2) double
acquired, or (3) not released at all.  ``trylock`` (non-blocking
acquisition, returns 1 on success) drives the path-specific transition:
locked on the true path, dropped on the false path.
"""

from repro.metal import compile_metal

LOCK_CHECKER_SOURCE = """
sm lock_checker {
 state decl any_pointer l;

 start:
    { trylock(l) } ==> true=l.locked, false=l.stop
  | { lock(l) } ==> l.locked
  | { unlock(l) } ==> l.stop,
    { err("releasing lock %s without acquiring it!", mc_identifier(l)); }
  ;

 l.locked:
    { unlock(l) } ==> l.stop
  | { lock(l) } ==> l.locked,
    { err("double acquire of lock %s!", mc_identifier(l)); }
  | { trylock(l) } ==> l.locked,
    { err("double acquire of lock %s!", mc_identifier(l)); }
  | $end_of_path$ ==> l.stop,
    { err("lock %s never released!", mc_identifier(l)); }
  ;
}
"""


def lock_checker(lock_fn="lock", unlock_fn="unlock", trylock_fn="trylock"):
    """The Figure 3 checker; the function names are parameters so the same
    machine checks spin_lock/spin_unlock, mutex_lock/mutex_unlock, etc."""
    source = LOCK_CHECKER_SOURCE
    if (lock_fn, unlock_fn, trylock_fn) != ("lock", "unlock", "trylock"):
        source = (
            source.replace("trylock", trylock_fn)
            .replace("unlock", unlock_fn)
            .replace(" lock(", " %s(" % lock_fn)
            .replace("{ lock(", "{ %s(" % lock_fn)
        )
    return compile_metal(source)


def counting_lock_checker(lock_fn="lock", unlock_fn="unlock", max_depth=4):
    """The §3.2 recursive-lock variant: C code actions track the lock
    depth in the instance's data value; depth below zero or above a small
    constant is an incorrect pairing."""
    from repro.metal import ANY_POINTER, Extension

    ext = Extension("counting_lock_checker")
    ext.state_var("l", ANY_POINTER)

    def acquire(ctx):
        depth = ctx.get_data("depth", 0) + 1
        ctx.set_data("depth", depth)
        if depth > max_depth:
            ctx.err("lock %s acquired %d times (max %d)!",
                    ctx.identifier("l"), depth, max_depth)
            ctx.set_instance_state("stop")

    def release(ctx):
        depth = ctx.get_data("depth", 0) - 1
        ctx.set_data("depth", depth)
        if depth < 0:
            ctx.err("releasing lock %s more times than acquired!",
                    ctx.identifier("l"))
            ctx.set_instance_state("stop")

    def leaked(ctx):
        depth = ctx.get_data("depth", 0)
        if depth > 0:
            ctx.err("lock %s still held %d deep at path end!",
                    ctx.identifier("l"), depth)

    ext.transition("start", "{ %s(l) }" % lock_fn, to="l.held", action=_seed_depth)
    ext.transition("start", "{ %s(l) }" % unlock_fn, to="l.stop",
                   action=lambda ctx: ctx.err(
                       "releasing lock %s without acquiring it!",
                       ctx.identifier("l")))
    ext.transition("l.held", "{ %s(l) }" % lock_fn, action=acquire)
    ext.transition("l.held", "{ %s(l) }" % unlock_fn, action=release)
    ext.transition("l.held", "$end_of_path$", to="l.stop", action=leaked)
    return ext


def _seed_depth(ctx):
    ctx.set_data("depth", 1)
