"""Error reports and the report log.

Checkers report "not only what the error was, but also why" (§3.2); every
report carries the inputs the ranking stage (§9) needs: the distance from
where checking began, the number of conditionals crossed, the synonym
chain length, and whether the error is local or interprocedural.
"""

from repro.cfront.source import UNKNOWN_LOCATION

#: Severity annotations (§9): SECURITY ranks highest, then ERROR, then
#: unannotated, then MINOR.
SEVERITY_ORDER = {"SECURITY": 0, "ERROR": 1, None: 2, "MINOR": 3}


class ErrorReport:
    """One rule violation."""

    def __init__(
        self,
        checker,
        message,
        location=None,
        function=None,
        origin_location=None,
        conditionals=0,
        synonym_chain=0,
        call_chain=0,
        severity=None,
        rule_id=None,
        variable=None,
        trace=None,
    ):
        self.checker = checker
        self.message = message
        self.location = location or UNKNOWN_LOCATION
        self.function = function
        #: Where the extension started checking the property (§9 "Distance").
        self.origin_location = origin_location
        self.conditionals = conditionals
        self.synonym_chain = synonym_chain
        #: Length of the shortest call chain causing the error; 0 == local.
        self.call_chain = call_chain
        self.severity = severity
        #: The "common analysis fact" for grouping (§9), e.g. the freeing
        #: function's name for a use-after-free report.
        self.rule_id = rule_id
        #: Names of variables involved, for history matching (§8).
        self.variable = variable
        #: The "why" trace (§3.2): (event, location) steps since tracking
        #: began -- "checkers must report not only what the error was, but
        #: also why the error occurred."
        self.trace = list(trace or [])

    @property
    def is_local(self):
        return self.call_chain == 0

    @property
    def distance(self):
        """Line distance between the error and where checking began."""
        if self.origin_location is None:
            return 0
        if self.origin_location.filename != self.location.filename:
            return 1000  # cross-file: strictly worse than any local span
        return abs(self.location.line - self.origin_location.line)

    def identity(self):
        """The dedup key: DFS path enumeration revisits program points."""
        return (
            self.checker,
            self.message,
            self.location.filename,
            self.location.line,
            self.location.column,
        )

    def history_key(self):
        """The cross-version matching key (§8 History): file name, function
        name, variable names, and the error itself -- fields "relatively
        invariant under edits (unlike, for example, line numbers)"."""
        return (self.checker, self.location.filename, self.function,
                self.variable, self.message)

    def __repr__(self):
        return "<%s %s:%d %s>" % (
            self.checker,
            self.location.filename,
            self.location.line,
            self.message,
        )

    def format(self):
        parts = ["%s: %s: %s" % (self.location, self.checker, self.message)]
        if self.function:
            parts.append("in %s" % self.function)
        if self.origin_location is not None:
            parts.append("property began at %s" % (self.origin_location,))
        return " ".join(parts)

    def format_trace(self):
        """The multi-line why-trace for inspection (one step per line)."""
        lines = [self.format()]
        for event, location in self.trace:
            where = " at %s" % location if location is not None else ""
            lines.append("    %s%s" % (event, where))
        return "\n".join(lines)


class ErrorLog:
    """Collects reports, deduplicating path-revisit duplicates, and keeps
    the example/counterexample counters statistical ranking uses (§9)."""

    def __init__(self):
        self.reports = []
        self._seen = set()
        # rule_id -> set of example sites / counterexample sites.
        self.examples = {}
        self.counterexamples = {}
        self._scopes = []

    def push_scope(self):
        """Open a root-local capture scope (incremental artifact capture).

        Deduplication and example/counterexample accounting restart from
        empty, so everything recorded until :meth:`pop_scope` is exactly
        one root's *independent* contribution -- reports another root
        already produced are recorded again rather than suppressed.  The
        final log is rebuilt by replaying the per-root contributions in
        serial order through a fresh log, which re-applies global
        deduplication at exactly the points a plain serial run would.
        """
        self._scopes.append((self._seen, self.examples, self.counterexamples))
        self._seen = set()
        self.examples = {}
        self.counterexamples = {}

    def pop_scope(self):
        """Close the innermost scope; returns ``(examples_delta,
        counterexamples_delta)`` and folds them back into the outer
        accounting (so whole-log totals stay correct)."""
        examples_delta, counterexamples_delta = self.examples, self.counterexamples
        self._seen, self.examples, self.counterexamples = self._scopes.pop()
        for rule_id, sites in examples_delta.items():
            self.examples.setdefault(rule_id, set()).update(sites)
        for rule_id, sites in counterexamples_delta.items():
            self.counterexamples.setdefault(rule_id, set()).update(sites)
        return examples_delta, counterexamples_delta

    def add(self, report):
        key = report.identity()
        if key in self._seen:
            return None
        self._seen.add(key)
        self.reports.append(report)
        return report

    def count_example(self, rule_id, site):
        """Record one successful check of ``rule_id`` at ``site``."""
        self.examples.setdefault(rule_id, set()).add(_site_key(site))

    def count_violation(self, rule_id, site):
        """Record one violation of ``rule_id`` at ``site``."""
        self.counterexamples.setdefault(rule_id, set()).add(_site_key(site))

    def rule_counts(self, rule_id):
        """(examples, counterexamples) distinct-site counts for a rule."""
        return (
            len(self.examples.get(rule_id, ())),
            len(self.counterexamples.get(rule_id, ())),
        )

    def __len__(self):
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)


def _site_key(site):
    if site is None:
        return None
    if hasattr(site, "filename"):
        return (site.filename, site.line, site.column)
    return site
