"""A lightweight C preprocessor.

Implements the directives systems code actually leans on: object- and
function-like ``#define`` (with ``#``/``##`` left out -- stringize/paste are
rare in the code the analyses target and are rejected loudly rather than
mis-expanded), ``#undef``, ``#include`` (with an include-path search),
``#if``/``#ifdef``/``#ifndef``/``#elif``/``#else``/``#endif`` with
``defined()``, and ``#error``.  Unknown directives (``#pragma`` ...) are
skipped.

The output is a token list suitable for :class:`repro.cfront.parser.Parser`
plus the text form (for size accounting in the two-pass driver).
"""

import os

from repro.cfront.lexer import Lexer, Token, TokenKind, parse_int_constant
from repro.cfront.source import PreprocessorError


class Macro:
    """A macro definition."""

    def __init__(self, name, body, params=None, varargs=False):
        self.name = name
        self.body = list(body)  # tokens
        self.params = params  # None => object-like
        self.varargs = varargs

    @property
    def function_like(self):
        return self.params is not None


class Preprocessor:
    """Expands one file (and its includes) into a flat token stream."""

    def __init__(self, include_paths=(), defines=None, file_reader=None):
        self.include_paths = list(include_paths)
        self.macros = {}
        self.file_reader = file_reader or _read_file
        self.included = set()
        for name, value in (defines or {}).items():
            body = Lexer(str(value), "<cmdline>").tokens()[:-1]
            self.macros[name] = Macro(name, body)

    # -- public API ---------------------------------------------------------

    def preprocess_text(self, text, filename="<string>"):
        """Preprocess source text; returns the output token list (no EOF)."""
        lines = self._directive_lines(text, filename)
        return self._process_lines(lines, filename)

    def preprocess_file(self, path):
        text = self.file_reader(path)
        return self.preprocess_text(text, path)

    # -- line splitting -------------------------------------------------------

    def _directive_lines(self, text, filename):
        """Split the token stream into logical lines, tagging directives."""
        lexer = Lexer(text, filename, emit_newlines=True)
        tokens = lexer.tokens()
        lines = []
        current = []
        is_directive = False
        for token in tokens:
            if token.kind in (TokenKind.NEWLINE, TokenKind.EOF):
                if current or is_directive:
                    lines.append((is_directive, current))
                current = []
                is_directive = False
                if token.kind is TokenKind.EOF:
                    break
            elif token.kind is TokenKind.HASH and not current:
                is_directive = True
            else:
                current.append(token)
        return lines

    # -- conditional / directive machinery ---------------------------------------

    def _process_lines(self, lines, filename):
        output = []
        # Conditional stack entries: [taken_now, ever_taken, seen_else]
        stack = []

        def active():
            return all(entry[0] for entry in stack)

        for is_directive, tokens in lines:
            if is_directive:
                name = tokens[0].value if tokens else ""
                rest = tokens[1:]
                if name == "ifdef" or name == "ifndef":
                    defined = bool(rest) and rest[0].value in self.macros
                    taken = defined if name == "ifdef" else not defined
                    stack.append([taken and active(), taken, False])
                elif name == "if":
                    taken = bool(self._evaluate_condition(rest)) if active() else False
                    stack.append([taken and active(), taken, False])
                elif name == "elif":
                    if not stack:
                        raise PreprocessorError("#elif without #if", _loc(tokens))
                    entry = stack.pop()
                    if entry[2]:
                        raise PreprocessorError("#elif after #else", _loc(tokens))
                    parent_active = all(e[0] for e in stack)
                    taken = (
                        not entry[1]
                        and parent_active
                        and bool(self._evaluate_condition(rest))
                    )
                    stack.append([taken, entry[1] or taken, False])
                elif name == "else":
                    if not stack:
                        raise PreprocessorError("#else without #if", _loc(tokens))
                    entry = stack.pop()
                    parent_active = all(e[0] for e in stack)
                    stack.append([not entry[1] and parent_active, True, True])
                elif name == "endif":
                    if not stack:
                        raise PreprocessorError("#endif without #if", _loc(tokens))
                    stack.pop()
                elif not active():
                    continue
                elif name == "define":
                    self._handle_define(rest)
                elif name == "undef":
                    if rest:
                        self.macros.pop(rest[0].value, None)
                elif name == "include":
                    output.extend(self._handle_include(rest))
                elif name == "error":
                    message = " ".join(t.value for t in rest)
                    raise PreprocessorError("#error %s" % message, _loc(tokens))
                else:
                    pass  # pragma, line, warning: ignore
            else:
                if active():
                    output.extend(self._expand(tokens))
        if stack:
            raise PreprocessorError("unterminated conditional", None)
        return output

    def _handle_define(self, tokens):
        if not tokens:
            raise PreprocessorError("empty #define", None)
        name_token = tokens[0]
        name = name_token.value
        rest = tokens[1:]
        # Function-like iff '(' immediately follows the name (no space).
        if rest and rest[0].is_punct("(") and not rest[0].preceded_by_space:
            params = []
            varargs = False
            index = 1
            if not rest[index].is_punct(")"):
                while True:
                    token = rest[index]
                    if token.is_punct("..."):
                        varargs = True
                        index += 1
                        break
                    params.append(token.value)
                    index += 1
                    if rest[index].is_punct(","):
                        index += 1
                    else:
                        break
            if not rest[index].is_punct(")"):
                raise PreprocessorError(
                    "malformed macro parameter list for %r" % name, name_token.location
                )
            body = rest[index + 1 :]
            self.macros[name] = Macro(name, body, params, varargs)
        else:
            self.macros[name] = Macro(name, rest)

    def _handle_include(self, tokens):
        if not tokens:
            raise PreprocessorError("empty #include", None)
        first = tokens[0]
        if first.kind is TokenKind.STRING:
            target = first.value[1:-1]
            system = False
        elif first.is_punct("<"):
            target = "".join(t.value for t in tokens[1:-1])
            system = True
        else:
            raise PreprocessorError("malformed #include", first.location)
        path = self._find_include(target)
        if path is None:
            if system:
                return []  # unresolved system headers are silently skipped
            raise PreprocessorError("cannot find include file %r" % target, first.location)
        if path in self.included:
            return []  # simple include-once; sufficient for our workloads
        self.included.add(path)
        text = self.file_reader(path)
        lines = self._directive_lines(text, path)
        return self._process_lines(lines, path)

    def _find_include(self, target):
        for base in self.include_paths:
            candidate = os.path.join(base, target)
            if self._readable(candidate):
                return candidate
        if self._readable(target):
            return target
        return None

    def _readable(self, path):
        try:
            self.file_reader(path)
            return True
        except (OSError, KeyError):
            return False

    # -- macro expansion -----------------------------------------------------------

    def _expand(self, tokens, hide=frozenset()):
        """Expand macros in a token list (with recursion hiding)."""
        output = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token.kind is not TokenKind.IDENT or token.value in hide:
                output.append(token)
                index += 1
                continue
            macro = self.macros.get(token.value)
            if macro is None:
                output.append(token)
                index += 1
                continue
            if macro.function_like:
                # Needs a following '('; otherwise the name is ordinary.
                if index + 1 >= len(tokens) or not tokens[index + 1].is_punct("("):
                    output.append(token)
                    index += 1
                    continue
                args, consumed = self._collect_arguments(tokens, index + 1, token)
                expanded = self._substitute(macro, args, token)
                output.extend(self._expand(expanded, hide | {macro.name}))
                index += consumed + 1
            else:
                body = [_relocate(t, token.location) for t in macro.body]
                output.extend(self._expand(body, hide | {macro.name}))
                index += 1
        return output

    def _collect_arguments(self, tokens, open_index, name_token):
        """Collect macro call arguments; returns (args, tokens_consumed)."""
        assert tokens[open_index].is_punct("(")
        args = [[]]
        depth = 0
        index = open_index
        while index < len(tokens):
            token = tokens[index]
            if token.is_punct("("):
                depth += 1
                if depth > 1:
                    args[-1].append(token)
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    consumed = index - open_index + 1
                    if args == [[]]:
                        args = []
                    return args, consumed
                args[-1].append(token)
            elif token.is_punct(",") and depth == 1:
                args.append([])
            else:
                args[-1].append(token)
            index += 1
        raise PreprocessorError(
            "unterminated macro invocation of %r" % name_token.value, name_token.location
        )

    def _substitute(self, macro, args, name_token):
        if macro.varargs:
            fixed = len(macro.params)
            va = args[fixed:]
            args = args[:fixed]
            va_tokens = []
            for i, arg in enumerate(va):
                if i:
                    va_tokens.append(Token(TokenKind.PUNCT, ",", name_token.location))
                va_tokens.extend(arg)
        if len(args) < len(macro.params):
            args = args + [[] for _ in range(len(macro.params) - len(args))]
        mapping = dict(zip(macro.params, args))
        output = []
        for token in macro.body:
            if token.is_punct("#", "##"):
                raise PreprocessorError(
                    "stringize/paste (#/##) not supported in macro %r" % macro.name,
                    name_token.location,
                )
            if token.kind is TokenKind.IDENT and token.value in mapping:
                output.extend(
                    _relocate(t, name_token.location) for t in self._expand(mapping[token.value])
                )
            elif macro.varargs and token.is_ident("__VA_ARGS__"):
                output.extend(_relocate(t, name_token.location) for t in va_tokens)
            else:
                output.append(_relocate(token, name_token.location))
        return output

    # -- conditional expressions ------------------------------------------------------

    def _evaluate_condition(self, tokens):
        """Evaluate a #if expression after macro expansion and defined()."""
        tokens = self._expand_defined(tokens)
        tokens = self._expand(tokens)
        evaluator = _CondParser(tokens)
        value = evaluator.parse()
        return value

    def _expand_defined(self, tokens):
        output = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token.is_ident("defined"):
                if index + 1 < len(tokens) and tokens[index + 1].is_punct("("):
                    name = tokens[index + 2].value
                    index += 4
                else:
                    name = tokens[index + 1].value
                    index += 2
                value = "1" if name in self.macros else "0"
                output.append(Token(TokenKind.INT_CONST, value, token.location))
            else:
                output.append(token)
                index += 1
        return output


class _CondParser:
    """A tiny Pratt evaluator for integer #if expressions."""

    _BINOPS = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return Token(TokenKind.EOF, "")

    def advance(self):
        token = self.peek()
        self.pos += 1
        return token

    def parse(self):
        value = self._ternary()
        return value

    def _ternary(self):
        cond = self._binary(0)
        if self.peek().is_punct("?"):
            self.advance()
            then = self._ternary()
            if not self.peek().is_punct(":"):
                raise PreprocessorError("expected ':' in #if expression", self.peek().location)
            self.advance()
            otherwise = self._ternary()
            return then if cond else otherwise
        return cond

    def _binary(self, level):
        if level >= len(self._BINOPS):
            return self._unary()
        ops = self._BINOPS[level]
        left = self._binary(level + 1)
        while self.peek().kind is TokenKind.PUNCT and self.peek().value in ops:
            op = self.advance().value
            right = self._binary(level + 1)
            left = _apply_binop(op, left, right)
        return left

    def _unary(self):
        token = self.peek()
        if token.is_punct("!"):
            self.advance()
            return int(not self._unary())
        if token.is_punct("-"):
            self.advance()
            return -self._unary()
        if token.is_punct("+"):
            self.advance()
            return self._unary()
        if token.is_punct("~"):
            self.advance()
            return ~self._unary()
        if token.is_punct("("):
            self.advance()
            value = self._ternary()
            if not self.peek().is_punct(")"):
                raise PreprocessorError("expected ')' in #if expression", token.location)
            self.advance()
            return value
        if token.kind is TokenKind.INT_CONST:
            self.advance()
            return parse_int_constant(token.value)
        if token.kind is TokenKind.CHAR_CONST:
            self.advance()
            from repro.cfront.lexer import parse_char_constant

            return parse_char_constant(token.value)
        if token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            # Undefined identifiers evaluate to 0, per the standard.
            self.advance()
            return 0
        raise PreprocessorError("bad token in #if expression: %r" % token.value, token.location)


def _apply_binop(op, left, right):
    if op == "||":
        return int(bool(left) or bool(right))
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == ">":
        return int(left > right)
    if op == "<=":
        return int(left <= right)
    if op == ">=":
        return int(left >= right)
    if op == "/":
        return left // right if right else 0
    if op == "%":
        return left % right if right else 0
    return {
        "|": left | right,
        "^": left ^ right,
        "&": left & right,
        "<<": left << right,
        ">>": left >> right,
        "+": left + right,
        "-": left - right,
        "*": left * right,
    }[op]


def _relocate(token, location):
    return Token(token.kind, token.value, location, token.preceded_by_space)


def _loc(tokens):
    return tokens[0].location if tokens else None


def _read_file(path):
    with open(path, "r") as handle:
        return handle.read()


def preprocess(text, filename="<string>", include_paths=(), defines=None, file_reader=None):
    """Preprocess text and return it re-rendered as parseable C source."""
    pp = Preprocessor(include_paths, defines, file_reader)
    tokens = pp.preprocess_text(text, filename)
    return render_tokens(tokens)


def render_tokens(tokens):
    """Render a token list back to compilable text (space-separated)."""
    parts = []
    previous = None
    for token in tokens:
        if previous is not None:
            parts.append(" ")
        parts.append(token.value)
        previous = token
    return "".join(parts)
