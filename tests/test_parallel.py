"""Parallel two-pass driver + persistent AST cache tests (docs/DRIVER.md).

Covers: pass-1 fan-out determinism, cold/warm cache behaviour and
invalidation, call-graph component partitioning, parallel pass-2 report
equivalence with serial runs (byte-identical, same order, same ranking),
serial fallback for unshippable extensions, and the CLI flags.
"""

import json
import os
import random

import pytest

from repro.checkers import free_checker, lock_checker
from repro.cfg.callgraph import CallGraph
from repro.codegen.project_gen import default_checkers, generate_project
from repro.driver.cli import main
from repro.driver.project import Project
from repro.ranking import rank_by_rule_reliability, stratify

TOY_KERNEL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "toy_kernel",
)
TOY_SOURCES = sorted(
    os.path.join(TOY_KERNEL, name)
    for name in os.listdir(TOY_KERNEL)
    if name.endswith(".c")
)
TOY_INCLUDE = os.path.join(TOY_KERNEL, "include")


def toy_checkers():
    """Worker-rebuildable extension list for the toy kernel (the factory
    must be a top-level function so it pickles)."""
    return [free_checker(("kfree",)), lock_checker()]


def toy_project(**kwargs):
    return Project(include_paths=[TOY_INCLUDE], **kwargs)


def report_keys(result):
    return [
        (r.checker, r.message, r.location.filename, r.location.line,
         r.location.column, r.function)
        for r in result.reports
    ]


def write_generated(tmp_path, **kwargs):
    """Materialize a generated project on disk; returns (dir, c-paths)."""
    gen = generate_project(**kwargs)
    for name, text in gen.files.items():
        (tmp_path / name).write_text(text)
    paths = sorted(
        str(tmp_path / name) for name in gen.files if name.endswith(".c")
    )
    return str(tmp_path), paths


class TestCompileFilesParallel:
    def test_parallel_matches_serial(self, tmp_path):
        root, paths = write_generated(tmp_path, seed=3, n_modules=3,
                                      functions_per_module=4)
        serial = Project(include_paths=[root])
        serial.compile_files(paths, jobs=1)
        parallel = Project(include_paths=[root])
        parallel.compile_files(paths, jobs=2)

        assert [c.filename for c in parallel.compiled] == paths
        assert [c.filename for c in serial.compiled] == paths
        assert parallel.total_source_bytes() == serial.total_source_bytes()
        assert set(parallel.callgraph.functions) == set(
            serial.callgraph.functions
        )
        assert parallel.static_vars == serial.static_vars

    def test_results_in_input_order(self):
        project = toy_project()
        compiled = project.compile_files(TOY_SOURCES, jobs=2)
        assert [c.filename for c in compiled] == TOY_SOURCES

    def test_single_file_stays_serial(self):
        project = toy_project()
        project.compile_files(TOY_SOURCES[:1], jobs=4)
        assert len(project.compiled) == 1
        assert project.stats.count("parses") == 1

    def test_unpicklable_reader_falls_back_to_serial(self, tmp_path):
        src = tmp_path / "one.c"
        src.write_text("int f(void) { return 0; }\n")
        two = tmp_path / "two.c"
        two.write_text("int g(void) { return 1; }\n")
        reader = lambda path: open(path).read()  # noqa: E731 -- unpicklable
        project = Project(file_reader=reader)
        project.compile_files([str(src), str(two)], jobs=2)
        assert project.stats.count("pass1_serial_fallback") == 1
        assert len(project.compiled) == 2


class TestAstCache:
    def test_cold_then_warm(self, tmp_path):
        cache = str(tmp_path / "cache")

        cold = toy_project(cache_dir=cache)
        cold.compile_files(TOY_SOURCES)
        n = len(TOY_SOURCES)
        assert cold.stats.count("parses") == n
        assert cold.stats.count("cache_misses") == n
        assert cold.stats.count("cache_hits") == 0

        warm = toy_project(cache_dir=cache)
        warm.compile_files(TOY_SOURCES)
        assert warm.stats.count("cache_hits") == n
        assert warm.stats.count("parses") == 0  # zero re-parses
        assert all(c.from_cache for c in warm.compiled)
        # Size accounting survives cache-hit loads (expansion_ratio /
        # total_source_bytes would silently zero out otherwise).
        assert warm.total_source_bytes() == cold.total_source_bytes() > 0
        assert all(c.emitted_bytes > 0 for c in warm.compiled)
        assert set(warm.callgraph.functions) == set(cold.callgraph.functions)

    def test_warm_hits_under_jobs(self, tmp_path):
        cache = str(tmp_path / "cache")
        toy_project(cache_dir=cache).compile_files(TOY_SOURCES, jobs=2)
        warm = toy_project(cache_dir=cache)
        warm.compile_files(TOY_SOURCES, jobs=2)
        assert warm.stats.count("cache_hits") == len(TOY_SOURCES)
        assert warm.stats.count("parses") == 0

    def test_define_change_invalidates(self, tmp_path):
        cache = str(tmp_path / "cache")
        src = tmp_path / "d.c"
        src.write_text(
            "#ifdef MODE\nint f(void) { return 1; }\n"
            "#else\nint f(void) { return 0; }\n#endif\n"
        )
        first = Project(cache_dir=cache)
        first.compile_files([str(src)])
        assert first.stats.count("cache_misses") == 1

        changed = Project(cache_dir=cache, defines={"MODE": "1"})
        changed.compile_files([str(src)])
        assert changed.stats.count("cache_misses") == 1
        assert changed.stats.count("cache_hits") == 0

        again = Project(cache_dir=cache, defines={"MODE": "1"})
        again.compile_files([str(src)])
        assert again.stats.count("cache_hits") == 1

    def test_header_edit_invalidates_includer(self, tmp_path):
        cache = str(tmp_path / "cache")
        (tmp_path / "h.h").write_text("#define LIMIT 10\n")
        src = tmp_path / "u.c"
        src.write_text('#include "h.h"\nint f(void) { return LIMIT; }\n')

        first = Project(include_paths=[str(tmp_path)], cache_dir=cache)
        first.compile_files([str(src)])
        assert first.stats.count("cache_misses") == 1

        # The cache key hashes the *preprocessed* token stream, so a
        # header edit invalidates every file that saw it.
        (tmp_path / "h.h").write_text("#define LIMIT 20\n")
        second = Project(include_paths=[str(tmp_path)], cache_dir=cache)
        second.compile_files([str(src)])
        assert second.stats.count("cache_misses") == 1
        assert second.stats.count("cache_hits") == 0

    def test_comment_only_edit_still_hits(self, tmp_path):
        cache = str(tmp_path / "cache")
        src = tmp_path / "c.c"
        src.write_text("int f(void) { return 3; }\n")
        Project(cache_dir=cache).compile_files([str(src)])

        src.write_text("/* tweak */\nint f(void) { return 3; }\n")
        warm = Project(cache_dir=cache)
        warm.compile_files([str(src)])
        assert warm.stats.count("cache_hits") == 1


class TestCallGraphComponents:
    def test_partition(self):
        from repro.cfront.parser import parse

        unit = parse(
            "int leaf(int x) { return x; }\n"
            "int a(int x) { return leaf(x); }\n"
            "int b(int x) { return a(x) + external(x); }\n"
            "int lone(int x) { return external(x); }\n"
            "int r1(int x) { return shared(x); }\n"
            "int r2(int x) { return shared(x); }\n"
            "int shared(int x) { return x; }\n"
        )
        graph = CallGraph.from_units([unit])
        assert graph.components() == [
            ["a", "b", "leaf"],
            ["lone"],
            ["r1", "r2", "shared"],
        ]

    def test_components_cover_all_roots(self):
        project = toy_project()
        project.compile_files(TOY_SOURCES)
        graph = project.callgraph
        members = [n for part in graph.components() for n in part]
        assert sorted(members) == sorted(graph.functions)
        for root in graph.roots():
            assert any(root in part for part in graph.components())


class TestParallelAnalysis:
    def test_toy_kernel_matches_serial(self):
        serial = toy_project()
        serial.compile_files(TOY_SOURCES)
        serial_result = serial.run(toy_checkers())

        parallel = toy_project()
        parallel.compile_files(TOY_SOURCES, jobs=2)
        parallel_result = parallel.run(
            toy_checkers(), jobs=2, extension_factory=toy_checkers
        )

        # Same reports, same order -- not just as sets.
        assert report_keys(parallel_result) == report_keys(serial_result)
        assert sorted(report_keys(parallel_result)) == sorted(
            report_keys(serial_result)
        )
        assert parallel.stats.count("pass2_components") > 1
        assert parallel_result.stats["errors"] == serial_result.stats["errors"]

    def test_generated_project_matches_serial(self, tmp_path):
        root, paths = write_generated(
            tmp_path, seed=11, n_modules=3, functions_per_module=5,
            cross_calls=False,
        )

        serial = Project(include_paths=[root])
        serial.compile_files(paths)
        serial_result = serial.run(default_checkers())

        parallel = Project(include_paths=[root])
        parallel.compile_files(paths, jobs=2)
        parallel_result = parallel.run(
            default_checkers(), jobs=2, extension_factory=default_checkers
        )

        assert report_keys(parallel_result) == report_keys(serial_result)

        # Ranking consumes report order and the merged example/violation
        # sites, so identical ranking output is the end-to-end check.
        s_rank = stratify(serial_result.reports)
        p_rank = stratify(parallel_result.reports)
        assert [r.format() for r in p_rank] == [r.format() for r in s_rank]
        s_stat = rank_by_rule_reliability(
            serial_result.reports, serial_result.log
        )
        p_stat = rank_by_rule_reliability(
            parallel_result.reports, parallel_result.log
        )
        assert [r.format() for r in p_stat] == [r.format() for r in s_stat]

    def test_unshippable_extensions_fall_back_to_serial(self):
        project = toy_project()
        project.compile_files(TOY_SOURCES)
        # Checker actions are lambdas: no factory + unpicklable extensions
        # means the parallel scheduler must run the serial engine instead.
        result = project.run(toy_checkers(), jobs=2)
        assert project.stats.count("pass2_serial_fallback") == 1

        serial = toy_project()
        serial.compile_files(TOY_SOURCES)
        assert report_keys(result) == report_keys(serial.run(toy_checkers()))

    def test_single_component_runs_serial(self, tmp_path):
        src = tmp_path / "s.c"
        src.write_text(
            "int helper(int *p) { kfree(p); return 0; }\n"
            "int entry(int *p) { helper(p); return *p; }\n"
        )
        project = Project()
        project.compile_files([str(src)])
        result = project.run(
            toy_checkers(), jobs=2, extension_factory=toy_checkers
        )
        assert project.stats.count("pass2_components") == 0
        assert len(result.reports) == 1


def ranked_report_lines(root, paths, jobs=1, cache_dir=None):
    """One driver configuration end-to-end: the final ranked report text.

    This is the full observable output surface -- ranking consumes report
    order, severities, and the merged example/violation sites, so two
    configurations that agree here agree everywhere a user can see.
    """
    project = Project(include_paths=[root], cache_dir=cache_dir)
    project.compile_files(paths, jobs=jobs)
    result = project.run(
        default_checkers(), jobs=jobs, extension_factory=default_checkers
    )
    return [r.format() for r in stratify(result.reports)]


class TestDifferentialHarness:
    """Differential property test (docs/TESTING.md): for randomized
    generated projects, every driver configuration -- serial, jobs=N,
    cold cache, warm cache -- must produce byte-identical ranked
    reports.  Seeds are drawn from a seeded PRNG so failures replay."""

    SEEDS = sorted(random.Random(0xD1FF).sample(range(10_000), 4))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_modes_agree(self, tmp_path, seed):
        root, paths = write_generated(
            tmp_path, seed=seed, n_modules=2, functions_per_module=4,
            cross_calls=bool(seed % 2),
        )
        cache = str(tmp_path / "cache")

        serial = ranked_report_lines(root, paths)
        assert ranked_report_lines(root, paths, jobs=2) == serial
        assert ranked_report_lines(root, paths, cache_dir=cache) == serial
        # Warm re-run: zero re-parses, still byte-identical.
        warm = Project(include_paths=[root], cache_dir=cache)
        warm.compile_files(paths, jobs=2)
        assert warm.stats.count("parses") == 0
        warm_result = warm.run(
            default_checkers(), jobs=2, extension_factory=default_checkers
        )
        assert [r.format() for r in stratify(warm_result.reports)] == serial

    def test_hypothesis_sweep_if_available(self):
        hypothesis = pytest.importorskip("hypothesis")
        import shutil
        import tempfile

        from hypothesis import strategies as st

        @hypothesis.settings(
            max_examples=6, deadline=None, derandomize=True,
            suppress_health_check=list(hypothesis.HealthCheck),
        )
        @hypothesis.given(
            seed=st.integers(min_value=0, max_value=99_999),
            n_modules=st.integers(min_value=1, max_value=3),
            cross=st.booleans(),
        )
        def check(seed, n_modules, cross):
            # tmp_path is function-scoped, which hypothesis forbids; use
            # a throwaway directory per example instead.
            workdir = tempfile.mkdtemp(prefix="xgcc-diff-")
            try:
                gen = generate_project(
                    seed=seed, n_modules=n_modules, functions_per_module=3,
                    cross_calls=cross,
                )
                for name, text in gen.files.items():
                    with open(os.path.join(workdir, name), "w") as handle:
                        handle.write(text)
                paths = sorted(
                    os.path.join(workdir, name)
                    for name in gen.files
                    if name.endswith(".c")
                )
                serial = ranked_report_lines(workdir, paths)
                assert ranked_report_lines(workdir, paths, jobs=2) == serial
                cache = os.path.join(workdir, "cache")
                assert (
                    ranked_report_lines(workdir, paths, cache_dir=cache)
                    == serial
                )
                assert (
                    ranked_report_lines(
                        workdir, paths, jobs=2, cache_dir=cache
                    )
                    == serial
                )
            finally:
                shutil.rmtree(workdir, ignore_errors=True)

        check()


class TestParallelCLI:
    def test_jobs_flag_matches_serial(self, capsys):
        argv = ["--checker", "lock", "--checker", "free",
                "-I", TOY_INCLUDE] + TOY_SOURCES
        code_serial = main(argv)
        out_serial = capsys.readouterr().out
        code_parallel = main(argv + ["--jobs", "2"])
        out_parallel = capsys.readouterr().out
        assert code_parallel == code_serial == 1
        assert out_parallel == out_serial

    def test_cache_dir_and_stats_json(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        stats_json = str(tmp_path / "stats.json")
        argv = ["--checker", "lock", "-I", TOY_INCLUDE,
                "--cache-dir", cache, "--stats-json", stats_json]
        main(argv + TOY_SOURCES)
        capsys.readouterr()
        first = json.load(open(stats_json))
        assert first["counters"]["parses"] == len(TOY_SOURCES)
        assert first["counters"]["cache_misses"] == len(TOY_SOURCES)
        assert "traverse" in first["timers_s"]
        assert first["engine"]["errors"] == 1

        main(argv + TOY_SOURCES)
        capsys.readouterr()
        second = json.load(open(stats_json))
        assert second["counters"]["cache_hits"] == len(TOY_SOURCES)
        assert "parses" not in second["counters"]

    def test_stats_flag_prints_driver_lines(self, capsys):
        main(["--checker", "lock", "-I", TOY_INCLUDE, "--stats",
              "--jobs", "2"] + TOY_SOURCES)
        err = capsys.readouterr().err
        assert "driver.parses" in err
        assert "driver.pass1_wall_s" in err
        assert "driver.pass2_wall_s" in err
