"""The checker library.

The paper reports "over fifty checkers" across its companion papers; this
package ships the representative set the paper itself discusses -- the two
figures (free, lock) plus the families its prose describes (null/unchecked
allocation, interrupts, user-pointer security, format strings, tainted
indices, path-kill composition, and statistical pair inference).

Every checker is a factory returning a fresh
:class:`repro.metal.sm.Extension`; the metal-text checkers also expose
their source (``*_SOURCE``) so tests can assert the Figure 1/Figure 3
texts compile.
"""

from repro.checkers.block import blocking_checker
from repro.checkers.free import FREE_CHECKER_SOURCE, free_checker
from repro.checkers.leak import leak_checker
from repro.checkers.lock import LOCK_CHECKER_SOURCE, lock_checker
from repro.checkers.retcheck import infer_must_check_rules, report_deviant_sites
from repro.checkers.null import null_checker
from repro.checkers.nullarg import infer_nonnull_rules, report_null_argument_sites
from repro.checkers.mallocfail import malloc_fail_checker
from repro.checkers.intr import interrupt_checker
from repro.checkers.security import user_pointer_checker
from repro.checkers.format_string import format_string_checker
from repro.checkers.range_check import range_check_checker
from repro.checkers.global_audit import audit_checker
from repro.checkers.pathkill import path_kill_extension
from repro.checkers.pairs_infer import infer_pairs, make_pair_checker

#: name -> factory, for the CLI and the benchmarks.
ALL_CHECKERS = {
    "free": free_checker,
    "lock": lock_checker,
    "null": null_checker,
    "mallocfail": malloc_fail_checker,
    "intr": interrupt_checker,
    "user-pointer": user_pointer_checker,
    "format-string": format_string_checker,
    "range": range_check_checker,
    "pathkill": path_kill_extension,
    "block": blocking_checker,
    "leak": leak_checker,
    "audit": audit_checker,
}

__all__ = [
    "ALL_CHECKERS",
    "FREE_CHECKER_SOURCE",
    "LOCK_CHECKER_SOURCE",
    "blocking_checker",
    "free_checker",
    "lock_checker",
    "null_checker",
    "malloc_fail_checker",
    "interrupt_checker",
    "user_pointer_checker",
    "format_string_checker",
    "range_check_checker",
    "path_kill_extension",
    "infer_pairs",
    "make_pair_checker",
    "leak_checker",
    "infer_must_check_rules",
    "report_deviant_sites",
    "infer_nonnull_rules",
    "report_null_argument_sites",
]
