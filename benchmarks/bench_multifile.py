"""Whole-project analysis over generated multi-module trees: the §6
two-pass flow with cross-file call chains and file-scope statics.

Not a figure per se -- it exercises the combination the paper's Linux
runs depended on (many translation units, one analysis).
"""

from repro.codegen.project_gen import (
    default_checkers,
    generate_project,
    score_project,
)


def audit(seed, n_modules, functions_per_module):
    generated = generate_project(
        seed=seed,
        n_modules=n_modules,
        functions_per_module=functions_per_module,
        bug_rate=0.35,
    )
    project = generated.make_project()
    result = project.run(default_checkers())
    return generated, project, result


def test_multifile_audit(benchmark):
    print("\nmulti-module audits (hits/injected, FPs):")
    for seed in (11, 12, 13):
        generated, project, result = audit(seed, n_modules=4,
                                           functions_per_module=10)
        hits, injected, false_positives = score_project(generated, result.reports)
        print("  seed %d: %d modules, %d functions -> %d/%d found, %d FPs"
              % (seed, 4, len(project.callgraph.functions), hits, injected,
                 len(false_positives)))
        assert hits == injected
        assert false_positives == []
    benchmark(audit, 11, 4, 10)


def test_multifile_scaling(benchmark):
    print("\nproject size scaling:")
    for n_modules in (2, 4, 8):
        generated, project, result = audit(5, n_modules, 8)
        print("  %d modules: %3d functions, %3d reports"
              % (n_modules, len(project.callgraph.functions),
                 len(result.reports)))
    benchmark(audit, 5, 4, 8)
