"""Differential tests for incremental *global* checkers (docs/DRIVER.md,
"Annotation deltas").

The incremental session used to fall back to a full re-analysis whenever
an extension touched cross-root state (AST annotations or user globals).
These tests pin the replacement behaviour: per-(extension, root) deltas
are persisted and replayed, warm ranked reports are byte-identical to
cold ones across no-edit / one-edit / multi-edit / parallel runs, a
clean root whose read set intersects a changed delta re-enters the dirty
cone, unserializable cross-root state is never persisted, concurrent
manifest stores merge instead of clobbering, and ``--cache-gc`` sweeps
only what no fresh manifest pins.
"""

import json
import os
import threading
import time

import pytest

from repro.checkers import audit_checker, free_checker, path_kill_extension
from repro.codegen.project_gen import (
    GeneratedProject,
    apply_function_edits,
    generate_global_project,
)
from repro.driver import cache as astcache
from repro.driver.cache import collect_cache_garbage
from repro.driver.cli import main
from repro.driver.project import Project
from repro.driver.session import IncrementalSession, session_signature
from repro.engine import deltas as deltamod
from repro.engine.analysis import AnalysisOptions
from repro.metal import ANY_ARGUMENTS, ANY_FN_CALL, ANY_POINTER, Extension
from repro.ranking.severity import stratify


def global_suite():
    """Composition with cross-root state on both channels: pathkill
    (annotations), free (plain per-root), audit (user globals).
    Module-level so parallel workers can rebuild it by pickle."""
    return [
        path_kill_extension(),
        free_checker(("kfree", "vfree")),
        audit_checker(),
    ]


GLOBAL_CHECKER_NAMES = ["pathkill", "free", "audit"]


def ranked_text(result):
    """The full ranked report, traces included -- the byte-identity
    oracle (same shape the CLI prints)."""
    return "\n".join(r.format_trace() for r in stratify(result.reports))


def write_tree(tmp_path, gen):
    for name, text in gen.files.items():
        (tmp_path / name).write_text(text)
    return sorted(
        str(tmp_path / name) for name in gen.files if name.endswith(".c")
    )


def compiled_project(tmp_path, paths, cache_dir=None, jobs=1):
    project = Project(
        include_paths=[str(tmp_path)],
        cache_dir=str(cache_dir) if cache_dir else None,
    )
    project.compile_files(paths, jobs=jobs)
    return project


def make_session(cache_dir, names=GLOBAL_CHECKER_NAMES, options=None):
    return IncrementalSession(
        str(cache_dir),
        session_signature(checker_names=names,
                          options=options or AnalysisOptions()),
    )


class TestGlobalDifferential:
    def _reference(self, tmp_path, paths, checkers=None):
        project = compiled_project(tmp_path, paths)
        return project, project.run(checkers or global_suite())

    def test_cold_and_warm_byte_identical(self, tmp_path):
        gen = generate_global_project(seed=3)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        __, reference = self._reference(tmp_path, paths)
        assert reference.reports  # duplicate audit tags + injected bugs

        cold = compiled_project(tmp_path, paths, cache)
        first = cold.run(global_suite(), incremental=make_session(cache))
        assert ranked_text(first) == ranked_text(reference)
        assert cold.stats.count("incremental_fallbacks") == 0
        assert cold.stats.count("summary_stores") > 0

        warm = compiled_project(tmp_path, paths, cache)
        second = warm.run(global_suite(), incremental=make_session(cache))
        assert ranked_text(second) == ranked_text(reference)
        counters = warm.stats.counters
        assert counters.get("incremental_fallbacks", 0) == 0
        assert counters["incremental_coupled_runs"] == 1
        assert counters["incremental_roots_analyzed"] == 0
        assert counters["incremental_roots_replayed"] > 0
        assert counters["annotation_delta_replays"] > 0
        # Warm-run provenance: the engine counters cover only analyzed
        # roots, and the result says so explicitly.
        assert second.stats["stats_coverage"] == "analyzed-roots-only"
        assert second.stats["incremental_analyzed_pairs"] == 0
        assert second.stats["incremental_replayed_pairs"] > 0

    @pytest.mark.parametrize("k", [1, 3])
    def test_warm_after_k_edits_byte_identical(self, tmp_path, k):
        gen = generate_global_project(seed=3)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        cold = compiled_project(tmp_path, paths, cache)
        cold.run(global_suite(), incremental=make_session(cache))

        edited, __ = apply_function_edits(gen, k=k, seed=11)
        paths = write_tree(tmp_path, edited)
        warm = compiled_project(tmp_path, paths, cache)
        incremental = warm.run(
            global_suite(), incremental=make_session(cache)
        )
        reference_project, reference = self._reference(tmp_path, paths)
        assert ranked_text(incremental) == ranked_text(reference)
        counters = warm.stats.counters
        assert counters.get("incremental_fallbacks", 0) == 0
        assert counters["incremental_roots_analyzed"] < len(
            reference_project.callgraph.roots()
        )
        assert counters["incremental_roots_replayed"] > 0

    def test_warm_parallel_request_forces_serial_and_matches(self, tmp_path):
        gen = generate_global_project(seed=3)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        cold = compiled_project(tmp_path, paths, cache, jobs=2)
        cold.run(
            global_suite(), jobs=2, extension_factory=global_suite,
            incremental=make_session(cache),
        )
        # A parallel fast-path run that turns out coupled is redone
        # serially with delta capture, loudly.
        assert cold.stats.count("annotation_delta_serial_reruns") == 1
        assert cold.stats.count("incremental_fallbacks") == 0

        edited, __ = apply_function_edits(gen, k=2, seed=5)
        paths = write_tree(tmp_path, edited)
        warm = compiled_project(tmp_path, paths, cache, jobs=2)
        incremental = warm.run(
            global_suite(), jobs=2, extension_factory=global_suite,
            incremental=make_session(cache),
        )
        __, reference = self._reference(tmp_path, paths)
        assert ranked_text(incremental) == ranked_text(reference)
        counters = warm.stats.counters
        assert counters.get("incremental_fallbacks", 0) == 0
        # Known-coupled from the cached deltas: serial was forced up
        # front rather than discovered by a wasted parallel run.
        assert counters["annotation_delta_serial_forced"] == 1
        assert counters.get("annotation_delta_serial_reruns", 0) == 0

    def test_audit_tag_edit_reenters_readers_into_cone(self, tmp_path):
        """The soundness condition: retagging one claimant changes the
        tag_owners global every other audit root reads, so the readers
        must re-enter the dirty cone (a blind replay would keep reporting
        the old duplicate set)."""
        gen = generate_global_project(seed=3)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        cold = compiled_project(tmp_path, paths, cache)
        before = cold.run(global_suite(), incremental=make_session(cache))

        files = dict(gen.files)
        assert "audit(7)" in files["module_0.c"]
        files["module_0.c"] = files["module_0.c"].replace(
            "audit(7)", "audit(9)"
        )
        retagged = GeneratedProject(files, list(gen.bugs), gen.seed)
        paths = write_tree(tmp_path, retagged)
        warm = compiled_project(tmp_path, paths, cache)
        incremental = warm.run(
            global_suite(), incremental=make_session(cache)
        )
        __, reference = self._reference(tmp_path, paths)
        assert ranked_text(incremental) == ranked_text(reference)
        # The duplicate set genuinely changed (tag 7's first claimant is
        # now module 1), so identity above is not vacuous.
        assert ranked_text(incremental) != ranked_text(before)
        counters = warm.stats.counters
        assert counters.get("incremental_fallbacks", 0) == 0
        demotions = counters.get(
            "annotation_delta_read_demotions", 0
        ) + counters.get("annotation_delta_stale_demotions", 0)
        assert demotions >= 1
        # More roots re-analyzed than the fingerprint cone alone asked for.
        assert counters["incremental_roots_analyzed"] > counters[
            "incremental_dirty_cone"
        ]
        assert counters["incremental_roots_replayed"] > 0

    def test_replayed_annotations_feed_analyzed_sweep(self, tmp_path):
        """An analyzed root that sweeps the annotation store
        (``nodes_with``) must observe clean roots' *replayed* annotation
        writes, or its report text drifts from a cold run's."""

        def sweep_suite():
            marker = Extension("site_marker")
            marker.decl("fn", ANY_FN_CALL)
            marker.decl("args", ANY_ARGUMENTS)

            def is_kfree(context):
                from repro.cfront import astnodes as ast

                node = context.bindings.get("fn")
                return isinstance(node, ast.Ident) and node.name == "kfree"

            from repro.metal.patterns import AndPattern, Callout

            marker.transition(
                "start",
                AndPattern(
                    marker._compile_pattern_text("{ fn(args) }"),
                    Callout(is_kfree, "kfree call"),
                ),
                action=lambda ctx: ctx.annotate(
                    ctx.point, "kfree_site", True
                ),
            )

            counter = Extension("site_counter")
            counter.decl("cargs", ANY_ARGUMENTS)

            def tally(ctx):
                sites = ctx.engine.annotations.nodes_with("kfree_site")
                ctx.err("%d kfree sites marked", len(sites))

            counter.transition(
                "start", "{ mark_total(cargs) }", action=tally
            )
            return [marker, counter]

        source = (
            "struct device { int flags; };\n"
            "void use1(struct device *p) { kfree(p); }\n"
            "void use2(struct device *p) {\n"
            "    if (p->flags) { kfree(p); }\n"
            "    kfree(p);\n"
            "}\n"
            "int tally_sites(struct device *p) { mark_total(p); return 0; }\n"
        )
        (tmp_path / "a.c").write_text(source)
        cache = tmp_path / "cache"
        paths = [str(tmp_path / "a.c")]

        def session():
            return make_session(cache, names=["site_marker", "site_counter"])

        cold = compiled_project(tmp_path, paths, cache)
        first = cold.run(sweep_suite(), incremental=session())
        assert ["3 kfree sites marked" in r.message for r in first.reports
                if r.checker == "site_counter"] == [True]

        # Edit use1 to free twice: the sweep root must re-count to 4 and
        # can only get there by reading use2's replayed annotations.
        (tmp_path / "a.c").write_text(
            source.replace("{ kfree(p); }\nvoid use2",
                           "{ kfree(p); kfree(p); }\nvoid use2")
        )
        warm = compiled_project(tmp_path, paths, cache)
        second = warm.run(sweep_suite(), incremental=session())
        reference = compiled_project(tmp_path, paths).run(sweep_suite())
        assert ranked_text(second) == ranked_text(reference)
        assert ["4 kfree sites marked" in r.message for r in second.reports
                if r.checker == "site_counter"] == [True]
        counters = warm.stats.counters
        assert counters.get("incremental_fallbacks", 0) == 0
        # use1 was the fingerprint cone; tally_sites re-entered via its
        # ("ann*",) wildcard read; use2 was replayed.
        assert counters["annotation_delta_read_demotions"] >= 1
        assert counters["incremental_roots_analyzed"] == 2
        assert counters["incremental_roots_replayed"] == 1

    def test_unserializable_global_is_never_persisted(self, tmp_path):
        """A checker stashing an unpicklable value in its globals cannot
        be replayed; its roots simply re-analyze every run (loudly
        counted) while everything else stays incremental."""

        def opaque_suite():
            ext = Extension("opaque_writer")
            ext.state_var("v", ANY_POINTER)

            def stash(ctx):
                ctx.globals["callback"] = lambda: None

            ext.transition("start", "{ kfree(v) }", to="v.freed",
                           action=stash)
            return [ext]

        gen = generate_global_project(seed=3, n_modules=2,
                                      functions_per_module=4)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)

        def session():
            return make_session(cache, names=["opaque_writer"])

        cold = compiled_project(tmp_path, paths, cache)
        first = cold.run(opaque_suite(), incremental=session())
        assert cold.stats.count("annotation_delta_opaque_roots") > 0
        assert cold.stats.count("incremental_fallbacks") == 0

        warm = compiled_project(tmp_path, paths, cache)
        second = warm.run(opaque_suite(), incremental=session())
        reference = compiled_project(tmp_path, paths).run(opaque_suite())
        assert ranked_text(second) == ranked_text(reference)
        assert ranked_text(first) == ranked_text(reference)
        counters = warm.stats.counters
        assert counters.get("incremental_fallbacks", 0) == 0
        # The opaque (kfree-touching) roots re-analyzed; the rest replayed.
        assert counters["annotation_delta_opaque_roots"] > 0
        assert counters["incremental_roots_analyzed"] > 0
        assert counters["incremental_roots_replayed"] > 0


class TestDeltaUnits:
    def test_tracked_globals_records_reads_and_writes(self):
        tracker = deltamod.DeltaTracker(lambda: "fn")
        tracker.begin_root()
        globs = deltamod.TrackedGlobals("ext", tracker)
        globs["a"] = 1
        assert globs.get("b") is None
        assert "c" not in globs
        list(globs)
        delta = tracker.end_root(_EmptyStore(), {"ext": globs})
        assert delta.glob_writes == {("ext", "a"): 1}
        assert ("glob", "ext", "b") in delta.reads
        assert ("glob", "ext", "c") in delta.reads
        assert ("glob*", "ext") in delta.reads
        assert not delta.opaque

    def test_net_effect_only(self):
        tracker = deltamod.DeltaTracker(lambda: "fn")
        tracker.begin_root()
        globs = deltamod.TrackedGlobals("ext", tracker)
        globs["a"] = 1
        del globs["a"]
        delta = tracker.end_root(_EmptyStore(), {"ext": globs})
        # Written then deleted inside one root: invisible to later roots.
        assert delta.glob_writes == {}
        assert delta.glob_dels == set()

    def test_deletion_of_prior_state_is_recorded(self):
        tracker = deltamod.DeltaTracker(lambda: "fn")
        globs = deltamod.TrackedGlobals("ext", tracker)
        tracker.begin_root()
        globs["a"] = 1
        tracker.end_root(_EmptyStore(), {"ext": globs})
        tracker.begin_root()
        del globs["a"]
        delta = tracker.end_root(_EmptyStore(), {"ext": globs})
        assert delta.glob_dels == {("ext", "a")}

    def test_unpicklable_value_marks_opaque(self):
        tracker = deltamod.DeltaTracker(lambda: "fn")
        tracker.begin_root()
        globs = deltamod.TrackedGlobals("ext", tracker)
        globs["cb"] = lambda: None
        delta = tracker.end_root(_EmptyStore(), {"ext": globs})
        assert delta.opaque
        assert delta.has_writes()

    def test_delta_changes_none_means_fully_changed(self):
        new = deltamod.RootDelta(
            glob_writes={("ext", "a"): 1},
            ann_writes=[(("fn", "Call", "f.c", 3, 1, "d"), "k", True)],
        )
        fns, globs = deltamod.delta_changes(None, new)
        assert fns == {"fn"}
        assert globs == {("glob", "ext", "a")}
        assert deltamod.delta_changes(new, new) == (set(), set())

    def test_delta_changes_detects_value_and_deletion(self):
        old = deltamod.RootDelta(glob_writes={("ext", "a"): 1,
                                              ("ext", "b"): 2})
        new = deltamod.RootDelta(glob_writes={("ext", "a"): 5},
                                 glob_dels={("ext", "b")})
        __, globs = deltamod.delta_changes(old, new)
        assert globs == {("glob", "ext", "a"), ("glob", "ext", "b")}


class _EmptyStore:
    def get(self, node, key, default=None):
        return default


class TestManifestMerge:
    def test_concurrent_sessions_merge_instead_of_clobber(self, tmp_path):
        store = astcache.SummaryCache(str(tmp_path))
        store.store_manifest("sig", {"f": ["l1", "m1"]},
                             frame_keys=["k1"], ast_keys=["a1"])
        store.store_manifest("sig", {"g": ["l2", "m2"]},
                             frame_keys=["k2"], ast_keys=["a2"])
        doc = store.load_manifest_document("sig")
        assert doc["fingerprints"] == {"f": ["l1", "m1"],
                                       "g": ["l2", "m2"]}
        assert doc["frame_keys"] == ["k1", "k2"]
        assert doc["ast_keys"] == ["a1", "a2"]

    def test_latest_store_wins_for_shared_functions(self, tmp_path):
        store = astcache.SummaryCache(str(tmp_path))
        store.store_manifest("sig", {"f": ["old", "old"]})
        store.store_manifest("sig", {"f": ["new", "new"]})
        assert store.load_manifest("sig") == {"f": ["new", "new"]}

    def test_threaded_stores_all_survive(self, tmp_path):
        store = astcache.SummaryCache(str(tmp_path))
        errors = []

        def one(i):
            try:
                store.store_manifest(
                    "sig", {"fn_%d" % i: ["l%d" % i, "m%d" % i]},
                    frame_keys=["frame_%d" % i],
                )
            except Exception as err:  # pragma: no cover - diagnostic
                errors.append(err)

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        doc = store.load_manifest_document("sig")
        assert set(doc["fingerprints"]) == {"fn_%d" % i for i in range(16)}
        assert set(doc["frame_keys"]) == {"frame_%d" % i for i in range(16)}


class TestCacheGC:
    def _age(self, path, days):
        stamp = time.time() - days * 86400.0
        os.utime(path, (stamp, stamp))

    def test_unpinned_old_frames_dropped_pinned_and_fresh_kept(
        self, tmp_path
    ):
        cache_dir = str(tmp_path)
        store = astcache.SummaryCache(os.path.join(cache_dir, "summaries"))
        artifact_key = "aa" * 32
        pinned_key = "bb" * 32
        fresh_key = "cc" * 32
        for key in (artifact_key, pinned_key, fresh_key):
            store.store(key, _artifact())
        store.store_manifest("sig", {"f": ["l", "m"]},
                             frame_keys=[pinned_key])
        ast_store = astcache.AstCache(cache_dir)
        old_ast = ast_store.store("dd" * 32, b"payload")
        self._age(store.path_for(artifact_key), 2)
        self._age(store.path_for(pinned_key), 2)
        self._age(old_ast, 2)

        counters = collect_cache_garbage(cache_dir, cutoff_days=1.0)
        assert counters["gc_summary_frames_dropped"] == 1
        assert counters["gc_ast_frames_dropped"] == 1
        assert counters["gc_manifests_dropped"] == 0
        assert store.lookup(artifact_key) is None  # old, unpinned
        assert store.lookup(pinned_key) is not None  # old but pinned
        assert store.lookup(fresh_key) is not None  # unpinned but fresh

    def test_stale_manifest_dropped_and_unpins_its_frames(self, tmp_path):
        cache_dir = str(tmp_path)
        store = astcache.SummaryCache(os.path.join(cache_dir, "summaries"))
        key = "ee" * 32
        store.store(key, _artifact())
        store.store_manifest("sig", {"f": ["l", "m"]}, frame_keys=[key])
        self._age(store.manifest_path("sig"), 2)
        self._age(store.path_for(key), 2)
        counters = collect_cache_garbage(cache_dir, cutoff_days=1.0)
        assert counters["gc_manifests_dropped"] == 1
        assert counters["gc_summary_frames_dropped"] == 1
        assert store.load_manifest("sig") is None

    def test_cli_standalone_gc(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        store = astcache.SummaryCache(str(cache_dir / "summaries"))
        key = "ff" * 32
        store.store(key, _artifact())
        self._age(store.path_for(key), 2)
        stats_path = tmp_path / "gc.json"
        rc = main([
            "--cache-gc", "--cache-gc-days", "1",
            "--cache-dir", str(cache_dir),
            "--stats-json", str(stats_path),
        ])
        capsys.readouterr()
        assert rc == 0
        stats = json.loads(stats_path.read_text())
        assert stats["schema_version"] == 8
        assert stats["counters"]["gc_summary_frames_dropped"] == 1
        assert store.lookup(key) is None

    def test_cli_gc_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            main(["--cache-gc", "x.c"])

    def test_cli_gc_composes_with_a_run(self, tmp_path, capsys):
        gen = generate_global_project(seed=3, n_modules=2,
                                      functions_per_module=3)
        paths = write_tree(tmp_path, gen)
        cache_dir = tmp_path / "cache"
        store = astcache.SummaryCache(str(cache_dir / "summaries"))
        key = "ab" * 32
        store.store(key, _artifact())
        self._age(store.path_for(key), 2)
        stats_path = tmp_path / "stats.json"
        rc = main([
            "--checker", "free", "-I", str(tmp_path),
            "--cache-dir", str(cache_dir), "--incremental",
            "--cache-gc", "--cache-gc-days", "1",
            "--stats-json", str(stats_path),
        ] + paths)
        capsys.readouterr()
        assert rc in (0, 1)  # findings present -> 1
        stats = json.loads(stats_path.read_text())
        assert stats["counters"]["gc_summary_frames_dropped"] == 1
        assert stats["counters"]["incremental_cold_runs"] == 1


def _artifact():
    from repro.engine.summaries import RootArtifact

    return RootArtifact(
        ext_index=0, extension="free", root="f", reports=[], examples={},
        counterexamples={}, degraded=[], clean=True, summary=None,
    )
