"""The sleep-under-lock checker (the "block" checker of the OSDI'00
companion paper, referenced by §1's fifty-checker claim).

Kernel rule: functions that may sleep (block) must not be called while a
spinlock is held or interrupts are disabled -- that deadlocks the system.
A global state machine tracks the "atomic context" depth; a callout flags
calls to blocking functions inside it.

This checker demonstrates the §3.2 escape hatch for *global* data: the
nesting depth lives in the extension's path-local storage rather than in
a finite state alphabet.
"""

from repro.cfront import astnodes as ast
from repro.metal import ANY_ARGUMENTS, ANY_FN_CALL, ANY_POINTER, Extension
from repro.metal.patterns import AndPattern, Callout

DEFAULT_BLOCKING = (
    "kmalloc_sleep",
    "copy_from_user",
    "copy_to_user",
    "schedule",
    "msleep",
    "mutex_lock",
    "wait_event",
)


def blocking_checker(
    enter_atomic=("spin_lock", "cli"),
    leave_atomic=("spin_unlock", "sti"),
    blocking_functions=DEFAULT_BLOCKING,
):
    ext = Extension("blocking_checker")
    ext.decl("fn", ANY_FN_CALL)
    ext.decl("args", ANY_ARGUMENTS)
    ext.decl("l", ANY_POINTER)
    ext.default_severity = "ERROR"

    blocking = frozenset(blocking_functions)

    def enter(ctx):
        ctx.path_data["atomic_depth"] = ctx.path_data.get("atomic_depth", 0) + 1
        ctx.set_global_state("atomic")

    def leave(ctx):
        depth = max(0, ctx.path_data.get("atomic_depth", 0) - 1)
        ctx.path_data["atomic_depth"] = depth
        if depth == 0:
            ctx.set_global_state("start")

    def is_blocking_call(context):
        node = context.bindings.get("fn")
        return isinstance(node, ast.Ident) and node.name in blocking

    def report(ctx):
        fn = ctx.binding("fn")
        ctx.err(
            "%s may block, but it is called in atomic context (depth %d)!",
            fn.name if isinstance(fn, ast.Ident) else "<indirect>",
            ctx.path_data.get("atomic_depth", 1),
            rule_id="sleep-in-atomic",
        )

    for fn in enter_atomic:
        ext.transition("start", "{ %s(args) }" % fn, to="atomic", action=enter)
        ext.transition("atomic", "{ %s(args) }" % fn, action=enter)
    for fn in leave_atomic:
        ext.transition("atomic", "{ %s(args) }" % fn, action=leave)
        # a stray leave in non-atomic context is the lock checker's job

    blocking_call = AndPattern(
        ext._compile_pattern_text("{ fn(args) }"),
        Callout(is_blocking_call, "callee may block"),
    )
    ext.transition("atomic", blocking_call, action=report)
    return ext
