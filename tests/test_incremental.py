"""Incremental summary-based re-analysis tests (docs/DRIVER.md).

Covers: Merkle function fingerprints (edit / move / callee propagation /
recursion), dirty-cone computation, the seeded edit simulator, tier-2
summary frames (roundtrip, corruption self-heal, manifest), differential
cold-vs-incremental byte-identity after k edits, cone-bound scheduling,
coupled-extension delta scheduling (the old blanket fallback is gone --
tests/test_global_incremental.py covers it in depth), the
restrict_partial_hits fallback, degraded-root non-persistence, and the
CLI ``--incremental`` flag.
"""

import json
import os

import pytest

from repro import faults
from repro.checkers import free_checker, lock_checker
from repro.cfg.fingerprint import (
    compute_fingerprints,
    dirty_cone,
    fingerprint_tables,
    strongly_connected_components,
)
from repro.codegen.project_gen import apply_function_edits, generate_project
from repro.driver import cache as astcache
from repro.driver.cli import main
from repro.driver.project import Project
from repro.driver.session import (
    IncrementalSession,
    session_signature,
    summary_key,
)
from repro.engine.analysis import AnalysisOptions
from repro.engine.summaries import RootArtifact
from repro.metal import ANY_POINTER, Extension


def incr_checkers():
    """Worker-rebuildable checker list (top-level so it pickles)."""
    return [free_checker(("kfree", "vfree")), lock_checker()]


def report_keys(result):
    return [
        (r.checker, r.message, r.location.filename, r.location.line,
         r.location.column, r.function)
        for r in result.reports
    ]


def write_tree(tmp_path, gen):
    """Materialize a GeneratedProject under tmp_path; returns c paths."""
    for name, text in gen.files.items():
        (tmp_path / name).write_text(text)
    return sorted(
        str(tmp_path / name) for name in gen.files if name.endswith(".c")
    )


def make_session(cache_dir, options=None):
    signature = session_signature(
        checker_names=["free", "lock"],
        options=options or AnalysisOptions(),
    )
    return IncrementalSession(str(cache_dir), signature)


def compiled_project(tmp_path, paths, cache_dir=None, jobs=1):
    project = Project(
        include_paths=[str(tmp_path)],
        cache_dir=str(cache_dir) if cache_dir else None,
    )
    project.compile_files(paths, jobs=jobs)
    return project


def graph_of(source):
    project = Project()
    project.compile_text(source, "t.c")
    return project.callgraph


CHAIN = """\
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) + 2; }
int top(int x) { return mid(x) + 3; }
int other(int x) { return x * 2; }
"""


class TestFingerprints:
    def test_stable_across_rebuilds(self):
        assert compute_fingerprints(graph_of(CHAIN)) == compute_fingerprints(
            graph_of(CHAIN)
        )

    def test_body_edit_propagates_to_callers_only(self):
        before = compute_fingerprints(graph_of(CHAIN))
        after = compute_fingerprints(
            graph_of(CHAIN.replace("x + 1", "x + 9"))
        )
        assert after["leaf"] != before["leaf"]
        assert after["mid"] != before["mid"]  # Merkle: callee folded in
        assert after["top"] != before["top"]
        assert after["other"] == before["other"]

    def test_moved_function_changes_fingerprint(self):
        # Identical tokens, different line: reports carry line numbers,
        # so a moved function must re-analyze to stay byte-identical.
        before = compute_fingerprints(graph_of(CHAIN))
        after = compute_fingerprints(graph_of("\n\n" + CHAIN))
        assert after["leaf"] != before["leaf"]

    def test_recursive_cycle_hashes_as_group(self):
        mutual = """\
int ping(int x) { return pong(x - 1); }
int pong(int x) { return ping(x - 2); }
int solo(int x) { return x; }
"""
        graph = graph_of(mutual)
        sccs = strongly_connected_components(graph)
        assert ["ping", "pong"] in sccs
        before = compute_fingerprints(graph)
        after = compute_fingerprints(
            graph_of(mutual.replace("x - 1", "x - 7"))
        )
        # Any edit inside the cycle invalidates the whole cycle.
        assert after["ping"] != before["ping"]
        assert after["pong"] != before["pong"]
        assert after["solo"] == before["solo"]

    def test_local_hashes_ignore_callee_edits(self):
        local_before, __ = fingerprint_tables(graph_of(CHAIN))
        local_after, __ = fingerprint_tables(
            graph_of(CHAIN.replace("x + 1", "x + 9"))
        )
        assert local_after["leaf"] != local_before["leaf"]
        assert local_after["mid"] == local_before["mid"]

    def test_dirty_cone_is_edited_plus_transitive_callers(self):
        graph = graph_of(CHAIN)
        assert dirty_cone(graph, ["leaf"]) == {"leaf", "mid", "top"}
        assert dirty_cone(graph, ["top"]) == {"top"}
        assert dirty_cone(graph, ["other"]) == {"other"}
        assert dirty_cone(graph, ["not_defined"]) == set()


class TestEditSimulation:
    def test_edits_are_line_preserving_with_ground_truth(self):
        gen = generate_project(seed=3, n_modules=2, functions_per_module=5)
        edited, edits = apply_function_edits(gen, k=3, seed=1)
        assert len(edits) == 3
        assert len({e.function for e in edits}) == 3
        for edit in edits:
            old_lines = gen.files[edit.filename].splitlines()
            new_lines = edited.files[edit.filename].splitlines()
            assert len(old_lines) == len(new_lines)
            assert old_lines[edit.line - 1] == edit.before
            assert new_lines[edit.line - 1] == edit.after
            assert edit.before != edit.after
        # Untouched files are untouched.
        for name in gen.files:
            if name not in {e.filename for e in edits}:
                assert edited.files[name] == gen.files[name]

    def test_deterministic_for_seed(self):
        gen = generate_project(seed=3, n_modules=2, functions_per_module=5)
        __, first = apply_function_edits(gen, k=2, seed=9)
        __, second = apply_function_edits(gen, k=2, seed=9)
        assert [repr(e) for e in first] == [repr(e) for e in second]

    def test_edit_dirties_exactly_its_cone(self):
        gen = generate_project(seed=3, n_modules=2, functions_per_module=5)
        edited, edits = apply_function_edits(gen, k=1, seed=4)
        before = compute_fingerprints(gen.make_project().callgraph)
        graph = edited.make_project().callgraph
        after = compute_fingerprints(graph)
        changed = {name for name in after if after[name] != before.get(name)}
        assert changed == dirty_cone(graph, [e.function for e in edits])

    def test_too_many_edits_raises(self):
        gen = generate_project(seed=3, n_modules=1, functions_per_module=2)
        with pytest.raises(ValueError):
            apply_function_edits(gen, k=500, seed=0)


def _dummy_artifact(root="f"):
    return RootArtifact(
        ext_index=0, extension="lock", root=root, reports=[], examples={},
        counterexamples={}, degraded=[], clean=True, summary=None,
    )


class TestSummaryFrames:
    def test_roundtrip_and_evict(self, tmp_path):
        store = astcache.SummaryCache(str(tmp_path))
        key = "ab" * 32
        store.store(key, _dummy_artifact())
        assert store.load(key).root == "f"
        assert store.evict(key)
        assert store.lookup(key) is None

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "version"])
    def test_corruption_raises(self, tmp_path, mode):
        store = astcache.SummaryCache(str(tmp_path))
        key = "cd" * 32
        path = store.store(key, _dummy_artifact())
        astcache.corrupt_entry(path, mode)
        with pytest.raises(astcache.CacheCorruption):
            store.load(key)

    def test_ast_frame_is_not_a_summary_frame(self, tmp_path):
        with pytest.raises(astcache.CacheCorruption):
            astcache.unpack_artifact(b"XGCCAST\x02" + b"\x00" * 64)

    def test_manifest_roundtrip_and_signature_check(self, tmp_path):
        store = astcache.SummaryCache(str(tmp_path))
        store.store_manifest("sig", {"f": ["l1", "m1"]})
        assert store.load_manifest("sig") == {"f": ["l1", "m1"]}
        assert store.load_manifest("other-sig") is None

    def test_garbled_manifest_degrades_to_none(self, tmp_path):
        # Written through the backend interface, so the same garbling
        # lands identically on a local dir or a remote store.
        store = astcache.SummaryCache(str(tmp_path))
        store.backend.manifest_put("sig", "{not json")
        assert store.load_manifest("sig") is None

    def test_summary_keys_separate_extensions_and_fingerprints(self):
        base = summary_key("sig", 0, "lock", "f", "fp1")
        assert summary_key("sig", 1, "lock", "f", "fp1") != base
        assert summary_key("sig", 0, "lock", "f", "fp2") != base
        assert summary_key("other", 0, "lock", "f", "fp1") != base


class TestIncrementalDifferential:
    def _cold_reference(self, tmp_path, paths, options=None):
        project = compiled_project(tmp_path, paths)
        return project, project.run(incr_checkers(), options)

    def test_warm_no_edit_replays_everything(self, tmp_path):
        gen = generate_project(seed=5, n_modules=3, functions_per_module=6)
        paths = write_tree(tmp_path, gen)
        cache = tmp_path / "cache"
        __, reference = self._cold_reference(tmp_path, paths)

        cold = compiled_project(tmp_path, paths, cache)
        first = cold.run(incr_checkers(), incremental=make_session(cache))
        assert report_keys(first) == report_keys(reference)
        assert cold.stats.count("incremental_cold_runs") == 1
        assert cold.stats.count("summary_stores") > 0

        warm = compiled_project(tmp_path, paths, cache)
        second = warm.run(incr_checkers(), incremental=make_session(cache))
        assert report_keys(second) == report_keys(reference)
        assert second.log.examples == reference.log.examples
        assert second.log.counterexamples == reference.log.counterexamples
        assert warm.stats.count("incremental_roots_analyzed") == 0
        assert warm.stats.count("incremental_roots_replayed") > 0
        assert warm.stats.count("summary_hits") > 0
        assert warm.stats.count("summary_misses") == 0

    @pytest.mark.parametrize("k", [1, 3])
    def test_warm_after_k_edits_byte_identical(self, tmp_path, k):
        gen = generate_project(seed=7, n_modules=4, functions_per_module=8)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        cold = compiled_project(tmp_path, paths, cache)
        cold.run(incr_checkers(), incremental=make_session(cache))

        edited, edits = apply_function_edits(gen, k=k, seed=11)
        paths = write_tree(tmp_path, edited)
        warm = compiled_project(tmp_path, paths, cache)
        incremental = warm.run(
            incr_checkers(), incremental=make_session(cache)
        )
        reference_project, reference = self._cold_reference(tmp_path, paths)
        assert report_keys(incremental) == report_keys(reference)
        assert incremental.log.examples == reference.log.examples
        assert incremental.log.counterexamples == reference.log.counterexamples

        # Dirty-cone bound: edited functions plus transitive callers.
        cone = dirty_cone(
            reference_project.callgraph, [e.function for e in edits]
        )
        counters = warm.stats.counters
        assert counters["incremental_dirty_functions"] == k
        assert counters["incremental_dirty_cone"] == len(cone)
        assert counters["incremental_roots_analyzed"] <= len(cone)
        assert counters["incremental_roots_analyzed"] < len(
            reference_project.callgraph.roots()
        )

    def test_warm_parallel_matches_cold(self, tmp_path):
        gen = generate_project(seed=9, n_modules=4, functions_per_module=6)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        cold = compiled_project(tmp_path, paths, cache)
        cold.run(
            incr_checkers(), jobs=2, extension_factory=incr_checkers,
            incremental=make_session(cache),
        )
        edited, __ = apply_function_edits(gen, k=2, seed=5)
        paths = write_tree(tmp_path, edited)
        warm = compiled_project(tmp_path, paths, cache, jobs=2)
        incremental = warm.run(
            incr_checkers(), jobs=2, extension_factory=incr_checkers,
            incremental=make_session(cache),
        )
        __, reference = self._cold_reference(tmp_path, paths)
        assert report_keys(incremental) == report_keys(reference)
        assert warm.stats.count("summary_hits") > 0

    def test_callee_edit_invalidates_caller_summary(self, tmp_path):
        files = {
            "a.c": (
                "void kfree(void *p);\n"
                "void helper(int *p) { kfree(p); }\n"
                "int caller(int *p) { helper(p); return *p; }\n"
                "int standalone(int *q) { kfree(q); kfree(q); return 0; }\n"
            )
        }
        (tmp_path / "a.c").write_text(files["a.c"])
        cache = tmp_path / "cache"
        paths = [str(tmp_path / "a.c")]
        cold = compiled_project(tmp_path, paths, cache)
        first = cold.run(incr_checkers(), incremental=make_session(cache))
        # use-after-free through the helper + double free in standalone.
        assert len(first.reports) == 2

        # Edit ONLY the callee body: the caller's summary must invalidate.
        (tmp_path / "a.c").write_text(
            files["a.c"].replace("{ kfree(p); }", "{ kfree(p); p = p; }")
        )
        warm = compiled_project(tmp_path, paths, cache)
        second = warm.run(incr_checkers(), incremental=make_session(cache))
        counters = warm.stats.counters
        assert counters["incremental_dirty_functions"] == 1  # helper
        assert counters["incremental_dirty_cone"] == 2  # helper + caller
        assert counters["incremental_roots_analyzed"] == 1  # caller
        assert counters["incremental_roots_replayed"] == 1  # standalone
        reference = compiled_project(tmp_path, paths).run(incr_checkers())
        assert report_keys(second) == report_keys(reference)

    def test_corrupt_summary_frame_self_heals(self, tmp_path):
        gen = generate_project(seed=5, n_modules=2, functions_per_module=5)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        with faults.injected([{"site": "summary.corrupt", "mode": "garbage"}]):
            cold = compiled_project(tmp_path, paths, cache)
            cold.run(incr_checkers(), incremental=make_session(cache))
        warm = compiled_project(tmp_path, paths, cache)
        healed = warm.run(incr_checkers(), incremental=make_session(cache))
        assert warm.stats.count("summary_evictions") > 0
        assert warm.stats.count("incremental_roots_analyzed") > 0
        __, reference = self._cold_reference(tmp_path, paths)
        assert report_keys(healed) == report_keys(reference)
        # The heal re-stored good frames: third run replays everything.
        third = compiled_project(tmp_path, paths, cache)
        third.run(incr_checkers(), incremental=make_session(cache))
        assert third.stats.count("incremental_roots_analyzed") == 0
        assert third.stats.count("summary_evictions") == 0

    def test_degraded_roots_are_never_persisted(self, tmp_path):
        gen = generate_project(seed=5, n_modules=2, functions_per_module=4)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        options = AnalysisOptions(
            max_paths_per_root=0, root_error_policy="degrade"
        )
        cold = compiled_project(tmp_path, paths, cache)
        first = cold.run(
            incr_checkers(), options,
            incremental=make_session(cache, options),
        )
        assert first.degraded  # the 0-path budget degrades roots
        # Exactly the degraded (extension, root) pairs were withheld from
        # the store; clean pairs persisted normally.
        total_pairs = 2 * len(cold.callgraph.roots())
        assert cold.stats.count("summary_stores") == (
            total_pairs - len(first.degraded)
        )
        # The warm run misses the withheld frames and re-analyzes those
        # roots (and only those).
        warm = compiled_project(tmp_path, paths, cache)
        second = warm.run(
            incr_checkers(), options,
            incremental=make_session(cache, options),
        )
        degraded_roots = {entry.root for entry in first.degraded}
        assert warm.stats.count("incremental_roots_analyzed") == len(
            degraded_roots
        )
        assert warm.stats.count("summary_misses") > 0
        assert report_keys(second) == report_keys(first)

    def test_coupled_extension_stays_incremental(self, tmp_path):
        # A user-global-writing extension used to force the blanket
        # coupled fallback; annotation-delta capture/replay keeps it
        # incremental (zero fallbacks, frames persisted, warm replay
        # byte-identical to a cold run).
        def coupled_checkers():
            ext = Extension("globals_writer")
            ext.state_var("v", ANY_POINTER)

            def remember(ctx):
                ctx.globals["frees"] = ctx.globals.get("frees", 0) + 1

            ext.transition(
                "start", "{ kfree(v) }", to="v.freed", action=remember
            )
            return [ext]

        def session():
            return IncrementalSession(
                str(cache),
                session_signature(checker_names=["globals_writer"]),
            )

        gen = generate_project(seed=5, n_modules=2, functions_per_module=4)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        project = compiled_project(tmp_path, paths, cache)
        result = project.run(coupled_checkers(), incremental=session())
        assert project.stats.count("incremental_fallbacks") == 0
        assert project.stats.count("summary_stores") > 0
        reference = compiled_project(tmp_path, paths).run(coupled_checkers())
        assert report_keys(result) == report_keys(reference)

        warm = compiled_project(tmp_path, paths, cache)
        replayed = warm.run(coupled_checkers(), incremental=session())
        assert report_keys(replayed) == report_keys(reference)
        assert warm.stats.count("incremental_fallbacks") == 0
        assert warm.stats.count("incremental_roots_analyzed") == 0
        assert warm.stats.count("incremental_coupled_runs") == 1

    def test_restrict_partial_hits_falls_back(self, tmp_path):
        gen = generate_project(seed=5, n_modules=2, functions_per_module=4)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        options = AnalysisOptions(restrict_partial_hits=True)
        project = compiled_project(tmp_path, paths, cache)
        result = project.run(
            incr_checkers(), options,
            incremental=make_session(cache, options),
        )
        assert project.stats.count("incremental_fallbacks") == 1
        reference = compiled_project(tmp_path, paths).run(
            incr_checkers(), AnalysisOptions(restrict_partial_hits=True)
        )
        assert report_keys(result) == report_keys(reference)

    def test_signature_change_invalidates_cache(self, tmp_path):
        gen = generate_project(seed=5, n_modules=2, functions_per_module=4)
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        cold = compiled_project(tmp_path, paths, cache)
        cold.run(incr_checkers(), incremental=make_session(cache))
        # A different option set is a different signature: nothing reused.
        options = AnalysisOptions(synonyms=False)
        warm = compiled_project(tmp_path, paths, cache)
        warm.run(
            incr_checkers(), options,
            incremental=make_session(cache, options),
        )
        assert warm.stats.count("incremental_cold_runs") == 1
        assert warm.stats.count("summary_hits") == 0


class TestIncrementalCLI:
    def _write(self, tmp_path, gen):
        return write_tree(tmp_path, gen)

    def test_requires_cache_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--checker", "free", "--incremental", "x.c"])

    def test_incompatible_with_dump_summaries(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "--checker", "free", "--incremental", "--cache-dir",
                str(tmp_path / "c"), "--dump-summaries", "x.c",
            ])

    def test_cold_and_warm_output_byte_identical(self, tmp_path, capsys):
        gen = generate_project(seed=9, n_modules=3, functions_per_module=6)
        paths = self._write(tmp_path, gen)
        args = [
            "--checker", "free", "--checker", "lock", "-I", str(tmp_path),
            "--cache-dir", str(tmp_path / "cache"), "--incremental",
        ]
        main(args + paths)
        cold_out = capsys.readouterr().out
        apply_function_edits(gen, k=1, seed=2)[0]
        edited, __ = apply_function_edits(gen, k=1, seed=2)
        self._write(tmp_path, edited)
        main(args + paths)
        warm_out = capsys.readouterr().out
        # Plain run over the edited tree, no cache at all.
        main([
            "--checker", "free", "--checker", "lock", "-I", str(tmp_path),
        ] + paths)
        reference_out = capsys.readouterr().out
        assert warm_out == reference_out
        assert cold_out  # the generator always plants findable bugs

    def test_stats_json_has_schema_and_incremental_counters(
        self, tmp_path, capsys
    ):
        gen = generate_project(seed=9, n_modules=2, functions_per_module=5)
        paths = self._write(tmp_path, gen)
        stats_path = tmp_path / "stats.json"
        args = [
            "--checker", "free", "-I", str(tmp_path),
            "--cache-dir", str(tmp_path / "cache"), "--incremental",
            "--stats-json", str(stats_path),
        ]
        main(args + paths)
        capsys.readouterr()
        cold = json.loads(stats_path.read_text())
        assert cold["schema_version"] == 8
        assert cold["counters"]["incremental_cold_runs"] == 1
        assert cold["counters"]["summary_stores"] > 0
        main(args + paths)
        capsys.readouterr()
        warm = json.loads(stats_path.read_text())
        assert warm["counters"]["summary_hits"] > 0
        assert warm["counters"]["incremental_roots_analyzed"] == 0
        assert "incremental_dirty_cone" in warm["counters"]


class TestAcceptance:
    def test_single_edit_on_large_project_reanalyzes_under_quarter(
        self, tmp_path
    ):
        # >= 200 functions (ISSUE acceptance): 5 modules x 40 + entries.
        gen = generate_project(
            seed=13, n_modules=5, functions_per_module=40, bug_rate=0.1
        )
        cache = tmp_path / "cache"
        paths = write_tree(tmp_path, gen)
        cold = compiled_project(tmp_path, paths, cache)
        assert cold.total_functions() >= 200
        cold.run(incr_checkers(), incremental=make_session(cache))

        edited, __ = apply_function_edits(gen, k=1, seed=1)
        paths = write_tree(tmp_path, edited)
        warm = compiled_project(tmp_path, paths, cache)
        incremental = warm.run(
            incr_checkers(), incremental=make_session(cache)
        )
        reference_project = compiled_project(tmp_path, paths)
        reference = reference_project.run(incr_checkers())
        assert report_keys(incremental) == report_keys(reference)
        counters = warm.stats.counters
        total_roots = len(reference_project.callgraph.roots())
        assert counters["incremental_roots_analyzed"] < 0.25 * total_roots
