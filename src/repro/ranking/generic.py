"""Generic ranking (§9).

"By default, our system sorts error messages using the following criteria:

1. *Distance.*  ... the distance between the statement that contains the
   error and the statement where the extension started checking the
   property that led to the error.
2. *Number of conditionals.*  ... Each conditional is arbitrarily weighted
   as ten lines of distance.
3. *Degree of indirection.*  We rank errors that use synonyms below those
   that do not ... sort synonyms based on the length of the assignment
   chain.
4. *Local versus interprocedural.*  We rank all local errors over global
   ones and then order global errors based on the length of the shortest
   call chain ...

The latter two criteria partition error messages into different classes,
which are then sorted using the first two."
"""

#: "Each conditional is arbitrarily weighted as ten lines of distance."
CONDITIONAL_WEIGHT = 10


def difficulty_score(report):
    """Distance + weighted conditionals: the intra-class sorting key."""
    return report.distance + CONDITIONAL_WEIGHT * report.conditionals


def generic_sort_key(report):
    """The full generic ranking key (ascending = inspect first).

    Class partition first (local-vs-interprocedural, then indirection),
    then the distance/conditional score inside each class.
    """
    interprocedural = 0 if report.is_local else 1
    uses_synonyms = 1 if report.synonym_chain > 0 else 0
    return (
        interprocedural,
        report.call_chain,
        uses_synonyms,
        report.synonym_chain,
        difficulty_score(report),
    )


def generic_rank(reports):
    """Reports ordered best-first by the generic criteria."""
    return sorted(reports, key=generic_sort_key)
