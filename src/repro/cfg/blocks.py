"""Basic blocks and function CFGs.

Blocks are xgcc's "internal representation of the CFG for a function"
(§5.2); each one later carries a *block summary* and a *suffix summary*
(stored by the engine in :mod:`repro.engine.summaries`, keyed by block).

A block holds a list of *items* -- AST trees in source order.  An item is
one of:

* an expression tree (from an expression statement, a condition, a return
  value, or a declaration initializer rewritten as an assignment);
* a :class:`repro.cfront.astnodes.VarDecl` (scope entry; engine uses it to
  kill stale state and to know locals for refine/restore);
* a ``ReturnMarker`` (function return, possibly carrying the value tree).

Terminators: a block either falls through to one successor, branches on its
last condition tree (labelled True/False edges), dispatches a switch
(labelled case edges), or ends the function (exit block).
"""


class Edge:
    """A CFG edge with an optional label.

    ``label`` is ``None`` for unconditional edges, ``True``/``False`` for
    branch edges, or ``("case", value)`` / ``"default"`` for switch edges.
    """

    __slots__ = ("target", "label")

    def __init__(self, target, label=None):
        self.target = target
        self.label = label

    def __repr__(self):
        return "Edge(B%d, %r)" % (self.target.index, self.label)


class ReturnMarker:
    """Marks a function return inside a block's item list."""

    __slots__ = ("expr", "location")

    def __init__(self, expr, location):
        self.expr = expr
        self.location = location

    def __repr__(self):
        return "ReturnMarker(%r)" % (self.expr,)


class BasicBlock:
    """One basic block."""

    def __init__(self, index):
        self.index = index
        self.items = []
        self.edges = []
        self.preds = []
        # The condition tree this block branches on (last item), if any.
        self.branch_cond = None
        # The switch discriminant tree, if this block ends in a switch.
        self.switch_cond = None
        # Variables assigned somewhere inside the loop this block heads.
        # Non-empty only for loop-header blocks; used for loop havoc (§8.3).
        self.havoc_vars = frozenset()
        # True for the synthetic function-exit block.
        self.is_exit = False
        # The Call statement item making this a callsite block, if the
        # builder isolated one here (supergraph cp node construction, §6.2).
        self.is_call_block = False

    def add_edge(self, target, label=None):
        edge = Edge(target, label)
        self.edges.append(edge)
        target.preds.append(self)
        return edge

    def successor(self, label=None):
        for edge in self.edges:
            if edge.label == label:
                return edge.target
        return None

    def __repr__(self):
        return "<BasicBlock B%d items=%d succ=%s>" % (
            self.index,
            len(self.items),
            [e.target.index for e in self.edges],
        )


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, decl):
        self.decl = decl  # FunctionDecl
        self.name = decl.name
        self.blocks = []
        self.entry = self.new_block()
        self.exit = self.new_block()
        self.exit.is_exit = True

    def new_block(self):
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def local_names(self):
        """Names of parameters and locals declared anywhere in the function."""
        names = {p.name for p in self.decl.params if p.name}
        for block in self.blocks:
            for item in block.items:
                from repro.cfront.astnodes import VarDecl

                if isinstance(item, VarDecl):
                    names.add(item.name)
        return names

    def prune_unreachable(self):
        """Drop blocks unreachable from the entry (keep the exit block)."""
        reachable = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.index in reachable:
                continue
            reachable.add(block.index)
            for edge in block.edges:
                stack.append(edge.target)
        reachable.add(self.exit.index)
        kept = [b for b in self.blocks if b.index in reachable]
        for block in kept:
            block.edges = [e for e in block.edges if e.target.index in reachable]
            block.preds = [p for p in block.preds if p.index in reachable]
        self.blocks = kept
        for new_index, block in enumerate(self.blocks):
            block.index = new_index

    def __repr__(self):
        return "<CFG %s: %d blocks>" % (self.name, len(self.blocks))
