"""Free checker tests (Figure 1) including the §8 targeted-suppression
variant."""

from conftest import messages, run_checker

from repro.checkers import FREE_CHECKER_SOURCE, free_checker
from repro.checkers.free import suppressed_free_checker
from repro.metal import compile_metal


class TestFigure1Source:
    def test_figure_text_compiles_and_works(self, fig2_code):
        ext = compile_metal(FREE_CHECKER_SOURCE)
        result = run_checker(fig2_code, ext, filename="fig2.c")
        assert sorted(r.location.line for r in result.reports) == [12, 17]

    def test_production_variant_multiple_freers(self):
        code = (
            "int f(int *a, int *b) { kfree(a); vfree(b); return *a + *b; }"
        )
        result = run_checker(code, free_checker(("kfree", "vfree")))
        assert messages(result) == [
            "using a after free!",
            "using b after free!",
        ]

    def test_rule_id_is_freeing_function(self):
        code = "int f(int *a) { vfree(a); return *a; }"
        result = run_checker(code, free_checker(("kfree", "vfree")))
        assert result.reports[0].rule_id == "vfree"

    def test_arrow_deref_found_by_production_variant(self):
        code = (
            "struct s { int x; };\n"
            "int f(struct s *p) { kfree(p); return p->x; }\n"
        )
        result = run_checker(code, free_checker(("kfree", "vfree")))
        assert messages(result) == ["using p after free!"]

    def test_index_deref_found_by_production_variant(self):
        code = "int f(int *p) { kfree(p); return p[3]; }"
        result = run_checker(code, free_checker(("kfree", "vfree")))
        assert messages(result) == ["using p after free!"]

    def test_figure1_only_matches_star_deref(self):
        # the figure's pattern is literally {*v}
        code = "int f(int *p) { kfree(p); return p[3]; }"
        result = run_checker(code, free_checker())
        assert messages(result) == []

    def test_example_counting(self):
        code = (
            "int good(int *a) { kfree(a); return 0; }\n"
            "int bad(int *b) { kfree(b); return *b; }\n"
        )
        result = run_checker(code, free_checker(("kfree",)))
        examples, violations = result.log.rule_counts("kfree")
        assert examples >= 1
        assert violations == 1


class TestTargetedSuppression:
    """§8: the conservative checker's two false-positive classes and their
    eight-line fix."""

    DEBUG_FP = (
        "int f(int *p) { kfree(p); printk(p); return 0; }"
    )
    # In the suppressed checker, printk keeps the freed state: a later real
    # use still fires.
    DEBUG_THEN_USE = (
        "int f(int *p) { kfree(p); printk(p); return *p; }"
    )
    ADDR_FP = (
        "int f(int *p) { kfree(p); reinit(&p); return *p; }"
    )

    def conservative(self):
        """A checker that (deliberately) flags ALL uses of freed pointers,
        including passing them to functions -- the §8 starting point."""
        from repro.cfront import astnodes as ast
        from repro.metal import ANY_POINTER, Extension
        from repro.metal.patterns import Callout

        ext = Extension("conservative_free")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ kfree(v) }", to="v.freed")

        def any_use(context):
            obj = context.bindings.get("v")
            point = context.point
            if obj is None or not isinstance(point, ast.Node):
                return False
            if isinstance(point, ast.Call):
                key = ast.structural_key(obj)
                return any(
                    ast.structural_key(arg) == key
                    or ast.structural_key(arg) == ast.structural_key(ast.Unary("&", obj))
                    for arg in point.args
                )
            from repro.metal.callouts import mc_is_deref_of

            return mc_is_deref_of(point, obj)

        ext.transition(
            "v.freed",
            Callout(any_use, "any use of freed pointer"),
            to="v.stop",
            action=lambda ctx: ctx.err("use of freed %s", ctx.identifier("v")),
        )
        return ext

    def test_conservative_has_the_false_positives(self):
        assert messages(run_checker(self.DEBUG_FP, self.conservative())) == [
            "use of freed p"
        ]
        assert messages(run_checker(self.ADDR_FP, self.conservative())) != []

    def test_suppressed_checker_drops_debug_fp(self):
        result = run_checker(self.DEBUG_FP, suppressed_free_checker())
        assert messages(result) == []

    def test_suppressed_checker_still_reports_later_use(self):
        result = run_checker(self.DEBUG_THEN_USE, suppressed_free_checker())
        assert messages(result) == ["using p after free!"]

    def test_suppressed_checker_drops_addr_fp(self):
        result = run_checker(self.ADDR_FP, suppressed_free_checker())
        assert messages(result) == []

    def test_suppression_is_small(self):
        # "We added eight lines of code to the checker" -- ours adds a few
        # transitions; assert it stays the same order of magnitude.
        base = free_checker(("kfree",))
        suppressed = suppressed_free_checker()
        assert len(suppressed.transitions) - len(base.transitions) <= 4
