"""The persistent, content-addressed AST cache behind incremental pass 1.

The paper's pass 1 "compiles each file in isolation, emitting ASTs" (§6);
those emitted files are re-runnable artifacts.  We key each one by what
actually determines its contents:

    key = SHA-256( parser version
                 || filename
                 || include-path configuration
                 || -D define configuration
                 || preprocessed token stream )

Hashing the *preprocessed* tokens means edits to any transitively included
header invalidate every file that saw it, while whitespace/comment-only
edits still hit.  A warm cache turns pass 1 into pure ``load_emitted``
work: zero re-parses.

Emitted payloads are pickles of a small dict wrapping the translation
unit with its original source size, framed by a magic marker and a
SHA-256 checksum of the pickle.  The checksum is verified on every read:
a truncated, garbled, or version-skewed entry raises
:class:`CacheCorruption` instead of crashing (or silently poisoning) the
run, and the driver evicts it and re-parses (docs/DRIVER.md,
"Degradation semantics").  Bare-unit pickles from older emit dirs still
load -- they just have no checksum to verify.
"""

import hashlib
import os
import pickle

from repro import faults

#: Bump when parser/astnodes change shape: old cache entries stop matching.
PARSER_VERSION = "1"

#: Payload format marker for emitted .ast files.
AST_FORMAT_VERSION = 2

#: Leading magic of a framed payload: marker + 32-byte SHA-256 of the
#: pickle that follows.
FRAME_MAGIC = b"XGCCAST\x02"
_FRAME_HEADER = len(FRAME_MAGIC) + 32


class CacheCorruption(Exception):
    """An emitted/cached payload that cannot be trusted: truncated,
    garbled, checksum-mismatched, or written by a different parser
    version.  Callers evict and re-parse instead of crashing."""


def cache_key(filename, tokens, include_paths=(), defines=None):
    """The content-addressed key for one preprocessed file."""
    digest = hashlib.sha256()
    digest.update(PARSER_VERSION.encode())
    digest.update(b"\x00")
    digest.update(str(filename).encode())
    digest.update(b"\x00")
    for path in include_paths:
        digest.update(str(path).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for name, value in sorted((defines or {}).items()):
        digest.update(("%s=%s" % (name, value)).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for token in tokens:
        digest.update(token.kind.name.encode())
        digest.update(b"\x1f")
        digest.update(token.value.encode())
        digest.update(b"\x1e")
    return digest.hexdigest()


def pack_unit(unit, source_bytes):
    """Serialize a translation unit into the emitted .ast payload."""
    payload = pickle.dumps(
        {
            "format": AST_FORMAT_VERSION,
            "parser_version": PARSER_VERSION,
            "filename": unit.filename,
            "source_bytes": source_bytes,
            "unit": unit,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return FRAME_MAGIC + hashlib.sha256(payload).digest() + payload


def unpack(data):
    """``(unit, source_bytes)`` from an emitted payload.

    Verifies the frame checksum (framed payloads) and the recorded
    parser version; raises :class:`CacheCorruption` on anything
    untrustworthy.  ``source_bytes`` is 0 for legacy bare-unit pickles.
    """
    if data[: len(FRAME_MAGIC)] == FRAME_MAGIC:
        digest = data[len(FRAME_MAGIC):_FRAME_HEADER]
        payload = data[_FRAME_HEADER:]
        if len(data) < _FRAME_HEADER or hashlib.sha256(payload).digest() != digest:
            raise CacheCorruption(
                "checksum mismatch (truncated or garbled payload)"
            )
    else:
        payload = data  # legacy unframed pickle
    try:
        obj = pickle.loads(payload)
    except Exception as err:
        raise CacheCorruption("unreadable payload: %r" % err)
    if isinstance(obj, dict) and "unit" in obj:
        version = obj.get("parser_version")
        if version != PARSER_VERSION:
            raise CacheCorruption(
                "parser version skew: entry says %r, this build is %r"
                % (version, PARSER_VERSION)
            )
        unit, source_bytes = obj["unit"], int(obj.get("source_bytes") or 0)
    else:
        unit, source_bytes = obj, 0
    if not hasattr(unit, "decls"):
        raise CacheCorruption(
            "payload is not a translation unit: %r" % type(unit)
        )
    return unit, source_bytes


class AstCache:
    """Content-addressed store of emitted ASTs under one directory."""

    def __init__(self, root):
        self.root = root

    def path_for(self, key):
        return os.path.join(self.root, key[:2], key + ".ast")

    def lookup(self, key):
        """The on-disk path for ``key``, or None on a miss."""
        path = self.path_for(key)
        return path if os.path.exists(path) else None

    def load(self, key):
        """``(unit, source_bytes, emitted_bytes)`` for a cached key.

        Raises :class:`CacheCorruption` for untrustworthy entries.
        """
        path = self.path_for(key)
        with open(path, "rb") as handle:
            data = handle.read()
        unit, source_bytes = unpack(data)
        return unit, source_bytes, len(data)

    def store(self, key, data):
        """Atomically write a payload; safe under concurrent writers."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        spec = faults.fires("cache.corrupt", key=key)
        if spec is not None:
            corrupt_entry(path, spec.get("mode", "truncate"))
        return path

    def evict(self, key):
        """Drop a (corrupt) entry; the next probe for ``key`` misses."""
        path = self.path_for(key)
        try:
            os.remove(path)
            return True
        except FileNotFoundError:
            return False


def corrupt_entry(path, mode="truncate"):
    """Damage an on-disk entry (fault injection / corruption tests).

    Modes mirror real failure shapes: "truncate" (full disk / killed
    writer), "garbage" (bit rot over the frame header), "version" (a
    structurally valid entry written by a different parser version --
    checksum intact, so only the version check catches it).
    """
    if mode == "truncate":
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
    elif mode == "garbage":
        with open(path, "r+b") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 16)
    elif mode == "version":
        with open(path, "rb") as handle:
            data = handle.read()
        payload = (
            data[_FRAME_HEADER:]
            if data[: len(FRAME_MAGIC)] == FRAME_MAGIC
            else data
        )
        obj = pickle.loads(payload)
        obj["parser_version"] = "0-skewed"
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "wb") as handle:
            handle.write(
                FRAME_MAGIC + hashlib.sha256(payload).digest() + payload
            )
    else:
        raise ValueError("unknown corruption mode: %r" % mode)
    return path
