"""The §2.2 execution walkthrough, step by step.

The paper traces the free checker over Figure 2 in twelve numbered steps;
this module asserts each observable consequence:

* errors exactly at lines 12 (``return *q``) and 17 (``return *w``);
* NO error at line 11 (``return *w`` is safe -- false-path pruning);
* the path count through ``contrived`` is 2, not 4 (two infeasible paths
  pruned);
* the transparent synonym instance for q (step 6) and the kill of p at
  ``p = 0`` (step 7);
* the union-of-exit-states behaviour at the return (step 12).
"""

import pytest

from repro.cfront.parser import parse
from repro.checkers import free_checker
from repro.engine.analysis import Analysis, AnalysisOptions


@pytest.fixture
def result_and_analysis(fig2_code):
    unit = parse(fig2_code, "fig2.c")
    analysis = Analysis([unit])
    result = analysis.run(free_checker())
    return result, analysis


class TestWalkthrough:
    def test_step1_root_is_contrived_caller(self, fig2_code):
        unit = parse(fig2_code, "fig2.c")
        analysis = Analysis([unit])
        assert analysis.callgraph.roots() == ["contrived_caller"]

    def test_errors_at_lines_12_and_17(self, result_and_analysis):
        result, __ = result_and_analysis
        error_lines = sorted(r.location.line for r in result.reports)
        assert error_lines == [12, 17]

    def test_error_messages(self, result_and_analysis):
        result, __ = result_and_analysis
        by_line = {r.location.line: r.message for r in result.reports}
        assert by_line[12] == "using q after free!"
        assert by_line[17] == "using w after free!"

    def test_step8_no_false_positive_at_line_11(self, result_and_analysis):
        # "If the true branch were followed, there would be a false error
        # report at line 11 because w has attached state freed."
        result, __ = result_and_analysis
        assert all(r.location.line != 11 for r in result.reports)

    def test_steps_8_10_pruning_two_paths(self, result_and_analysis):
        # Only two executable paths through contrived, not four; plus the
        # caller's continuation = 3 completed paths in total.
        result, __ = result_and_analysis
        assert result.stats["paths_completed"] == 3

    def test_without_pruning_line_11_fires(self, fig2_code):
        # Ablation: disabling §8 false-path pruning produces exactly the
        # false positive the paper warns about.
        unit = parse(fig2_code, "fig2.c")
        analysis = Analysis([unit], AnalysisOptions(false_path_pruning=False))
        result = analysis.run(free_checker())
        lines = sorted(r.location.line for r in result.reports)
        assert 11 in lines
        assert lines == [11, 12, 17]

    def test_step6_synonym_origin(self, result_and_analysis):
        # q's error traces back to the kfree(p) at line 15 through the
        # synonym created at line 7 (q = p).
        result, __ = result_and_analysis
        q_report = next(r for r in result.reports if r.location.line == 12)
        assert q_report.origin_location.line == 15
        assert q_report.synonym_chain == 1

    def test_step12_w_error_origin(self, result_and_analysis):
        # w was freed at line 6 inside contrived; the error at line 17 is
        # interprocedural.
        result, __ = result_and_analysis
        w_report = next(r for r in result.reports if r.location.line == 17)
        assert w_report.origin_location.line == 6
        assert w_report.call_chain == 0  # reported back in the caller

    def test_step12_union_of_exit_instances(self, fig2_code):
        # "There are two such instances, p and w" -- check the function
        # summary of contrived exposes exactly p and w (not q).
        unit = parse(fig2_code, "fig2.c")
        analysis = Analysis([unit])
        table = analysis.run_one(free_checker())
        entry = analysis._cfg("contrived").entry
        names = set()
        for edge in table.get(entry).suffix:
            if edge.end_snapshot is not None:
                from repro.cfront.unparse import unparse

                names.add(unparse(edge.end_snapshot.obj))
        assert names == {"p", "w"}

    def test_kill_disabled_changes_nothing_here(self, fig2_code):
        # sanity: the walkthrough needs kills for "p = 0" (step 7); without
        # them p would carry freed state into line 13's *q AND p would
        # still be freed at the caller -- but the reports at 12/17 remain.
        unit = parse(fig2_code, "fig2.c")
        analysis = Analysis([unit], AnalysisOptions(kills=False))
        result = analysis.run(free_checker())
        lines = sorted(r.location.line for r in result.reports)
        assert 12 in lines and 17 in lines
