"""Unit tests for the lightweight preprocessor."""

import pytest

from repro.cfront.preproc import Preprocessor, preprocess
from repro.cfront.source import PreprocessorError


def pp(text, **kwargs):
    return preprocess(text, **kwargs)


class TestObjectMacros:
    def test_simple_define(self):
        assert pp("#define N 10\nint x = N;") == "int x = 10 ;"

    def test_redefine(self):
        assert pp("#define N 1\n#define N 2\nint x = N;") == "int x = 2 ;"

    def test_undef(self):
        assert pp("#define N 1\n#undef N\nint x = N;") == "int x = N ;"

    def test_empty_body(self):
        assert pp("#define EMPTY\nint EMPTY x;") == "int x ;"

    def test_nested_expansion(self):
        assert pp("#define A B\n#define B 3\nint x = A;") == "int x = 3 ;"

    def test_self_reference_does_not_loop(self):
        assert pp("#define X X\nint X;") == "int X ;"


class TestFunctionMacros:
    def test_simple(self):
        assert pp("#define SQ(x) ((x)*(x))\nint y = SQ(3);") == (
            "int y = ( ( 3 ) * ( 3 ) ) ;"
        )

    def test_two_args(self):
        assert pp("#define ADD(a,b) (a+b)\nint y = ADD(1, 2);") == (
            "int y = ( 1 + 2 ) ;"
        )

    def test_nested_call_argument(self):
        out = pp("#define ID(x) x\nint y = ID(f(1, 2));")
        assert out == "int y = f ( 1 , 2 ) ;"

    def test_name_without_parens_is_plain(self):
        assert pp("#define F(x) x\nint F;") == "int F ;"

    def test_space_before_parens_makes_object_macro(self):
        # "#define F (x)" is object-like with body "(x)".
        assert pp("#define F (x)\nint y = F;") == "int y = ( x ) ;"

    def test_varargs(self):
        out = pp("#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\nLOG(\"x\", 1, 2);")
        assert out == 'printf ( "x" , 1 , 2 ) ;'

    def test_macro_in_macro_arg(self):
        out = pp("#define N 5\n#define ID(x) x\nint y = ID(N);")
        assert out == "int y = 5 ;"

    def test_stringize_rejected(self):
        with pytest.raises(PreprocessorError):
            pp('#define S(x) #x\nchar *s = S(hi);')


class TestConditionals:
    def test_ifdef_taken(self):
        assert pp("#define A\n#ifdef A\nint x;\n#endif") == "int x ;"

    def test_ifdef_not_taken(self):
        assert pp("#ifdef A\nint x;\n#endif") == ""

    def test_ifndef(self):
        assert pp("#ifndef A\nint x;\n#endif") == "int x ;"

    def test_else(self):
        assert pp("#ifdef A\nint x;\n#else\nint y;\n#endif") == "int y ;"

    def test_elif(self):
        src = "#define B 1\n#if defined(A)\nint x;\n#elif B\nint y;\n#else\nint z;\n#endif"
        assert pp(src) == "int y ;"

    def test_nested(self):
        src = "#define A\n#ifdef A\n#ifdef B\nint x;\n#else\nint y;\n#endif\n#endif"
        assert pp(src) == "int y ;"

    def test_inactive_region_ignores_bad_directives(self):
        src = "#ifdef NOPE\n#define X 1\n#endif\nint X;"
        assert pp(src) == "int X ;"

    def test_if_arithmetic(self):
        assert pp("#if 2 + 3 > 4\nint x;\n#endif") == "int x ;"
        assert pp("#if 2 + 3 > 5\nint x;\n#endif") == ""

    def test_if_ternary_and_logical(self):
        assert pp("#if (1 ? 4 : 5) == 4 && !0\nint x;\n#endif") == "int x ;"

    def test_undefined_identifier_is_zero(self):
        assert pp("#if FOO\nint x;\n#endif") == ""

    def test_unterminated_conditional(self):
        with pytest.raises(PreprocessorError):
            pp("#ifdef A\nint x;")

    def test_stray_endif(self):
        with pytest.raises(PreprocessorError):
            pp("#endif")

    def test_error_directive(self):
        with pytest.raises(PreprocessorError):
            pp("#error broken")

    def test_error_in_dead_branch_is_fine(self):
        assert pp("#ifdef NOPE\n#error broken\n#endif\nint x;") == "int x ;"


class TestIncludes:
    def test_include_from_reader(self):
        files = {"defs.h": "#define N 7\n"}

        def reader(path):
            return files[path]

        out = preprocess(
            '#include "defs.h"\nint x = N;', file_reader=reader
        )
        assert out == "int x = 7 ;"

    def test_include_once(self):
        files = {"h.h": "int counter;\n"}
        out = preprocess(
            '#include "h.h"\n#include "h.h"\n',
            file_reader=lambda p: files[p],
        )
        assert out == "int counter ;"

    def test_missing_quoted_include_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess('#include "gone.h"\n', file_reader=lambda p: (_ for _ in ()).throw(OSError()))

    def test_missing_system_include_skipped(self):
        out = preprocess(
            "#include <linux/slab.h>\nint x;",
            file_reader=lambda p: (_ for _ in ()).throw(OSError()),
        )
        assert out == "int x ;"

    def test_pragma_ignored(self):
        assert pp("#pragma once\nint x;") == "int x ;"


class TestCommandLineDefines:
    def test_defines_param(self):
        p = Preprocessor(defines={"DEBUG": "1"})
        tokens = p.preprocess_text("#ifdef DEBUG\nint x;\n#endif")
        assert [t.value for t in tokens] == ["int", "x", ";"]
