"""The persistent, content-addressed two-tier cache behind incremental runs.

Tier 1 -- emitted ASTs.  The paper's pass 1 "compiles each file in
isolation, emitting ASTs" (§6); those emitted files are re-runnable
artifacts.  We key each one by what actually determines its contents:

    key = SHA-256( parser version
                 || filename
                 || include-path configuration
                 || -D define configuration
                 || preprocessed token stream )

Hashing the *preprocessed* tokens means edits to any transitively included
header invalidate every file that saw it, while whitespace/comment-only
edits still hit.  A warm cache turns pass 1 into pure ``load_emitted``
work: zero re-parses.

Tier 2 -- summary/report frames (:class:`SummaryCache`).  Pass 2's
per-root outcomes (:class:`repro.engine.summaries.RootArtifact`) are
persisted under the same directory, keyed by session signature plus the
root's Merkle *function fingerprint*
(:mod:`repro.cfg.fingerprint`), so a warm incremental run replays clean
roots instead of re-traversing them (docs/DRIVER.md, "Incremental
re-analysis").

Both tiers share one frame format: a pickle preceded by a magic marker
and a SHA-256 checksum of the pickle.  The checksum is verified on every
read: a truncated, garbled, or version-skewed entry raises
:class:`CacheCorruption` instead of crashing (or silently poisoning) the
run, and the driver evicts it and re-derives the content (re-parse for
tier 1, re-analyze for tier 2).  Bare-unit pickles from older emit dirs
still load -- they just have no checksum to verify.

Where the bytes live is a separate concern: both caches speak to an
artifact-store *backend* (:mod:`repro.driver.store` -- LocalStore /
RemoteStore / TieredStore), so the same verification, eviction, and
manifest-merge discipline runs against a local directory, a shared
remote store, or a write-through overlay of both.  The directory-path
constructors (``AstCache(dir)`` / ``SummaryCache(dir)``) keep the
original on-disk layout bit for bit.

Manifest writes use ETag compare-and-swap with bounded retry
(:data:`repro.driver.store.MANIFEST_CAS_RETRIES`): the read-merge-write
cycle re-reads and re-merges on conflict instead of holding a
filesystem lock across the cycle, which is what lets rival sessions on
*different machines* share one manifest through the remote store.  On a
local backend the CAS itself is still serialized under the
per-signature :func:`_file_lock`, so each round commits exactly one
writer and N contenders converge in at most N rounds.
"""

import contextlib
import hashlib
import json
import os
import pickle
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro import faults
from repro.driver import store as storemod
from repro.driver.store import StoreError  # noqa: F401  (re-exported)
from repro.engine.summaries import SUMMARY_VERSION

#: Bump when parser/astnodes change shape: old cache entries stop matching.
PARSER_VERSION = "1"

#: Payload format marker for emitted .ast files.
AST_FORMAT_VERSION = 2

#: Payload format marker for summary (.sum) frames.  2: RootArtifact
#: carries an annotation/user-global delta; manifests record the frame
#: and AST keys the run used (cache GC liveness).
SUMMARY_FORMAT_VERSION = 2

#: Leading magic of a framed payload: marker + 32-byte SHA-256 of the
#: pickle that follows.
FRAME_MAGIC = b"XGCCAST\x02"
_FRAME_HEADER = len(FRAME_MAGIC) + 32

#: Frame magic for tier-2 summary frames (same layout, distinct marker so
#: the tiers can never be confused for one another).
SUMMARY_MAGIC = b"XGCCSUM\x01"
_SUMMARY_HEADER = len(SUMMARY_MAGIC) + 32


class CacheCorruption(Exception):
    """An emitted/cached payload that cannot be trusted: truncated,
    garbled, checksum-mismatched, or written by a different parser
    version.  Callers evict and re-parse instead of crashing."""


def cache_key(filename, tokens, include_paths=(), defines=None):
    """The content-addressed key for one preprocessed file."""
    digest = hashlib.sha256()
    digest.update(PARSER_VERSION.encode())
    digest.update(b"\x00")
    digest.update(str(filename).encode())
    digest.update(b"\x00")
    for path in include_paths:
        digest.update(str(path).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for name, value in sorted((defines or {}).items()):
        digest.update(("%s=%s" % (name, value)).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for token in tokens:
        digest.update(token.kind.name.encode())
        digest.update(b"\x1f")
        digest.update(token.value.encode())
        digest.update(b"\x1e")
    return digest.hexdigest()


def pack_frame(magic, payload_obj):
    """Frame an arbitrary picklable payload: magic + SHA-256 + pickle."""
    payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    return magic + hashlib.sha256(payload).digest() + payload


def unpack_frame(magic, data):
    """The verified payload object of a frame written by
    :func:`pack_frame`; raises :class:`CacheCorruption` on a wrong
    marker, checksum mismatch, or unreadable pickle."""
    header = len(magic) + 32
    if data[: len(magic)] != magic:
        raise CacheCorruption("bad frame magic (wrong tier or not a frame)")
    digest = data[len(magic):header]
    payload = data[header:]
    if len(data) < header or hashlib.sha256(payload).digest() != digest:
        raise CacheCorruption(
            "checksum mismatch (truncated or garbled payload)"
        )
    try:
        return pickle.loads(payload)
    except Exception as err:
        raise CacheCorruption("unreadable payload: %r" % err)


def pack_unit(unit, source_bytes):
    """Serialize a translation unit into the emitted .ast payload."""
    return pack_frame(
        FRAME_MAGIC,
        {
            "format": AST_FORMAT_VERSION,
            "parser_version": PARSER_VERSION,
            "filename": unit.filename,
            "source_bytes": source_bytes,
            "unit": unit,
        },
    )


def unpack(data):
    """``(unit, source_bytes)`` from an emitted payload.

    Verifies the frame checksum (framed payloads) and the recorded
    parser version; raises :class:`CacheCorruption` on anything
    untrustworthy.  ``source_bytes`` is 0 for legacy bare-unit pickles.
    """
    if data[: len(FRAME_MAGIC)] == FRAME_MAGIC:
        obj = unpack_frame(FRAME_MAGIC, data)
    else:
        # legacy unframed pickle
        try:
            obj = pickle.loads(data)
        except Exception as err:
            raise CacheCorruption("unreadable payload: %r" % err)
    if isinstance(obj, dict) and "unit" in obj:
        version = obj.get("parser_version")
        if version != PARSER_VERSION:
            raise CacheCorruption(
                "parser version skew: entry says %r, this build is %r"
                % (version, PARSER_VERSION)
            )
        unit, source_bytes = obj["unit"], int(obj.get("source_bytes") or 0)
    else:
        unit, source_bytes = obj, 0
    if not hasattr(unit, "decls"):
        raise CacheCorruption(
            "payload is not a translation unit: %r" % type(unit)
        )
    return unit, source_bytes


class AstCache:
    """Content-addressed store of emitted ASTs behind one backend.

    ``AstCache(directory)`` keeps the original filesystem layout;
    ``AstCache(backend=...)`` runs the same cache against any
    :mod:`repro.driver.store` backend (remote, tiered).
    """

    def __init__(self, root=None, backend=None):
        self.root = root
        self.backend = (
            backend if backend is not None
            else storemod.LocalStore(ast_dir=root)
        )

    def path_for(self, key):
        """The local on-disk path for ``key`` (None for a backend with
        no local tier)."""
        return self.backend.local_path("ast", key)

    def lookup(self, key):
        """The on-disk path for ``key`` when it is local, a placeholder
        token when it exists only remotely, or None on a miss."""
        path = self.backend.local_path("ast", key)
        if path is not None and os.path.exists(path):
            return path
        if self.backend.head_many("ast", [key]):
            return path if path else "remote:%s" % key
        return None

    def fetch(self, key):
        """``(data, path)`` for a cached key, without verifying it.

        A local (or overlay) hit returns ``(None, path)`` -- the bytes
        stay on disk for the parent process to read, exactly as before
        the store existed.  A remote-only hit returns ``(bytes, None)``
        unless the backend's write-through landed the frame locally, in
        which case the local path is preferred.  ``(None, None)`` is a
        miss.
        """
        path = self.backend.local_path("ast", key)
        if path is not None and os.path.exists(path):
            touch_entry(path)
            if hasattr(self.backend, "count_overlay_hit"):
                self.backend.count_overlay_hit()
            return None, path
        data = self.backend.get_many("ast", [key]).get(key)
        if data is None:
            return None, None
        if path is not None and os.path.exists(path):
            return None, path  # write-through overlay landed it
        return data, None

    def load(self, key):
        """``(unit, source_bytes, emitted_bytes)`` for a cached key.

        Raises :class:`CacheCorruption` for untrustworthy entries and
        ``FileNotFoundError`` on a miss.  A successful read refreshes
        the entry's liveness (mtime locally, server-side for remotes),
        so frames a warm session keeps replaying never age past the GC
        cutoff.
        """
        data = self.backend.get_many("ast", [key]).get(key)
        if data is None:
            raise FileNotFoundError(key)
        unit, source_bytes = unpack(data)
        return unit, source_bytes, len(data)

    def store(self, key, data):
        """Atomically write a payload; safe under concurrent writers."""
        self.backend.put_many("ast", {key: data})
        spec = faults.fires("cache.corrupt", key=key)
        if spec is not None:
            self.corrupt(key, spec.get("mode", "truncate"))
        path = self.backend.local_path("ast", key)
        return path if path else key

    def touch(self, key):
        """Refresh an entry's liveness without reading it."""
        self.backend.touch_many("ast", [key])

    def entry_mtime(self, key):
        """The entry's mtime (local or remote), or None when absent."""
        return self.backend.entry_mtime("ast", key)

    def set_entry_mtime(self, key, ts):
        """Backdate an entry (GC aging in tests) through the backend."""
        self.backend.touch_many("ast", [key], ts=ts)

    def corrupt(self, key, mode="truncate"):
        """Damage a stored entry *through the backend* (fault injection:
        reaches every tier a write-through put reached, so self-heal
        tests cannot silently heal from an untouched copy)."""
        data = self.backend.get_many("ast", [key]).get(key)
        if data is None:
            return
        self.backend.put_many("ast", {key: corrupt_bytes(data, mode)})

    def evict(self, key):
        """Drop a (corrupt) entry; the next probe for ``key`` misses."""
        return self.backend.delete_many("ast", [key]) > 0


def pack_artifact(artifact):
    """Serialize one per-root outcome into a framed .sum payload."""
    return pack_frame(
        SUMMARY_MAGIC,
        {
            "format": SUMMARY_FORMAT_VERSION,
            "summary_version": SUMMARY_VERSION,
            "artifact": artifact,
        },
    )


def unpack_artifact(data):
    """The :class:`repro.engine.summaries.RootArtifact` of a framed .sum
    payload; raises :class:`CacheCorruption` on anything untrustworthy,
    including frames written by a different summary format or engine
    summary version."""
    obj = unpack_frame(SUMMARY_MAGIC, data)
    if not isinstance(obj, dict) or "artifact" not in obj:
        raise CacheCorruption("summary frame has no artifact")
    if obj.get("format") != SUMMARY_FORMAT_VERSION:
        raise CacheCorruption(
            "summary format skew: entry says %r, this build is %r"
            % (obj.get("format"), SUMMARY_FORMAT_VERSION)
        )
    if obj.get("summary_version") != SUMMARY_VERSION:
        raise CacheCorruption(
            "engine summary version skew: entry says %r, this build is %r"
            % (obj.get("summary_version"), SUMMARY_VERSION)
        )
    return obj["artifact"]


class SummaryCache:
    """Tier 2: per-root summary/report frames plus the session manifest.

    Frames are keyed by the session signature and the root's Merkle
    fingerprint (the key is computed by the incremental session, see
    :mod:`repro.driver.session`), so an entry can only ever be replayed
    into a run whose extensions, options, and transitive callee cone all
    match the run that produced it.
    """

    def __init__(self, root=None, backend=None):
        self.root = root
        self.backend = (
            backend if backend is not None
            else storemod.LocalStore(sum_dir=root)
        )
        #: Batched-read stash: frames fetched ahead of time by
        #: :meth:`prefetch`, consumed by :meth:`get`.
        self._prefetched = {}

    def path_for(self, key):
        """The local on-disk path for ``key`` (None for a backend with
        no local tier)."""
        return self.backend.local_path("sum", key)

    def lookup(self, key):
        """The on-disk path for ``key`` when it is local, a placeholder
        token when it exists only remotely, or None on a miss."""
        path = self.backend.local_path("sum", key)
        if path is not None and os.path.exists(path):
            return path
        if self.backend.head_many("sum", [key]):
            return path if path else "remote:%s" % key
        return None

    def load(self, key):
        """The cached :class:`RootArtifact` for ``key``.

        Raises :class:`CacheCorruption` for untrustworthy entries and
        ``FileNotFoundError`` on a miss.  A successful read refreshes
        the frame's liveness: a frame a warm session (or daemon)
        replays daily must read as *in use* to the GC's ``mtime >=
        cutoff`` keep rule, not as untouched since the run that stored
        it.
        """
        data = self.backend.get_many("sum", [key]).get(key)
        if data is None:
            raise FileNotFoundError(key)
        return unpack_artifact(data)

    def get(self, key):
        """The cached :class:`RootArtifact`, or None on a miss (one
        probe, no separate existence check).  Raises
        :class:`CacheCorruption` for untrustworthy frames -- the caller
        evicts and re-analyzes.  Consumes the :meth:`prefetch` stash
        first, so batched backends pay one round trip for a whole clean
        set."""
        data = self._prefetched.pop(key, None)
        if data is None:
            data = self.backend.get_many("sum", [key]).get(key)
        if data is None:
            return None
        return unpack_artifact(data)

    def prefetch(self, keys):
        """Fetch many frames in one backend batch, stashed for
        :meth:`get`.  Best-effort: a failed batch just means per-key
        fetches later (which carry the real error handling)."""
        wanted = [key for key in keys if key not in self._prefetched]
        if not wanted:
            return
        try:
            self._prefetched.update(self.backend.get_many("sum", wanted))
        except storemod.StoreError:
            pass

    def touch(self, key):
        """Refresh a frame's liveness without reading it (in-memory
        warm hits still count as GC liveness)."""
        self.backend.touch_many("sum", [key])

    def entry_mtime(self, key):
        """The frame's mtime (local or remote), or None when absent."""
        return self.backend.entry_mtime("sum", key)

    def set_entry_mtime(self, key, ts):
        """Backdate a frame (GC aging in tests) through the backend."""
        self.backend.touch_many("sum", [key], ts=ts)

    def store(self, key, artifact):
        """Atomically persist one per-root outcome."""
        self.backend.put_many("sum", {key: pack_artifact(artifact)})
        spec = faults.fires("summary.corrupt", key=key)
        if spec is not None:
            self.corrupt(key, spec.get("mode", "truncate"))
        path = self.backend.local_path("sum", key)
        return path if path else key

    def store_many(self, artifacts):
        """Persist a batch of per-root outcomes (one backend round trip
        for remote stores)."""
        payload = {
            key: pack_artifact(artifact)
            for key, artifact in sorted(artifacts.items())
        }
        self.backend.put_many("sum", payload)
        for key in payload:
            spec = faults.fires("summary.corrupt", key=key)
            if spec is not None:
                self.corrupt(key, spec.get("mode", "truncate"))

    def corrupt(self, key, mode="truncate"):
        """Damage a stored frame *through the backend* (fault
        injection: reaches every tier a write-through put reached)."""
        data = self.backend.get_many("sum", [key]).get(key)
        if data is None:
            return
        self.backend.put_many("sum", {key: corrupt_bytes(data, mode)})

    def evict(self, key):
        """Drop a (corrupt) entry; the next probe for ``key`` misses."""
        self._prefetched.pop(key, None)
        return self.backend.delete_many("sum", [key]) > 0

    # -- session manifest -------------------------------------------------
    #
    # One JSON document per session signature recording the fingerprint of
    # every function the last completed run saw.  Diffing the manifest
    # against freshly computed fingerprints yields the dirty function set.

    def manifest_path(self, signature):
        """The local manifest path (a stable token for pathless
        backends)."""
        path = self.backend.manifest_local_path(signature)
        return path if path else "manifest-%s.json" % signature[:32]

    def _decode_manifest(self, text, signature):
        """The validated manifest document from its JSON text, or None
        when absent/unreadable/skewed."""
        if text is None:
            return None
        try:
            obj = json.loads(text)
        except ValueError:
            return None
        if (
            not isinstance(obj, dict)
            or obj.get("format") != SUMMARY_FORMAT_VERSION
            or obj.get("signature") != signature
            or not isinstance(obj.get("fingerprints"), dict)
        ):
            return None
        return obj

    def load_manifest_document(self, signature):
        """The full manifest document for a signature, or None when
        absent/unreadable/skewed (an unreachable store counts as
        absent: cold run, never a crash)."""
        try:
            text, __ = self.backend.manifest_get(signature)
        except storemod.StoreError:
            return None
        return self._decode_manifest(text, signature)

    def load_manifest(self, signature):
        """``{function: fingerprint}`` from the last run under this
        signature, or None when absent/unreadable (a garbled manifest
        degrades to a cold run, never a crash)."""
        obj = self.load_manifest_document(signature)
        if obj is None:
            return None
        return obj["fingerprints"]

    def store_manifest(self, signature, fingerprints, frame_keys=(),
                       ast_keys=(), stats=None):
        """Record the fingerprints of a completed run.

        A read-merge-write through ETag compare-and-swap: entries from
        a concurrent session (functions we did not fingerprint this
        run, frame/AST keys we did not touch) are preserved rather than
        clobbered, so two incremental sessions sharing one store both
        keep their warm state.  For functions both runs saw, this run's
        fingerprint wins.  A CAS conflict (rival landed first) re-reads
        and re-merges, bounded by :data:`repro.driver.store.
        MANIFEST_CAS_RETRIES` and counted as ``store_cas_conflicts``;
        an exhausted bound loses this merge loudly (degradation record)
        rather than corrupting anything.  ``frame_keys``/``ast_keys``
        are the tier-2/tier-1 entries this run stored or replayed; GC
        treats them as live as long as the manifest is fresh.
        """
        spec = faults.fires("summary.manifest", key=signature)
        if spec is not None:
            # Fault injection: a rival session completes its manifest
            # store in the window before ours.  The merge below must
            # preserve its entries.
            self._merge_manifest(
                signature,
                dict(spec.get("fingerprints") or {"__rival__": ["r", "r"]}),
                spec.get("frame_keys") or (),
                spec.get("ast_keys") or (),
                None,
            )
        return self._merge_manifest(
            signature, fingerprints, frame_keys, ast_keys, stats)

    def _manifest_document(self, signature, fingerprints, frame_keys,
                           ast_keys):
        return json.dumps(
            {
                "format": SUMMARY_FORMAT_VERSION,
                "signature": signature,
                "fingerprints": fingerprints,
                "frame_keys": sorted(frame_keys),
                "ast_keys": sorted(ast_keys),
            },
            sort_keys=True,
        )

    def _merge_manifest(self, signature, fingerprints, frame_keys,
                        ast_keys, stats):
        counted_merge = False
        for _attempt in range(storemod.MANIFEST_CAS_RETRIES):
            text, etag = self.backend.manifest_get(signature)
            existing = self._decode_manifest(text, signature)
            merged = dict(fingerprints)
            frames = set(frame_keys)
            asts = set(ast_keys)
            if existing is not None:
                theirs = existing["fingerprints"]
                for name, entry in theirs.items():
                    merged.setdefault(name, entry)
                frames.update(existing.get("frame_keys") or ())
                asts.update(existing.get("ast_keys") or ())
                if (
                    stats is not None and not counted_merge
                    and set(theirs) - set(fingerprints)
                ):
                    stats.add("manifest_merges")
                    counted_merge = True
            document = self._manifest_document(
                signature, merged, frames, asts)
            spec = faults.fires("store.conflict", key=signature)
            if spec is not None:
                # Fault injection: a rival's CAS lands in our
                # read->write window, invalidating the ETag we hold.
                self._rival_cas(signature, spec)
            committed, __, __ = self.backend.manifest_cas(
                signature, document, etag, stats=stats)
            if committed:
                return self.manifest_path(signature)
            if stats is not None:
                stats.add("store_cas_conflicts")
        if stats is not None:
            stats.record_degradation(
                "store",
                "manifest CAS for %s... exhausted %d retries; this "
                "run's merge was lost (next run re-derives)"
                % (signature[:12], storemod.MANIFEST_CAS_RETRIES),
            )
        return self.manifest_path(signature)

    def _rival_cas(self, signature, spec):
        """Land a genuine rival merge between our read and our CAS (the
        ``store.conflict`` fault): read-merge-write of the rival's
        fingerprints, retried a few times so it always commits."""
        rival = dict(spec.get("fingerprints") or {"__rival__": ["r", "r"]})
        for _attempt in range(8):
            text, etag = self.backend.manifest_get(signature)
            existing = self._decode_manifest(text, signature)
            merged = dict(rival)
            frames = set(spec.get("frame_keys") or ())
            asts = set(spec.get("ast_keys") or ())
            if existing is not None:
                for name, entry in existing["fingerprints"].items():
                    merged.setdefault(name, entry)
                frames.update(existing.get("frame_keys") or ())
                asts.update(existing.get("ast_keys") or ())
            document = self._manifest_document(
                signature, merged, frames, asts)
            committed, __, __ = self.backend.manifest_cas(
                signature, document, etag)
            if committed:
                return


#: Lockfile-fallback tuning (non-``fcntl`` platforms): how long one
#: waiter retries before it declares the holder dead, and how old an
#: ``.excl`` lockfile must be before it is stolen as stale.
_LOCK_FALLBACK_TIMEOUT = 10.0
_LOCK_FALLBACK_STALE = 30.0


@contextlib.contextmanager
def _file_lock(path, stats=None):
    """An exclusive advisory lock around a read-merge-write cycle.

    With ``fcntl`` available this is a plain ``flock``.  Without it the
    lock does NOT silently become a no-op (that would quietly drop the
    read-merge-write concurrency guarantee): it falls back to an
    ``O_CREAT | O_EXCL`` lockfile with bounded retry, counted in
    ``stats`` as ``manifest_lock_fallbacks`` so the degraded locking
    discipline is visible in ``--stats-json``.  A lockfile older than
    :data:`_LOCK_FALLBACK_STALE` seconds (crashed holder) is stolen;
    a waiter that exhausts :data:`_LOCK_FALLBACK_TIMEOUT` steals too
    rather than wedging — the write itself stays atomic (tmp +
    replace), so the worst case is a lost merge, never corruption.
    """
    if fcntl is not None:
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield True
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        return
    if stats is not None:
        stats.add("manifest_lock_fallbacks")
    excl = path + ".excl"
    deadline = time.monotonic() + _LOCK_FALLBACK_TIMEOUT
    while True:
        try:
            fd = os.open(excl, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            break
        except FileExistsError:
            try:
                stale = time.time() - os.path.getmtime(excl)
            except OSError:
                continue  # holder released between open and stat: retry
            if stale > _LOCK_FALLBACK_STALE or time.monotonic() > deadline:
                # Crashed holder (or one outliving any sane merge):
                # steal the lock instead of wedging every later writer.
                try:
                    os.remove(excl)
                except OSError:
                    pass
                continue
            time.sleep(0.01)
    try:
        os.close(fd)
        yield True
    finally:
        try:
            os.remove(excl)
        except OSError:
            pass


#: Sorted manifest paths under a summaries dir (lives with the backends
#: now; kept here for callers that imported it from this module).
_manifest_files = storemod._manifest_files


def collect_cache_garbage(cache_dir, summaries_subdir="summaries",
                          cutoff_days=30.0, now=None, stats=None,
                          extra_live_sum=(), extra_live_ast=(),
                          _after_scan=None, backend=None):
    """Sweep stale content-addressed entries from an artifact store.

    The sweep semantics (manifest pins, mtime cutoff, extra-live keys,
    the locked pin-read + sweep critical section, the ``_after_scan``
    test hook) live in :meth:`repro.driver.store.LocalStore.gc`; this
    wrapper keeps the long-standing directory-path call shape, builds
    the matching local backend when none is given, and folds the
    eviction counters into ``stats``.  With ``backend`` set (a tiered
    or remote store) the sweep runs wherever the frames live --
    server-side GC receives the same extra-live pins, so a daemon's
    warm state protects remote frames exactly like local ones.
    """
    if backend is None:
        backend = storemod.LocalStore(
            root=cache_dir,
            sum_dir=(
                os.path.join(cache_dir, summaries_subdir)
                if cache_dir is not None else None
            ),
        )
    counters = backend.gc(
        cutoff_days=cutoff_days, now=now, stats=stats,
        extra_live_sum=extra_live_sum, extra_live_ast=extra_live_ast,
        _after_scan=_after_scan,
    )
    if stats is not None:
        for name, value in counters.items():
            if value:
                stats.add(name, value)
    return counters


def touch_entry(path):
    """Refresh an entry's mtime (GC keeps what warm runs actually use);
    best-effort, a vanished or read-only entry is not an error."""
    try:
        os.utime(path, None)
    except OSError:
        pass


def corrupt_bytes(data, mode="truncate"):
    """Return a damaged copy of an in-memory frame (fault injection).

    Modes mirror real failure shapes: "truncate" (full disk / killed
    writer), "garbage" (bit rot over the frame header), "version" (a
    structurally valid entry written by a different parser version --
    checksum intact, so only the version check catches it).
    """
    if mode == "truncate":
        return data[: len(data) // 2]
    if mode == "garbage":
        junk = b"\xde\xad\xbe\xef" * 16
        return junk + data[len(junk):]
    if mode == "version":
        if data[: len(SUMMARY_MAGIC)] == SUMMARY_MAGIC:
            magic, payload = SUMMARY_MAGIC, data[_SUMMARY_HEADER:]
        elif data[: len(FRAME_MAGIC)] == FRAME_MAGIC:
            magic, payload = FRAME_MAGIC, data[_FRAME_HEADER:]
        else:
            magic, payload = FRAME_MAGIC, data
        obj = pickle.loads(payload)
        if magic == SUMMARY_MAGIC:
            obj["summary_version"] = "0-skewed"
        else:
            obj["parser_version"] = "0-skewed"
        return pack_frame(magic, obj)
    raise ValueError("unknown corruption mode: %r" % mode)


def corrupt_entry(path, mode="truncate"):
    """Damage an on-disk entry in place (see :func:`corrupt_bytes`)."""
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(corrupt_bytes(data, mode))
    return path
