"""Incremental re-analysis benchmarks (docs/DRIVER.md).

Two series, dumped to ``BENCH_incremental.json``: on generated
multi-module projects, pass-2 wall-clock and roots-analyzed for

- a cold incremental run (empty summary store: full analysis + stores),
- a warm no-edit run (every root replayed from tier-2 frames),
- a warm run after one seeded function-body edit (only the edited
  function's dirty cone re-analyzed).

``incremental`` runs per-root checkers; ``incremental_global`` runs the
coupled pathkill+free+audit suite whose cross-root state used to force
the blanket fallback, and asserts it now stays incremental (zero
``incremental_fallbacks``, dirty-cone-only re-analysis, warm ranked
report byte-identical to cold).

The shape assertions are the ISSUE acceptance criteria: warm-after-edit
re-analyzes <25% of roots and every variant's reports are byte-identical
to a cold reference run.
"""

import json
import time

from repro.checkers import (
    audit_checker,
    free_checker,
    lock_checker,
    path_kill_extension,
)
from repro.codegen.project_gen import (
    apply_function_edits,
    generate_global_project,
    generate_project,
)
from repro.driver.project import Project
from repro.driver.session import IncrementalSession, session_signature
from repro.ranking.severity import stratify

SUMMARY_PATH = "BENCH_incremental.json"
_summary = {}


def _dump_summary():
    with open(SUMMARY_PATH, "w") as handle:
        json.dump(_summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


def bench_checkers():
    return [free_checker(("kfree", "vfree")), lock_checker()]


def materialize(tmp_path, generated, name):
    root = tmp_path / name
    root.mkdir(exist_ok=True)
    for filename, text in generated.files.items():
        (root / filename).write_text(text)
    paths = sorted(
        str(root / filename)
        for filename in generated.files if filename.endswith(".c")
    )
    return str(root), paths


def report_keys(result):
    return [
        (r.checker, r.message, r.location.filename, r.location.line,
         r.location.column, r.function)
        for r in result.reports
    ]


def timed_incremental_run(root, paths, cache_dir):
    """(elapsed pass-2 seconds, result, stats counters) for one session
    run over a freshly compiled project (pass 1 warm via the AST cache)."""
    project = Project(include_paths=[root], cache_dir=cache_dir)
    project.compile_files(paths)
    session = IncrementalSession(
        cache_dir, session_signature(checker_names=["free", "lock"])
    )
    start = time.perf_counter()
    result = project.run(bench_checkers(), incremental=session)
    return time.perf_counter() - start, result, dict(project.stats.counters)


def test_incremental_cold_warm_edit(benchmark, tmp_path):
    generated = generate_project(
        seed=13, n_modules=5, functions_per_module=40, bug_rate=0.1
    )
    root, paths = materialize(tmp_path, generated, "proj")
    cache_dir = str(tmp_path / "cache")

    cold_s, cold_result, cold_counters = timed_incremental_run(
        root, paths, cache_dir
    )
    warm_s, warm_result, warm_counters = timed_incremental_run(
        root, paths, cache_dir
    )

    edited, edits = apply_function_edits(generated, k=1, seed=1)
    root, paths = materialize(tmp_path, edited, "proj")
    edit_s, edit_result, edit_counters = timed_incremental_run(
        root, paths, cache_dir
    )

    # Byte-identity against a sessionless cold run over the edited tree.
    reference = Project(include_paths=[root])
    reference.compile_files(paths)
    reference_result = reference.run(bench_checkers())
    assert report_keys(edit_result) == report_keys(reference_result)
    assert report_keys(cold_result) == report_keys(warm_result)

    total_roots = len(reference.callgraph.roots())
    total_functions = reference.total_functions()
    rows = {
        "total_functions": total_functions,
        "total_roots": total_roots,
        "edited_functions": len(edits),
        "cold": {
            "wall_s": round(cold_s, 4),
            "roots_analyzed": cold_counters["incremental_roots_analyzed"],
            "summary_stores": cold_counters["summary_stores"],
        },
        "warm_no_edit": {
            "wall_s": round(warm_s, 4),
            "roots_analyzed": warm_counters["incremental_roots_analyzed"],
            "roots_replayed": warm_counters["incremental_roots_replayed"],
            "summary_hits": warm_counters["summary_hits"],
        },
        "warm_one_edit": {
            "wall_s": round(edit_s, 4),
            "roots_analyzed": edit_counters["incremental_roots_analyzed"],
            "roots_replayed": edit_counters["incremental_roots_replayed"],
            "dirty_cone": edit_counters["incremental_dirty_cone"],
        },
        "speedup_warm_no_edit": round(cold_s / max(warm_s, 1e-9), 2),
        "speedup_warm_one_edit": round(cold_s / max(edit_s, 1e-9), 2),
    }
    print("\nincremental pass 2, %d functions, %d roots:" % (
        total_functions, total_roots))
    print("  cold          %.3fs  %3d roots analyzed" % (
        cold_s, rows["cold"]["roots_analyzed"]))
    print("  warm no-edit  %.3fs  %3d analyzed / %d replayed  (x%.1f)" % (
        warm_s, rows["warm_no_edit"]["roots_analyzed"],
        rows["warm_no_edit"]["roots_replayed"],
        rows["speedup_warm_no_edit"]))
    print("  warm 1-edit   %.3fs  %3d analyzed / %d replayed  (x%.1f)" % (
        edit_s, rows["warm_one_edit"]["roots_analyzed"],
        rows["warm_one_edit"]["roots_replayed"],
        rows["speedup_warm_one_edit"]))

    assert total_functions >= 200
    assert warm_counters["incremental_roots_analyzed"] == 0
    assert edit_counters["incremental_roots_analyzed"] < 0.25 * total_roots
    assert warm_s < cold_s
    _summary["incremental"] = rows
    _dump_summary()

    small = generate_project(seed=3, n_modules=2, functions_per_module=6)
    small_root, small_paths = materialize(tmp_path, small, "small")
    small_cache = str(tmp_path / "small_cache")
    timed_incremental_run(small_root, small_paths, small_cache)
    benchmark(timed_incremental_run, small_root, small_paths, small_cache)


GLOBAL_CHECKER_NAMES = ["pathkill", "free", "audit"]


def global_checkers():
    return [
        path_kill_extension(),
        free_checker(("kfree", "vfree")),
        audit_checker(),
    ]


def ranked_text(result):
    return "\n".join(r.format_trace() for r in stratify(result.reports))


def timed_global_run(root, paths, cache_dir):
    project = Project(include_paths=[root], cache_dir=cache_dir)
    project.compile_files(paths)
    session = IncrementalSession(
        cache_dir, session_signature(checker_names=GLOBAL_CHECKER_NAMES)
    )
    start = time.perf_counter()
    result = project.run(global_checkers(), incremental=session)
    return time.perf_counter() - start, result, dict(project.stats.counters)


def test_incremental_global_checkers(benchmark, tmp_path):
    generated = generate_global_project(
        seed=13, n_modules=4, functions_per_module=24, bug_rate=0.1
    )
    root, paths = materialize(tmp_path, generated, "gproj")
    cache_dir = str(tmp_path / "gcache")

    cold_s, cold_result, cold_counters = timed_global_run(
        root, paths, cache_dir
    )
    warm_s, warm_result, warm_counters = timed_global_run(
        root, paths, cache_dir
    )

    # seed=1 edits a vanilla function (no audit tag, no guarded free):
    # the re-entered cone should stay minimal.
    edited, edits = apply_function_edits(generated, k=1, seed=1)
    root, paths = materialize(tmp_path, edited, "gproj")
    edit_s, edit_result, edit_counters = timed_global_run(
        root, paths, cache_dir
    )

    reference = Project(include_paths=[root])
    reference.compile_files(paths)
    reference_result = reference.run(global_checkers())
    assert ranked_text(edit_result) == ranked_text(reference_result)
    assert ranked_text(cold_result) == ranked_text(warm_result)
    assert any(r.checker == "audit_tags" for r in reference_result.reports)

    total_roots = len(reference.callgraph.roots())
    for counters in (cold_counters, warm_counters, edit_counters):
        assert counters.get("incremental_fallbacks", 0) == 0
    assert warm_counters["incremental_roots_analyzed"] == 0
    assert edit_counters["incremental_roots_analyzed"] < 0.25 * total_roots

    rows = {
        "total_functions": reference.total_functions(),
        "total_roots": total_roots,
        "edited_functions": len(edits),
        "cold": {
            "wall_s": round(cold_s, 4),
            "roots_analyzed": cold_counters["incremental_roots_analyzed"],
            "summary_stores": cold_counters["summary_stores"],
        },
        "warm_no_edit": {
            "wall_s": round(warm_s, 4),
            "roots_analyzed": warm_counters["incremental_roots_analyzed"],
            "roots_replayed": warm_counters["incremental_roots_replayed"],
            "delta_replays": warm_counters["annotation_delta_replays"],
        },
        "warm_one_edit": {
            "wall_s": round(edit_s, 4),
            "roots_analyzed": edit_counters["incremental_roots_analyzed"],
            "roots_replayed": edit_counters["incremental_roots_replayed"],
            "dirty_cone": edit_counters["incremental_dirty_cone"],
            "delta_demotions": (
                edit_counters.get("annotation_delta_read_demotions", 0)
                + edit_counters.get("annotation_delta_stale_demotions", 0)
            ),
        },
        "speedup_warm_no_edit": round(cold_s / max(warm_s, 1e-9), 2),
        "speedup_warm_one_edit": round(cold_s / max(edit_s, 1e-9), 2),
    }
    print("\nglobal-checker incremental pass 2, %d roots:" % total_roots)
    print("  cold          %.3fs  %3d roots analyzed" % (
        cold_s, rows["cold"]["roots_analyzed"]))
    print("  warm no-edit  %.3fs  %3d analyzed / %d replayed  (x%.1f)" % (
        warm_s, rows["warm_no_edit"]["roots_analyzed"],
        rows["warm_no_edit"]["roots_replayed"],
        rows["speedup_warm_no_edit"]))
    print("  warm 1-edit   %.3fs  %3d analyzed / %d replayed  (x%.1f)" % (
        edit_s, rows["warm_one_edit"]["roots_analyzed"],
        rows["warm_one_edit"]["roots_replayed"],
        rows["speedup_warm_one_edit"]))
    _summary["incremental_global"] = rows
    _dump_summary()

    small = generate_global_project(seed=3, n_modules=2,
                                    functions_per_module=4)
    small_root, small_paths = materialize(tmp_path, small, "gsmall")
    small_cache = str(tmp_path / "gsmall_cache")
    timed_global_run(small_root, small_paths, small_cache)
    benchmark(timed_global_run, small_root, small_paths, small_cache)
