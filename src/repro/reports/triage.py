"""Persistent triage: one predicate, one file format.

Before this module, suppression lived in four places with four
mechanisms: ``engine/history.py`` matched §8 history keys,
``ranking/severity.py`` dropped whole rule groups, ``checkers/free.py``
hand-built state-machine suppression transitions, and ``driver/cli.py``
wired ``--history`` its own way.  Triage consolidates them:

- a :class:`TriageEntry` names *what* is triaged -- by stable report
  **hash** (the precise spelling: survives line drift and unrelated
  edits, see :mod:`repro.reports.hashing`), by **rule** ("easy to
  suppress them all if the analysis is wrong", §9), or by the §8
  **history** key -- plus *why*: a verdict (``false_positive``,
  ``intentional``, ``confirmed``), an optional severity override, and
  provenance (author, reason, creation time);
- :meth:`TriageStore.match` is the one predicate every consumer calls;
- one JSON file format (``save``/``load``) and one backend document
  (``save_backend``/``load_backend``: the reserved ``triage`` key in
  the store's ``run`` tier), so offline ``--diff``, the daemon, and the
  HTTP report server all read the same state through ``RemoteStore``.

The checker-level SM suppression helpers the free checker used to
hand-roll (``pattern_suppression``, ``address_of_suppression``,
``first_specific_index``) live here too, so checker code stops
string-matching its own way.
"""

import getpass
import json
import os
import time

#: Verdicts that drop a report from output.  ``confirmed`` keeps the
#: report (it exists so a severity override can ride on a true positive).
SUPPRESSING_VERDICTS = ("false_positive", "intentional")

ALL_VERDICTS = SUPPRESSING_VERDICTS + ("confirmed",)

#: Triage-document shape version.
TRIAGE_SCHEMA = 1

#: The reserved key the triage document lives under in the store's
#: ``run`` tier (run ids are ``r``-prefixed, so the two never collide).
TRIAGE_KEY = "triage"
TRIAGE_TIER = "run"


class TriageError(Exception):
    """A malformed triage entry or document."""


class TriageEntry:
    """One triage decision with provenance."""

    KINDS = ("hash", "rule", "history")

    def __init__(self, kind, key, verdict="false_positive", severity=None,
                 reason=None, author=None, created=None):
        if kind not in self.KINDS:
            raise TriageError("unknown triage kind: %r" % (kind,))
        if verdict not in ALL_VERDICTS:
            raise TriageError("unknown triage verdict: %r" % (verdict,))
        if kind == "history":
            key = tuple(key)
            if len(key) != 5:
                raise TriageError(
                    "history keys are (checker, file, function, variable, "
                    "message); got %r" % (key,)
                )
        self.kind = kind
        self.key = key
        self.verdict = verdict
        #: Optional severity override applied to matching reports that
        #: stay in the output (e.g. demote a noisy rule to MINOR).
        self.severity = severity
        self.reason = reason
        self.author = author
        self.created = created

    @property
    def suppresses(self):
        return self.verdict in SUPPRESSING_VERDICTS

    def matches(self, report):
        """Whether this entry names ``report``."""
        if self.kind == "hash":
            return report.report_hash == self.key
        if self.kind == "rule":
            return report.rule_id == self.key
        return report.history_key() == self.key

    def matches_dict(self, doc):
        """The same predicate over a serialized report document."""
        if self.kind == "hash":
            return doc.get("hash") == self.key
        if self.kind == "rule":
            return doc.get("rule_id") == self.key
        location = doc.get("location") or {}
        history_key = (
            doc.get("checker"),
            location.get("file"),
            doc.get("function"),
            doc.get("variable"),
            doc.get("message"),
        )
        return history_key == self.key

    def identity(self):
        """The dedup key: re-adding the same decision replaces it."""
        return (self.kind, self.key)

    def to_dict(self):
        return {
            "kind": self.kind,
            "key": list(self.key) if self.kind == "history" else self.key,
            "verdict": self.verdict,
            "severity": self.severity,
            "reason": self.reason,
            "author": self.author,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, doc):
        try:
            return cls(
                kind=doc["kind"],
                key=doc["key"],
                verdict=doc.get("verdict", "false_positive"),
                severity=doc.get("severity"),
                reason=doc.get("reason"),
                author=doc.get("author"),
                created=doc.get("created"),
            )
        except KeyError as err:
            raise TriageError("triage entry missing field: %s" % err)

    def __repr__(self):
        return "<triage %s %r %s>" % (self.kind, self.key, self.verdict)


def _default_author():
    try:
        return getpass.getuser()
    except Exception:
        return os.environ.get("USER") or "unknown"


class TriageStore:
    """All triage decisions for one tree; the one suppression predicate."""

    def __init__(self, entries=None):
        self._entries = {}
        for entry in entries or ():
            self.add(entry)

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    @property
    def entries(self):
        return list(self._entries.values())

    # -- recording decisions -------------------------------------------------

    def add(self, entry):
        """Record a decision; a later decision about the same target
        replaces the earlier one."""
        self._entries[entry.identity()] = entry
        return entry

    def _make(self, kind, key, **fields):
        fields.setdefault("author", _default_author())
        if fields.get("created") is None:
            fields["created"] = time.time()
        return self.add(TriageEntry(kind, key, **fields))

    def suppress_hash(self, report_hash, **fields):
        """Triage one precise report by stable hash."""
        return self._make("hash", report_hash, **fields)

    def suppress_rule(self, rule_id, **fields):
        """Triage a whole rule group (§9: "suppress them all if the
        analysis is wrong")."""
        return self._make("rule", rule_id, **fields)

    def suppress_history(self, key, **fields):
        """Triage by the §8 history key (checker, file, function,
        variable, message)."""
        return self._make("history", tuple(key), **fields)

    def suppress_report(self, report, **fields):
        """Triage one report: by hash when it has one, else by its
        history key."""
        if report.report_hash:
            return self.suppress_hash(report.report_hash, **fields)
        return self.suppress_history(report.history_key(), **fields)

    def remove(self, kind, key):
        if kind == "history":
            key = tuple(key)
        return self._entries.pop((kind, key), None) is not None

    # -- the predicate -------------------------------------------------------

    def match(self, report):
        """The matching entry for ``report``, or None.  Precision wins:
        hash entries beat rule entries beat history entries."""
        best = None
        for entry in self._entries.values():
            if entry.matches(report):
                if entry.kind == "hash":
                    return entry
                if best is None or self.KIND_RANK[entry.kind] < \
                        self.KIND_RANK[best.kind]:
                    best = entry
        return best

    KIND_RANK = {"hash": 0, "rule": 1, "history": 2}

    def match_dict(self, doc):
        best = None
        for entry in self._entries.values():
            if entry.matches_dict(doc):
                if entry.kind == "hash":
                    return entry
                if best is None or self.KIND_RANK[entry.kind] < \
                        self.KIND_RANK[best.kind]:
                    best = entry
        return best

    def is_suppressed(self, report):
        entry = self.match(report)
        return entry is not None and entry.suppresses

    def matches_dict(self, doc):
        """Whether a serialized report document is suppressed."""
        entry = self.match_dict(doc)
        return entry is not None and entry.suppresses

    def apply(self, reports, stats=None):
        """Partition ``reports`` into (kept, suppressed).

        Kept reports that matched a non-suppressing entry get the
        entry's severity override applied and the decision recorded in
        ``report.annotations["triage"]``; suppressed ones are returned
        (annotated) for ``--show-suppressed``-style consumers.
        """
        kept, suppressed = [], []
        for report in reports:
            entry = self.match(report)
            if entry is None:
                kept.append(report)
                continue
            report.annotations["triage"] = entry.to_dict()
            if entry.severity is not None:
                report.severity = entry.severity
            if entry.suppresses:
                suppressed.append(report)
                if stats is not None:
                    stats.add("triage_suppressed")
            else:
                kept.append(report)
                if stats is not None:
                    stats.add("triage_annotated")
        return kept, suppressed

    def filter(self, reports):
        """Just the kept reports (HistoryDatabase.filter's shape)."""
        return self.apply(reports)[0]

    # -- one file format -----------------------------------------------------

    def to_doc(self):
        entries = sorted(
            (entry.to_dict() for entry in self._entries.values()),
            key=lambda doc: (doc["kind"], repr(doc["key"])),
        )
        return {"triage_schema": TRIAGE_SCHEMA, "entries": entries}

    @classmethod
    def from_doc(cls, doc):
        if isinstance(doc, list):
            # Legacy HistoryDatabase files: a bare list of history keys.
            return cls(
                TriageEntry("history", tuple(row), verdict="false_positive")
                for row in doc
            )
        if not isinstance(doc, dict):
            raise TriageError("triage document is not an object")
        return cls(
            TriageEntry.from_dict(entry)
            for entry in doc.get("entries") or ()
        )

    def save(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_doc(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_doc(json.load(handle))

    @classmethod
    def load_path(cls, path):
        """``load`` that treats a missing file as an empty store."""
        if path and os.path.exists(path):
            return cls.load(path)
        return cls()

    # -- backend persistence -------------------------------------------------

    def save_backend(self, backend):
        """Persist through a store backend (shared via RemoteStore)."""
        payload = json.dumps(self.to_doc(), sort_keys=True).encode("utf-8")
        backend.put_many(TRIAGE_TIER, {TRIAGE_KEY: payload})

    @classmethod
    def load_backend(cls, backend):
        """The shared triage state, or an empty store when none exists."""
        frames = backend.get_many(TRIAGE_TIER, [TRIAGE_KEY])
        data = frames.get(TRIAGE_KEY)
        if data is None:
            return cls()
        try:
            return cls.from_doc(json.loads(data.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as err:
            raise TriageError("undecodable shared triage document: %s" % err)

    def merge(self, other):
        """Fold another store's entries in (other wins on conflicts)."""
        for entry in other:
            self.add(entry)
        return self


# -- checker-level SM suppression helpers -----------------------------------
#
# The §8 "targeted suppression" idiom: a metal extension suppresses a
# false-positive class by adding a transition that either keeps the
# state (pattern matched, nothing wrong) or drops it (the variable was
# redefined).  These used to be private helpers inside checkers/free.py.

def first_specific_index(ext):
    """Where suppressions go: before the first non-global transition, so
    they win pattern-priority over the error transitions."""
    for index, rule in enumerate(ext.transitions):
        if not rule.source.is_global:
            return index
    return len(ext.transitions)


def pattern_suppression(ext, state, pattern_text, to=None):
    """A transition that matches ``pattern_text`` in ``state`` and goes
    nowhere (``to=None`` keeps the state: the §8 debug-printer idiom) or
    to an explicit target state."""
    from repro.metal.sm import Transition

    pattern = ext._compile_pattern_text(pattern_text)
    target = ext.parse_state(to) if to else None
    return Transition(ext.parse_state(state), pattern, target=target)


def address_of_suppression(ext, state, var, to):
    """A transition that drops tracking when ``&var`` escapes into any
    call (the BSD reinitialization idiom)."""
    from repro.cfront import astnodes as ast
    from repro.metal.patterns import Callout
    from repro.metal.sm import Transition

    def is_addr_passed(context):
        point = context.point
        obj = context.bindings.get(var)
        if not isinstance(point, ast.Call) or obj is None:
            return False
        key = ast.structural_key(ast.Unary("&", obj))
        return any(ast.structural_key(arg) == key for arg in point.args)

    pattern = Callout(is_addr_passed, "address-of freed var passed to fn")
    return Transition(
        ext.parse_state(state), pattern, target=ext.parse_state(to)
    )


def insert_suppressions(ext, transitions):
    """Install suppression transitions at pattern-priority position."""
    index = first_specific_index(ext)
    for transition in transitions:
        ext.transitions.insert(index, transition)
        index += 1
    return ext
