"""Compiled table-driven matcher vs the tree-walking interpreter.

Dumped to ``BENCH_matcher.json``: end-to-end analysis wall time (parse
excluded, compile-at-registration included -- the cost a user pays per
``run``) under ``--matcher=interp`` and ``--matcher=compiled`` on

- ``fig3_scenarios``: the Figure 3 lock scenarios, replicated 40x --
  instance-light, so the ratio is modest and honest;
- ``fig3_lock_burst``: the Figure 3 checker on a function holding 24
  locks across 300 straight-line statements -- the per-(instance, point)
  dispatch loop the tables were built to kill.  The CI matcher lane's
  >=1.5x perf-regression tripwire;
- ``torture_instances``: the free checker with 32 live freed pointers
  over 500 statements -- the >=2x acceptance series;
- ``torture_files``: every seed checker over every tests/data torture
  file (ratios reported, outputs asserted byte-identical);
- ``multifile``: the Section 6 multi-module project audit.

Every series also asserts both modes report byte-identically: this file
is a differential harness that happens to keep score.
"""

import json
import os
import time

from repro.cfront.parser import parse
from repro.checkers import ALL_CHECKERS, free_checker, lock_checker
from repro.codegen.project_gen import default_checkers, generate_project
from repro.engine.analysis import Analysis, AnalysisOptions
from repro.ranking.severity import stratify

SUMMARY_PATH = "BENCH_matcher.json"
_summary = {}

DATA = os.path.join(os.path.dirname(__file__), os.pardir, "tests", "data")
TORTURE = ["torture_kernelish", "torture_stmts", "torture_exprs",
           "torture_decls"]


def _dump_summary():
    with open(SUMMARY_PATH, "w") as handle:
        json.dump(_summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


def ranked(result):
    return "\n".join(r.format_trace() for r in stratify(result.reports))


def _one_run(code, extension_factory, mode, filename):
    unit = parse(code, filename)
    extension = extension_factory()
    start = time.perf_counter()
    result = Analysis(
        [unit], options=AnalysisOptions(matcher=mode)
    ).run(extension)
    return time.perf_counter() - start, ranked(result)


def compare_modes(name, code, extension_factory, reps=4,
                  filename="bench.c"):
    """Best-of-``reps`` per mode, modes interleaved within each rep so
    host-load drift hits both sides equally."""
    interp_s = compiled_s = None
    interp_text = compiled_text = None
    for _ in range(reps):
        elapsed, interp_text = _one_run(
            code, extension_factory, "interp", filename
        )
        interp_s = elapsed if interp_s is None else min(interp_s, elapsed)
        elapsed, compiled_text = _one_run(
            code, extension_factory, "compiled", filename
        )
        compiled_s = (
            elapsed if compiled_s is None else min(compiled_s, elapsed)
        )
    assert interp_text == compiled_text, name
    row = {
        "interp_s": round(interp_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(interp_s / compiled_s, 2),
        "byte_identical": True,
    }
    _summary[name] = row
    _dump_summary()
    print("  %-18s interp %.4fs  compiled %.4fs  %.2fx"
          % (name, interp_s, compiled_s, row["speedup"]))
    return row


FIG3_SCENARIOS = """
int scenario_unheld(int *l) { unlock(l); return 0; }
int scenario_double(int *l) { lock(l); lock(l); unlock(l); return 0; }
int scenario_leak(int *l, int e) {
    lock(l);
    if (e)
        return -1;
    unlock(l);
    return 0;
}
int scenario_trylock_ok(int *l) {
    if (trylock(l)) {
        unlock(l);
        return 1;
    }
    return 0;
}
int scenario_trylock_leak(int *l) {
    if (trylock(l))
        return 1;
    return 0;
}
int scenario_clean(int *l) { lock(l); unlock(l); return 0; }
"""


def lock_burst_code(n_locks=24, n_stmts=300):
    lines = ["    lock(l%d);" % i for i in range(n_locks)]
    lines += ["    acc = acc + step;"] * n_stmts
    lines += ["    unlock(l%d);" % i for i in range(n_locks)]
    params = ", ".join("int *l%d" % i for i in range(n_locks))
    return ("int burst(%s, int acc, int step) {\n" % params
            + "\n".join(lines) + "\n    return acc;\n}\n")


def free_torture_code(n_pointers=32, n_stmts=500):
    lines = ["    kfree(p%d);" % i for i in range(n_pointers)]
    lines += ["    acc = acc + step;"] * n_stmts
    params = ", ".join("int *p%d" % i for i in range(n_pointers))
    return ("int churn(%s, int acc, int step) {\n" % params
            + "\n".join(lines) + "\n    return acc;\n}\n")


def test_fig3_scenarios():
    print("\nmatcher modes, Fig. 3 scenarios x40:")
    code = "\n".join(
        FIG3_SCENARIOS.replace("scenario_", "s%d_" % i) for i in range(40)
    )
    compare_modes("fig3_scenarios", code, lock_checker, reps=6)


def test_fig3_lock_burst_tripwire():
    """The CI matcher lane's perf-regression tripwire: the Figure 3
    checker with 24 concurrently-held locks must stay >=1.5x."""
    print("\nmatcher modes, Fig. 3 lock burst:")
    row = compare_modes("fig3_lock_burst", lock_burst_code(), lock_checker)
    assert row["speedup"] >= 1.5, row


def test_torture_instances_acceptance():
    """The acceptance series: >=2x end-to-end with compiled matchers on
    an instance-heavy torture workload."""
    print("\nmatcher modes, instance torture:")
    row = compare_modes(
        "torture_instances", free_torture_code(), free_checker
    )
    assert row["speedup"] >= 2.0, row


def test_torture_files():
    print("\nmatcher modes, torture files (all seed checkers):")
    rows = {}
    for fname in TORTURE:
        with open(os.path.join(DATA, fname + ".c")) as handle:
            code = handle.read()

        def run(mode):
            start = time.perf_counter()
            texts = []
            for name in sorted(ALL_CHECKERS):
                unit = parse(code, fname + ".c")
                result = Analysis(
                    [unit], options=AnalysisOptions(matcher=mode)
                ).run(ALL_CHECKERS[name]())
                texts.append(ranked(result))
            return time.perf_counter() - start, texts

        interp_s = compiled_s = None
        interp_texts = compiled_texts = None
        for _ in range(2):
            elapsed, interp_texts = run("interp")
            interp_s = (
                elapsed if interp_s is None else min(interp_s, elapsed)
            )
            elapsed, compiled_texts = run("compiled")
            compiled_s = (
                elapsed if compiled_s is None else min(compiled_s, elapsed)
            )
        assert interp_texts == compiled_texts, fname
        rows[fname] = {
            "interp_s": round(interp_s, 4),
            "compiled_s": round(compiled_s, 4),
            "speedup": round(interp_s / compiled_s, 2),
            "byte_identical": True,
        }
        print("  %-20s interp %.4fs  compiled %.4fs  %.2fx"
              % (fname, interp_s, compiled_s, rows[fname]["speedup"]))
    _summary["torture_files"] = rows
    _dump_summary()


def test_multifile():
    print("\nmatcher modes, multi-module audit:")

    def one_audit(mode):
        generated = generate_project(
            seed=11, n_modules=8, functions_per_module=12, bug_rate=0.35
        )
        project = generated.make_project()
        start = time.perf_counter()
        result = project.run(
            default_checkers(), options=AnalysisOptions(matcher=mode)
        )
        return time.perf_counter() - start, ranked(result)

    rows = {}
    for _ in range(5):
        for mode in ("interp", "compiled"):
            elapsed, text = one_audit(mode)
            row = rows.setdefault(mode, {"seconds": elapsed, "ranked": text})
            row["seconds"] = min(row["seconds"], elapsed)
    for mode in rows:
        rows[mode]["seconds"] = round(rows[mode]["seconds"], 4)
    assert rows["interp"]["ranked"] == rows["compiled"]["ranked"]
    speedup = rows["interp"]["seconds"] / rows["compiled"]["seconds"]
    _summary["multifile"] = {
        "interp_s": rows["interp"]["seconds"],
        "compiled_s": rows["compiled"]["seconds"],
        "speedup": round(speedup, 2),
        "byte_identical": True,
    }
    _dump_summary()
    print("  multifile 8x12     interp %.4fs  compiled %.4fs  %.2fx"
          % (rows["interp"]["seconds"], rows["compiled"]["seconds"],
             speedup))
