"""User-pointer (taint) checker, after the Oakland'02 companion paper.

Kernel code must never dereference a pointer that came from user space;
it must go through copy_from_user/copy_to_user.  Errors are annotated
SECURITY, the highest ranking class (§9).
"""

from repro.cfront import astnodes as ast
from repro.metal import ANY_ARGUMENTS, ANY_POINTER, Extension
from repro.metal.patterns import Callout


def user_pointer_checker(
    taint_sources=("get_user_ptr", "ioctl_arg"),
    sanitizers=("copy_from_user", "copy_to_user"),
):
    ext = Extension("user_pointer_checker")
    ext.state_var("v", ANY_POINTER)
    ext.decl("args", ANY_ARGUMENTS)
    ext.default_severity = "SECURITY"

    for fn in taint_sources:
        ext.transition("start", "{ v = %s(args) }" % fn, to="v.tainted")

    deref = Callout(_derefs_v, "mc_is_deref_of(mc_stmt, v)")
    ext.transition(
        "v.tainted",
        deref,
        to="v.stop",
        action=lambda ctx: ctx.err(
            "dereferencing user pointer %s in kernel space!",
            ctx.identifier("v"),
            severity="SECURITY",
            rule_id="user-pointer",
        ),
    )
    # Passing the tainted pointer through a sanitizer is the correct idiom:
    # count it as a rule example and drop the taint.
    sanitized = Callout(_make_sanitized(sanitizers), "passed to copy_*_user")
    ext.transition(
        "v.tainted",
        sanitized,
        to="v.stop",
        action=lambda ctx: ctx.count_example("user-pointer"),
    )
    return ext


def _derefs_v(context):
    from repro.metal.callouts import mc_is_deref_of

    return mc_is_deref_of(context.point, context.bindings.get("v"))


def _make_sanitized(sanitizers):
    def check(context):
        point = context.point
        obj = context.bindings.get("v")
        if not isinstance(point, ast.Call) or obj is None:
            return False
        if point.callee_name() not in sanitizers:
            return False
        key = ast.structural_key(obj)
        return any(ast.structural_key(arg) == key for arg in point.args)

    return check
