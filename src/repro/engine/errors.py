"""The engine-side report log.

The report model itself lives in :mod:`repro.reports.model`; this module
keeps its historical import surface (``ErrorReport``, ``SEVERITY_ORDER``)
as re-exports and owns :class:`ErrorLog` -- the engine-side collector
whose serial order is the canonical report order every driver path
reproduces byte-identically (and which stable report hashes take their
occurrence ordinals from, :mod:`repro.reports.hashing`).
"""

from repro.reports.model import SEVERITY_ORDER, Report

#: Checkers and the engine construct reports under the historical name;
#: the class is the structured-report model.
ErrorReport = Report


class ErrorLog:
    """Collects reports, deduplicating path-revisit duplicates, and keeps
    the example/counterexample counters statistical ranking uses (§9)."""

    def __init__(self):
        self.reports = []
        self._seen = set()
        # rule_id -> set of example sites / counterexample sites.
        self.examples = {}
        self.counterexamples = {}
        self._scopes = []

    def push_scope(self):
        """Open a root-local capture scope (incremental artifact capture).

        Deduplication and example/counterexample accounting restart from
        empty, so everything recorded until :meth:`pop_scope` is exactly
        one root's *independent* contribution -- reports another root
        already produced are recorded again rather than suppressed.  The
        final log is rebuilt by replaying the per-root contributions in
        serial order through a fresh log, which re-applies global
        deduplication at exactly the points a plain serial run would.
        """
        self._scopes.append((self._seen, self.examples, self.counterexamples))
        self._seen = set()
        self.examples = {}
        self.counterexamples = {}

    def pop_scope(self):
        """Close the innermost scope; returns ``(examples_delta,
        counterexamples_delta)`` and folds them back into the outer
        accounting (so whole-log totals stay correct)."""
        examples_delta, counterexamples_delta = self.examples, self.counterexamples
        self._seen, self.examples, self.counterexamples = self._scopes.pop()
        for rule_id, sites in examples_delta.items():
            self.examples.setdefault(rule_id, set()).update(sites)
        for rule_id, sites in counterexamples_delta.items():
            self.counterexamples.setdefault(rule_id, set()).update(sites)
        return examples_delta, counterexamples_delta

    def add(self, report):
        key = report.identity()
        if key in self._seen:
            return None
        self._seen.add(key)
        self.reports.append(report)
        return report

    def count_example(self, rule_id, site):
        """Record one successful check of ``rule_id`` at ``site``."""
        self.examples.setdefault(rule_id, set()).add(_site_key(site))

    def count_violation(self, rule_id, site):
        """Record one violation of ``rule_id`` at ``site``."""
        self.counterexamples.setdefault(rule_id, set()).add(_site_key(site))

    def rule_counts(self, rule_id):
        """(examples, counterexamples) distinct-site counts for a rule."""
        return (
            len(self.examples.get(rule_id, ())),
            len(self.counterexamples.get(rule_id, ())),
        )

    def __len__(self):
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)


def _site_key(site):
    if site is None:
        return None
    if hasattr(site, "filename"):
        return (site.filename, site.line, site.column)
    return site
