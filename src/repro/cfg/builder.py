"""AST -> CFG lowering.

Short-circuit operators and ``?:`` appearing in branch *conditions* are
lowered into explicit control flow (so the engine's path-sensitive pieces
see them); elsewhere they stay as plain expression trees.

Statements containing a function call are isolated into their own block.
This mirrors the supergraph construction of §6.2 where each call is split
into a callsite node ``cp`` and a return-site node ``rp``; the block after
a call block plays the ``rp`` role.
"""

from repro.cfront import astnodes as ast
from repro.cfg.blocks import CFG, ReturnMarker


class _LoopContext:
    def __init__(self, break_target, continue_target):
        self.break_target = break_target
        self.continue_target = continue_target


class CFGBuilder:
    """Builds the CFG for a single function definition."""

    def __init__(self, decl):
        assert decl.is_definition
        self.cfg = CFG(decl)
        self.current = self.cfg.entry
        self.loop_stack = []
        self.switch_stack = []  # list of (dispatch_block, had_default[0])
        self.labels = {}
        self.pending_gotos = []  # (block, label_name)

    def build(self):
        self._stmt(self.cfg.decl.body)
        self._terminate(self.cfg.exit)
        for block, label in self.pending_gotos:
            target = self.labels.get(label)
            if target is None:
                target = self.cfg.exit  # undefined label: treat as exit
            block.add_edge(target)
        self.cfg.prune_unreachable()
        return self.cfg

    # -- plumbing -----------------------------------------------------------

    def _terminate(self, target, label=None):
        """End the current block with an edge to ``target`` (if still open)."""
        if self.current is not None:
            self.current.add_edge(target, label)
        self.current = None

    def _start(self, block):
        self.current = block

    def _ensure_block(self):
        if self.current is None:
            # Unreachable code after return/break; give it a block anyway so
            # items have a home (it will be pruned if truly unreachable).
            self.current = self.cfg.new_block()
        return self.current

    def _add_item(self, item):
        self._ensure_block().items.append(item)

    def _add_expr_item(self, expr):
        """Add an expression tree, isolating call-bearing statements."""
        if expr is None:
            return
        if _contains_call(expr):
            block = self._ensure_block()
            if block.items:
                fresh = self.cfg.new_block()
                self._terminate(fresh)
                self._start(fresh)
            self._ensure_block().items.append(expr)
            self.current.is_call_block = True
            after = self.cfg.new_block()
            self._terminate(after)
            self._start(after)
        else:
            self._add_item(expr)

    # -- statements ------------------------------------------------------------

    def _stmt(self, node):
        if node is None or self.current is None and isinstance(node, (ast.Break, ast.Continue)):
            return
        if isinstance(node, ast.Compound):
            for item in node.items:
                self._stmt(item)
        elif isinstance(node, ast.VarDecl):
            self._add_item(node)
            if node.init is not None and not isinstance(node.init, ast.InitList):
                ident = ast.Ident(node.name, node.location)
                ident.ctype = node.ctype
                assign = ast.Assign("=", ident, node.init, node.location)
                assign.ctype = node.ctype
                self._add_expr_item(assign)
        elif isinstance(node, (ast.TypedefDecl, ast.RecordDecl, ast.EnumDecl)):
            pass
        elif isinstance(node, ast.ExprStmt):
            self._add_expr_item(node.expr)
        elif isinstance(node, ast.EmptyStmt):
            pass
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.DoWhile):
            self._dowhile(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Switch):
            self._switch(node)
        elif isinstance(node, ast.Case):
            self._case(node)
        elif isinstance(node, ast.Default):
            self._default(node)
        elif isinstance(node, ast.Break):
            if self.loop_stack or self.switch_stack:
                target = (
                    self.loop_stack[-1].break_target
                    if self._innermost_is_loop()
                    else self.switch_stack[-1][2]
                )
                self._terminate(target)
        elif isinstance(node, ast.Continue):
            if self.loop_stack:
                self._terminate(self.loop_stack[-1].continue_target)
        elif isinstance(node, ast.Return):
            if node.expr is not None:
                self._add_expr_item(node.expr)
            self._add_item(ReturnMarker(node.expr, node.location))
            self._terminate(self.cfg.exit)
        elif isinstance(node, ast.Goto):
            block = self._ensure_block()
            self.pending_gotos.append((block, node.label))
            self.current = None
        elif isinstance(node, ast.Label):
            target = self.labels.get(node.name)
            if target is None:
                target = self.cfg.new_block()
                self.labels[node.name] = target
            self._terminate(target)
            self._start(target)
            self._stmt(node.stmt)
        else:
            raise TypeError("cannot lower statement %r" % (node,))

    def _innermost_is_loop(self):
        """Is the innermost enclosing breakable construct a loop?"""
        if not self.switch_stack:
            return True
        if not self.loop_stack:
            return False
        return self.loop_stack[-1].depth > self.switch_stack[-1][3]

    # -- conditions with short-circuit lowering ------------------------------------

    def _branch(self, cond, true_block, false_block):
        """Lower ``cond`` ending the current path with edges to the blocks."""
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            middle = self.cfg.new_block()
            self._branch(cond.left, middle, false_block)
            self._start(middle)
            self._branch(cond.right, true_block, false_block)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            middle = self.cfg.new_block()
            self._branch(cond.left, true_block, middle)
            self._start(middle)
            self._branch(cond.right, true_block, false_block)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!" and not cond.postfix:
            self._branch(cond.operand, false_block, true_block)
            return
        if isinstance(cond, ast.Comma):
            self._add_expr_item(cond.left)
            self._branch(cond.right, true_block, false_block)
            return
        block = self._ensure_block()
        if _contains_call(cond) and block.items:
            fresh = self.cfg.new_block()
            self._terminate(fresh)
            self._start(fresh)
            block = self.current
        block.items.append(cond)
        block.branch_cond = cond
        if _contains_call(cond):
            block.is_call_block = True
        block.add_edge(true_block, True)
        block.add_edge(false_block, False)
        self.current = None

    def _if(self, node):
        then_block = self.cfg.new_block()
        else_block = self.cfg.new_block()
        join = self.cfg.new_block()
        self._branch(node.cond, then_block, else_block)
        self._start(then_block)
        self._stmt(node.then)
        self._terminate(join)
        self._start(else_block)
        if node.otherwise is not None:
            self._stmt(node.otherwise)
        self._terminate(join)
        self._start(join)

    def _loop_header(self, header, body_stmt, extra=()):
        """Mark ``header`` as a loop head and record assigned variables."""
        assigned = set()
        for stmt in (body_stmt, *extra):
            if stmt is not None:
                assigned |= _assigned_names(stmt)
        header.havoc_vars = frozenset(assigned)

    def _while(self, node):
        header = self.cfg.new_block()
        body = self.cfg.new_block()
        after = self.cfg.new_block()
        self._loop_header(header, node.body)
        self._terminate(header)
        self._start(header)
        self._branch(node.cond, body, after)
        self.loop_stack.append(_LoopContext(after, header))
        self.loop_stack[-1].depth = len(self.loop_stack) + len(self.switch_stack)
        self._start(body)
        self._stmt(node.body)
        self._terminate(header)
        self.loop_stack.pop()
        self._start(after)

    def _dowhile(self, node):
        body = self.cfg.new_block()
        cond_block = self.cfg.new_block()
        after = self.cfg.new_block()
        body.havoc_vars = _assigned_names(node.body)
        self._terminate(body)
        self.loop_stack.append(_LoopContext(after, cond_block))
        self.loop_stack[-1].depth = len(self.loop_stack) + len(self.switch_stack)
        self._start(body)
        self._stmt(node.body)
        self._terminate(cond_block)
        self.loop_stack.pop()
        self._start(cond_block)
        self._branch(node.cond, body, after)
        self._start(after)

    def _for(self, node):
        if node.init is not None:
            self._stmt(node.init)
        header = self.cfg.new_block()
        body = self.cfg.new_block()
        step_block = self.cfg.new_block()
        after = self.cfg.new_block()
        step_stmt = ast.ExprStmt(node.step) if node.step is not None else None
        self._loop_header(header, node.body, (step_stmt,))
        self._terminate(header)
        self._start(header)
        if node.cond is not None:
            self._branch(node.cond, body, after)
        else:
            self._terminate(body)
        self.loop_stack.append(_LoopContext(after, step_block))
        self.loop_stack[-1].depth = len(self.loop_stack) + len(self.switch_stack)
        self._start(body)
        self._stmt(node.body)
        self._terminate(step_block)
        self.loop_stack.pop()
        self._start(step_block)
        if node.step is not None:
            self._add_expr_item(node.step)
        self._terminate(header)
        self._start(after)

    def _switch(self, node):
        dispatch = self._ensure_block()
        self._add_expr_item(node.cond)
        dispatch = self.current  # _add_expr_item may have moved us
        dispatch.switch_cond = node.cond
        after = self.cfg.new_block()
        entry = (dispatch, [False], after, len(self.loop_stack) + len(self.switch_stack) + 1)
        self.switch_stack.append(entry)
        self.current = None  # cases attach their own edges to dispatch
        self._stmt(node.body)
        self._terminate(after)
        self.switch_stack.pop()
        if not entry[1][0]:
            dispatch.add_edge(after, "default")
        self._start(after)

    def _case(self, node):
        if not self.switch_stack:
            raise ValueError("case outside switch at %s" % node.location)
        dispatch = self.switch_stack[-1][0]
        block = self.cfg.new_block()
        dispatch.add_edge(block, ("case", _const_value(node.expr)))
        self._terminate(block)  # fallthrough from the previous case body
        self._start(block)
        self._stmt(node.stmt)

    def _default(self, node):
        if not self.switch_stack:
            raise ValueError("default outside switch at %s" % node.location)
        dispatch, had_default = self.switch_stack[-1][0], self.switch_stack[-1][1]
        had_default[0] = True
        block = self.cfg.new_block()
        dispatch.add_edge(block, "default")
        self._terminate(block)
        self._start(block)
        self._stmt(node.stmt)


def _contains_call(expr):
    return any(isinstance(n, ast.Call) for n in expr.walk())


def _assigned_names(stmt):
    """Variable names assigned (or ++/--'d) anywhere inside ``stmt``."""
    names = set()
    for node in stmt.walk():
        target = None
        if isinstance(node, ast.Assign):
            target = node.target
        elif isinstance(node, ast.Unary) and node.op in ("++", "--"):
            target = node.operand
        if isinstance(target, ast.Ident):
            names.add(target.name)
        elif target is not None:
            names.update(ast.identifiers_in(target))
    return frozenset(names)


def _const_value(expr):
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.CharLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-" and isinstance(expr.operand, ast.IntLit):
        return -expr.operand.value
    if isinstance(expr, ast.Ident):
        return expr.name
    return None


def build_cfg(decl):
    """Build the CFG for a function definition."""
    return CFGBuilder(decl).build()
