"""Stable report hashes.

A report's hash is its cross-run identity: the run-history layer diffs
two runs by hash set-difference, and triage entries keyed by hash must
keep matching after the tree is edited.  So the hash follows the
``annotation_node_key`` discipline from :mod:`repro.engine.deltas` --
name the report *structurally*, never by line number:

- the checker name and message text (messages carry variable names,
  never line numbers);
- the file and owning function (the §8 history fields, "relatively
  invariant under edits");
- the variable involved, the severity, and the rule id;
- the **path shape**: the sequence of error-path event texts since
  tracking began (``kfree(p)``, ``entered state v.freed via ...``) with
  their locations stripped -- the structural fingerprint of *why* the
  error fired.

Two reports inside one function can still collide (the same bug pasted
twice with the same variable produces the same base key), so
:func:`assign_report_hashes` disambiguates duplicates by occurrence
ordinal in the canonical serial report order -- stable under line
drift, since drifting lines never reorders the DFS.

What the recipe deliberately excludes: line/column numbers (pure line
drift must not move hashes) and the function body digest (an edit
inside the function that does not touch the error path must not flip
its reports to new+resolved).
"""

import hashlib

#: Bump when the hash recipe changes; folded into every hash so stored
#: run documents from an older recipe never silently half-match.
HASH_VERSION = 1


def path_shape(report):
    """The structural digest of a report's error path: event texts in
    order, locations stripped."""
    digest = hashlib.sha256()
    for event, __ in report.trace:
        digest.update(str(event).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()[:16]


def report_base_key(report):
    """The location-free identity tuple the hash is computed from."""
    return (
        HASH_VERSION,
        report.checker,
        report.location.filename,
        report.function or "",
        report.variable or "",
        report.message,
        report.severity or "",
        str(report.rule_id) if report.rule_id is not None else "",
        path_shape(report),
    )


def report_hash(report, occurrence=0):
    """The stable hash for one report (hex, 40 chars).

    ``occurrence`` is the report's ordinal among same-base-key reports
    in the canonical serial order; :func:`assign_report_hashes` computes
    it for a whole run.
    """
    digest = hashlib.sha256()
    for field in report_base_key(report):
        digest.update(str(field).encode("utf-8"))
        digest.update(b"\x1e")
    digest.update(str(occurrence).encode("utf-8"))
    return digest.hexdigest()[:40]


def assign_report_hashes(reports):
    """Assign ``report.report_hash`` across a run's report set.

    ``reports`` must be in the canonical serial order (the ErrorLog
    order every driver path reproduces byte-identically); duplicate base
    keys get ascending occurrence ordinals in that order.  Re-assigning
    is idempotent.  Returns the reports for chaining.
    """
    seen = {}
    for report in reports:
        key = report_base_key(report)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        report.report_hash = report_hash(report, occurrence)
    return reports
