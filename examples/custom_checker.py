#!/usr/bin/env python
"""Writing your own system-specific checker, both ways.

The rule (a made-up driver discipline, exactly the kind of system-specific
rule the paper targets): a buffer obtained from ``netbuf_get`` must be
either ``netbuf_push``ed or ``netbuf_put`` back before the path ends, and
never pushed twice.

The same checker is written (a) in the metal DSL and (b) against the
Python API with a C-code-action equivalent that tracks *why* -- exactly
the "bulk of each extension is error reporting" observation from §3.2.

Run:  python examples/custom_checker.py
"""

from repro.cfront.parser import parse
from repro.engine import Analysis
from repro.metal import ANY_POINTER, Extension, compile_metal

DRIVER_CODE = """
struct netbuf { int len; };

int tx_ok(int q) {
    struct netbuf *b = netbuf_get(q);
    netbuf_push(b);
    return 0;
}

int tx_recycle(int q) {
    struct netbuf *b = netbuf_get(q);
    if (b->len == 0) {
        netbuf_put(b);
        return 0;
    }
    netbuf_push(b);
    return 1;
}

int tx_leak(int q, int err) {
    struct netbuf *b = netbuf_get(q);
    if (err)
        return -1;          /* leaked b! */
    netbuf_push(b);
    return 0;
}

int tx_double(int q) {
    struct netbuf *b = netbuf_get(q);
    netbuf_push(b);
    netbuf_push(b);         /* pushed twice! */
    return 0;
}
"""

METAL_VERSION = """
sm netbuf_checker {
 state decl any_pointer b;
 decl any_arguments args;

 start: { b = netbuf_get(args) } ==> b.owned ;

 b.owned:
    { netbuf_push(b) } ==> b.pushed
  | { netbuf_put(b) } ==> b.stop
  | $end_of_path$ ==> b.stop,
    { err("netbuf %s neither pushed nor returned", mc_identifier(b)); }
  ;

 b.pushed:
    { netbuf_push(b) } ==> b.stop,
    { err("netbuf %s pushed twice", mc_identifier(b)); }
  ;
}
"""


def python_version():
    ext = Extension("netbuf_checker_py")
    b = ext.state_var("b", ANY_POINTER)
    from repro.metal import ANY_ARGUMENTS

    ext.decl("args", ANY_ARGUMENTS)

    def acquired(ctx):
        # track *why*: remember where ownership began, for the report
        ctx.set_data("acquired_at", "line %d" % ctx.location.line)

    def leaked(ctx):
        ctx.err(
            "netbuf %s neither pushed nor returned (acquired at %s)",
            ctx.identifier(b),
            ctx.get_data("acquired_at", "?"),
            rule_id="netbuf_get",
        )

    def double_push(ctx):
        ctx.err("netbuf %s pushed twice", ctx.identifier(b),
                rule_id="netbuf_get")

    ext.transition("start", "{ b = netbuf_get(args) }", to="b.owned",
                   action=acquired)
    ext.transition("b.owned", "{ netbuf_push(b) }", to="b.pushed")
    ext.transition("b.owned", "{ netbuf_put(b) }", to="b.stop",
                   action=lambda ctx: ctx.count_example("netbuf_get"))
    ext.transition("b.owned", "$end_of_path$", to="b.stop", action=leaked)
    ext.transition("b.pushed", "{ netbuf_push(b) }", to="b.stop",
                   action=double_push)
    return ext


def run(checker, label):
    unit = parse(DRIVER_CODE, "driver.c")
    result = Analysis([unit]).run(checker)
    print("== %s ==" % label)
    for report in result.reports:
        print("  " + report.format())
    print()
    return {(r.function, r.message.split(" (")[0]) for r in result.reports}


def main():
    metal_found = run(compile_metal(METAL_VERSION), "metal DSL version")
    python_found = run(python_version(), "Python API version")
    assert {f for f, __ in metal_found} == {"tx_leak", "tx_double"}
    assert {f for f, __ in python_found} == {"tx_leak", "tx_double"}
    print("both versions agree: tx_leak and tx_double are the bugs.")


if __name__ == "__main__":
    main()
