"""Workload generator tests: determinism, parseability, ground truth."""

from repro.cfront.parser import parse
from repro.codegen import generate_kernel_module
from repro.codegen.generator import BUG_KINDS, generate_wrapper_module
from repro.codegen.scaling import (
    call_chain_module,
    diamond_function,
    loop_module,
    tracked_objects_function,
)
from repro.driver.project import Project


class TestKernelGenerator:
    def test_deterministic(self):
        a = generate_kernel_module(seed=7, n_functions=20, bug_rate=0.4)
        b = generate_kernel_module(seed=7, n_functions=20, bug_rate=0.4)
        assert a.source == b.source
        assert a.bugs == b.bugs

    def test_different_seeds_differ(self):
        a = generate_kernel_module(seed=1, n_functions=20, bug_rate=0.4)
        b = generate_kernel_module(seed=2, n_functions=20, bug_rate=0.4)
        assert a.bugs != b.bugs or a.source != b.source

    def test_parses(self):
        workload = generate_kernel_module(seed=3, n_functions=30, bug_rate=0.5)
        unit = parse(workload.source, "gen.c")
        # >= because some idioms (interproc-uaf) emit a helper function too
        assert len(unit.functions()) >= 30
        defined = {f.name for f in unit.functions()}
        assert set(workload.function_names) <= defined

    def test_bug_rate_extremes(self):
        none = generate_kernel_module(seed=0, n_functions=14, bug_rate=0.0)
        assert none.bugs == []
        full = generate_kernel_module(seed=0, n_functions=14, bug_rate=1.0)
        assert len(full.bugs) == 14

    def test_all_kinds_covered(self):
        workload = generate_kernel_module(seed=0, n_functions=len(BUG_KINDS), bug_rate=1.0)
        assert {b.kind for b in workload.bugs} == set(BUG_KINDS)

    def test_ground_truth_scoring(self):
        from repro.checkers import (
            free_checker,
            lock_checker,
            malloc_fail_checker,
            range_check_checker,
            user_pointer_checker,
        )

        workload = generate_kernel_module(seed=11, n_functions=28, bug_rate=0.5)
        project = Project()
        project.compile_text(workload.source, "gen.c")
        result = project.run(
            [
                free_checker(("kfree", "vfree")),
                lock_checker(),
                malloc_fail_checker(),
                range_check_checker(),
                user_pointer_checker(),
            ]
        )
        buggy = {b.function for b in workload.bugs}
        hits = sum(
            1 for b in workload.bugs
            if any(r.function == b.function for r in result.reports)
        )
        false_positives = [r for r in result.reports if r.function not in buggy]
        assert hits == len(workload.bugs)
        assert false_positives == []


class TestWrapperModule:
    def test_wrappers_and_bugs(self):
        source, wrappers, real_bugs = generate_wrapper_module(seed=0, n_users=14)
        unit = parse(source, "wrap.c")
        names = {f.name for f in unit.functions()}
        assert set(wrappers) <= names
        assert set(real_bugs) <= names
        assert real_bugs  # at least one injected bug


class TestScalingWorkloads:
    def test_diamond_parses(self):
        source = "struct device { int x; };\n" + diamond_function(8)
        unit = parse(source)
        assert unit.function("diamonds") is not None

    def test_tracked_objects_parses(self):
        source = "struct device { int x; };\n" + tracked_objects_function(5)
        unit = parse(source)
        fn = unit.function("tracked")
        assert len(fn.params) == 6  # 5 pointers + n

    def test_call_chain_parses(self):
        unit = parse(call_chain_module(5, 2))
        assert len(unit.functions()) == 5

    def test_loop_module_parses(self):
        unit = parse(loop_module())
        assert unit.function("looper") is not None
