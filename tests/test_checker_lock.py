"""Lock checker tests (Figure 3) including the recursive-depth variant."""

from conftest import messages, run_checker

from repro.checkers import LOCK_CHECKER_SOURCE, lock_checker
from repro.checkers.lock import counting_lock_checker
from repro.metal import compile_metal


class TestFigure3:
    def test_release_without_acquire(self):
        result = run_checker("int f(int *l) { unlock(l); return 0; }", lock_checker())
        assert messages(result) == ["releasing lock l without acquiring it!"]

    def test_double_acquire(self):
        result = run_checker(
            "int f(int *l) { lock(l); lock(l); unlock(l); return 0; }",
            lock_checker(),
        )
        assert messages(result) == ["double acquire of lock l!"]

    def test_never_released(self):
        result = run_checker("int f(int *l) { lock(l); return 0; }", lock_checker())
        assert messages(result) == ["lock l never released!"]

    def test_clean_pairing(self):
        result = run_checker(
            "int f(int *l) { lock(l); unlock(l); return 0; }", lock_checker()
        )
        assert messages(result) == []

    def test_missing_release_on_error_path_only(self):
        code = (
            "int f(int *l, int e) {\n"
            "    lock(l);\n"
            "    if (e)\n"
            "        return -1;\n"
            "    unlock(l);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == ["lock l never released!"]

    def test_two_locks_tracked_independently(self):
        code = (
            "int f(int *a, int *b) {\n"
            "    lock(a); lock(b);\n"
            "    unlock(b);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == ["lock a never released!"]

    def test_custom_function_names(self):
        ext = lock_checker("spin_lock", "spin_unlock", "spin_trylock")
        code = "int f(int *l) { spin_lock(l); return 0; }"
        result = run_checker(code, ext)
        assert messages(result) == ["lock l never released!"]

    def test_figure_text_size(self):
        n_lines = len([l for l in LOCK_CHECKER_SOURCE.splitlines() if l.strip()])
        assert 10 <= n_lines <= 200


class TestCountingLockChecker:
    """§3.2: data values track recursive lock depth."""

    def test_balanced_recursion(self):
        code = (
            "int f(int *l) { lock(l); lock(l); unlock(l); unlock(l);"
            " return 0; }"
        )
        result = run_checker(code, counting_lock_checker())
        assert messages(result) == []

    def test_depth_goes_negative(self):
        code = (
            "int f(int *l) { lock(l); unlock(l); unlock(l); return 0; }"
        )
        result = run_checker(code, counting_lock_checker())
        assert any("more times than acquired" in m for m in messages(result))

    def test_depth_exceeds_limit(self):
        acquires = " ".join("lock(l);" for __ in range(6))
        code = "int f(int *l) { %s return 0; }" % acquires
        result = run_checker(code, counting_lock_checker(max_depth=4))
        assert any("acquired 5 times" in m for m in messages(result))

    def test_leak_reports_depth(self):
        code = "int f(int *l) { lock(l); lock(l); return 0; }"
        result = run_checker(code, counting_lock_checker())
        assert any("still held 2 deep" in m for m in messages(result))
