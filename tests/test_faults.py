"""Fault-matrix tests: every injection point x every recovery path
(docs/TESTING.md).

Each scenario injects a failure through :mod:`repro.faults` (or damages
state directly), then asserts the two degradation invariants: results
from unaffected work are byte-identical to a fault-free run, and the
driver/engine stats enumerate exactly what was survived.

Pool width comes from ``XGCC_FAULT_JOBS`` when set (CI runs the suite
under both 1 and 4); otherwise both widths run.
"""

import json
import os
import time

import pytest

from repro import faults
from repro.checkers import free_checker
from repro.cfront.parser import parse
from repro.codegen.project_gen import default_checkers, generate_project
from repro.driver import cache as astcache
from repro.driver.cli import main
from repro.driver.project import Project
from repro.driver.session import IncrementalSession, session_signature
from repro.driver.stats import DriverStats
from repro.engine.analysis import Analysis, AnalysisOptions

_ENV_JOBS = os.environ.get("XGCC_FAULT_JOBS")
JOBS = [int(_ENV_JOBS)] if _ENV_JOBS else [1, 4]
POOL_JOBS = [j for j in JOBS if j > 1] or [4]


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.clear()


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A seeded multi-component project on disk plus its fault-free
    baseline report keys."""
    root = str(tmp_path_factory.mktemp("workload"))
    generated = generate_project(
        seed=7, n_modules=3, functions_per_module=4, cross_calls=False
    )
    paths = []
    for name, text in generated.files.items():
        path = os.path.join(root, name)
        with open(path, "w") as handle:
            handle.write(text)
        if name.endswith(".c"):
            paths.append(path)
    paths.sort()
    project = Project(include_paths=[root])
    project.compile_files(paths)
    baseline = project.run(default_checkers())
    assert baseline.reports, "workload must produce findings"
    return {
        "root": root,
        "paths": paths,
        "baseline_keys": [r.identity() for r in baseline.reports],
        "roots": project.callgraph.roots(),
    }


def _fresh(workload, **kwargs):
    return Project(include_paths=[workload["root"]], **kwargs)


def _keys(result):
    return [r.identity() for r in result.reports]


def _first_cache_entry(cache_dir):
    for dirpath, __, filenames in sorted(os.walk(cache_dir)):
        for name in sorted(filenames):
            if name.endswith(".ast"):
                return os.path.join(dirpath, name)
    raise AssertionError("no cache entries under %s" % cache_dir)


class TestFaultPlanUnit:
    """The injection machinery itself must be deterministic."""

    def test_times_counts_attempts(self):
        with faults.injected([{"site": "pass1.parse", "times": 2}]):
            assert faults.fires("pass1.parse") is not None
            assert faults.fires("pass1.parse") is not None
            assert faults.fires("pass1.parse") is None

    def test_key_narrows_the_fault(self):
        with faults.injected([{"site": "pass1.parse", "key": "a.c"}]):
            assert faults.fires("pass1.parse", key="b.c") is None
            assert faults.fires("pass1.parse", key="a.c") is not None

    def test_probability_is_stateless_and_stable(self):
        with faults.injected(
            [{"site": "pass1.parse", "probability": 0.5}], seed=42
        ):
            verdicts = [
                faults.fires("pass1.parse", key=k) is not None
                for k in ("a.c", "b.c", "c.c", "d.c")
            ]
            # Same plan, same keys -> same verdicts, every time.
            assert verdicts == [
                faults.fires("pass1.parse", key=k) is not None
                for k in ("a.c", "b.c", "c.c", "d.c")
            ]
        with faults.injected(
            [{"site": "pass1.parse", "probability": 1.0}], seed=42
        ):
            assert faults.fires("pass1.parse", key="x.c") is not None
        with faults.injected(
            [{"site": "pass1.parse", "probability": 0.0}], seed=42
        ):
            assert faults.fires("pass1.parse", key="x.c") is None

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            faults.install([{"site": "no.such.site"}])
        faults.clear()

    def test_clear_removes_plan_and_env(self):
        faults.install([{"site": "pass1.parse"}])
        assert faults.active()
        faults.clear()
        assert not faults.active()
        assert faults.ENV_VAR not in os.environ

    def test_check_raises_injected_fault(self):
        with faults.injected([{"site": "pass1.parse"}]):
            with pytest.raises(faults.InjectedFault):
                faults.check("pass1.parse", key="x.c")


class TestPass1Recovery:
    @pytest.mark.parametrize("jobs", POOL_JOBS)
    def test_worker_kill_recovered_on_retry(self, workload, jobs):
        with faults.injected(
            [{"site": "pass1.worker.kill", "key": workload["paths"][0],
              "times": 1}]
        ):
            project = _fresh(workload)
            project.compile_files(workload["paths"], jobs=jobs)
        assert [c.filename for c in project.compiled] == workload["paths"]
        assert project.stats.count("pass1_worker_retries") >= 1
        kinds = [d["kind"] for d in project.stats.degradations]
        assert "worker" in kinds
        result = project.run(default_checkers())
        assert _keys(result) == workload["baseline_keys"]

    @pytest.mark.parametrize("jobs", POOL_JOBS)
    def test_parser_raise_recovered_in_process(self, workload, jobs):
        # Two fires: the batch worker and the isolated retry both raise,
        # so recovery must come from the in-process fallback.
        with faults.injected(
            [{"site": "pass1.parse", "key": workload["paths"][0],
              "times": 2}]
        ):
            project = _fresh(workload)
            project.compile_files(workload["paths"], jobs=jobs)
        assert project.stats.count("pass1_inprocess_fallbacks") == 1
        assert [c.filename for c in project.compiled] == workload["paths"]
        result = project.run(default_checkers())
        assert _keys(result) == workload["baseline_keys"]

    @pytest.mark.parametrize("jobs", POOL_JOBS)
    def test_worker_hang_recovered_via_timeout(self, workload, jobs):
        with faults.injected(
            [{"site": "pass1.worker.hang", "key": workload["paths"][0],
              "times": 1, "seconds": 30}]
        ):
            project = _fresh(workload)
            start = time.monotonic()
            project.compile_files(workload["paths"], jobs=jobs,
                                  worker_timeout=1.0)
            assert time.monotonic() - start < 20
        assert project.stats.count("pass1_worker_retries") >= 1
        result = project.run(default_checkers())
        assert _keys(result) == workload["baseline_keys"]

    def test_serial_parse_failure_skips_unit_under_keep_going(self, workload):
        victim = workload["paths"][0]
        with faults.injected([{"site": "pass1.parse", "key": victim}]):
            project = _fresh(workload, keep_going=True)
            project.compile_files(workload["paths"], jobs=1)
        assert project.stats.count("pass1_tasks_skipped") == 1
        assert [c.filename for c in project.compiled] == workload["paths"][1:]
        entry = project.stats.degradations[0]
        assert entry["kind"] == "unit" and victim in entry["detail"]
        # Findings from the surviving units are intact.
        result = project.run(default_checkers())
        survivors = set(_keys(result))
        assert survivors <= set(workload["baseline_keys"])
        assert all(
            key[2] == victim
            for key in set(workload["baseline_keys"]) - survivors
        )

    def test_serial_parse_failure_raises_without_keep_going(self, workload):
        with faults.injected(
            [{"site": "pass1.parse", "key": workload["paths"][0]}]
        ):
            project = _fresh(workload)
            with pytest.raises(faults.InjectedFault):
                project.compile_files(workload["paths"], jobs=1)


class TestCacheRobustness:
    @pytest.mark.parametrize("mode", ["truncate", "garbage", "version"])
    @pytest.mark.parametrize("jobs", JOBS)
    def test_corrupt_entry_evicted_and_reparsed(self, workload, tmp_path,
                                                mode, jobs):
        cache = str(tmp_path / "cache")
        cold = _fresh(workload, cache_dir=cache)
        cold.compile_files(workload["paths"], jobs=jobs)
        astcache.corrupt_entry(_first_cache_entry(cache), mode)

        warm = _fresh(workload, cache_dir=cache)
        warm.compile_files(workload["paths"], jobs=jobs)
        assert warm.stats.count("cache_evictions") == 1
        assert warm.stats.count("cache_hits") == len(workload["paths"]) - 1
        assert warm.stats.count("parses") == 1
        entry = warm.stats.degradations[0]
        assert entry["kind"] == "cache"
        result = warm.run(default_checkers())
        assert _keys(result) == workload["baseline_keys"]

        # The eviction re-stored a good entry: the cache self-heals.
        healed = _fresh(workload, cache_dir=cache)
        healed.compile_files(workload["paths"], jobs=jobs)
        assert healed.stats.count("cache_hits") == len(workload["paths"])
        assert healed.stats.count("cache_evictions") == 0

    def test_injected_corruption_at_store_time(self, workload, tmp_path):
        cache = str(tmp_path / "cache")
        with faults.injected(
            [{"site": "cache.corrupt", "times": 1, "mode": "garbage"}]
        ):
            cold = _fresh(workload, cache_dir=cache)
            cold.compile_files(workload["paths"])
        warm = _fresh(workload, cache_dir=cache)
        warm.compile_files(workload["paths"])
        assert warm.stats.count("cache_evictions") == 1
        result = warm.run(default_checkers())
        assert _keys(result) == workload["baseline_keys"]

    def test_unpack_rejects_wrong_payload_type(self):
        import hashlib
        import pickle

        payload = pickle.dumps("not a translation unit")
        framed = (
            astcache.FRAME_MAGIC + hashlib.sha256(payload).digest() + payload
        )
        with pytest.raises(astcache.CacheCorruption):
            astcache.unpack(framed)

    def test_unpack_accepts_legacy_unframed_payload(self):
        import pickle

        unit = parse("int f(void) { return 0; }\n", "legacy.c")
        legacy = pickle.dumps(
            {
                "format": 1,
                "parser_version": astcache.PARSER_VERSION,
                "filename": "legacy.c",
                "source_bytes": 26,
                "unit": unit,
            }
        )
        loaded, source_bytes = astcache.unpack(legacy)
        assert source_bytes == 26
        assert loaded.decls

    def test_unpack_rejects_truncated_frame(self):
        unit = parse("int f(void) { return 0; }\n", "t.c")
        data = astcache.pack_unit(unit, 26)
        with pytest.raises(astcache.CacheCorruption):
            astcache.unpack(data[: len(data) // 2])


class TestManifestRace:
    """``summary.manifest`` injection: a rival session finishes its
    manifest store in the window between our read and our write.  The
    locked read-merge-write must keep the rival's warm state."""

    def test_rival_entries_survive_the_merge(self, tmp_path):
        store = astcache.SummaryCache(str(tmp_path))
        stats = DriverStats()
        with faults.injected([{
            "site": "summary.manifest",
            "fingerprints": {"rival_fn": ["rl", "rm"]},
            "frame_keys": ["rival_frame"],
        }]):
            store.store_manifest(
                "sig", {"our_fn": ["ol", "om"]},
                frame_keys=["our_frame"], stats=stats,
            )
        doc = store.load_manifest_document("sig")
        assert doc["fingerprints"] == {
            "our_fn": ["ol", "om"], "rival_fn": ["rl", "rm"],
        }
        assert doc["frame_keys"] == ["our_frame", "rival_frame"]
        assert stats.count("manifest_merges") == 1

    def test_ours_beat_the_rival_for_shared_functions(self, tmp_path):
        store = astcache.SummaryCache(str(tmp_path))
        with faults.injected([{
            "site": "summary.manifest",
            "fingerprints": {"shared": ["stale", "stale"]},
        }]):
            store.store_manifest("sig", {"shared": ["fresh", "fresh"]})
        assert store.load_manifest("sig") == {"shared": ["fresh", "fresh"]}

    def test_incremental_session_survives_interleaved_store(
        self, workload, tmp_path
    ):
        cache = str(tmp_path / "cache")

        def session():
            return IncrementalSession(
                cache, session_signature(checker_names=["free"],
                                         options=AnalysisOptions()),
            )

        checkers = [free_checker(("kfree", "vfree"))]
        cold = _fresh(workload, cache_dir=cache)
        cold.compile_files(workload["paths"])
        with faults.injected([{"site": "summary.manifest"}]):
            first = cold.run(checkers, incremental=session())
        assert cold.stats.count("manifest_merges") == 1

        # The default rival entry landed and persists alongside ours...
        signature = session_signature(
            checker_names=["free"], options=AnalysisOptions()
        )
        summaries = astcache.SummaryCache(
            os.path.join(cache, "summaries")
        )
        manifest = summaries.load_manifest(signature)
        assert "__rival__" in manifest

        # ...and the warm run is not perturbed: every real root replays.
        warm = _fresh(workload, cache_dir=cache)
        warm.compile_files(workload["paths"])
        second = warm.run(checkers, incremental=session())
        assert _keys(second) == _keys(first)
        assert warm.stats.count("incremental_roots_analyzed") == 0
        assert warm.stats.count("incremental_fallbacks") == 0


class TestPass2Recovery:
    @pytest.mark.parametrize("jobs", POOL_JOBS)
    def test_worker_kill_recovered_on_retry(self, workload, jobs):
        with faults.injected(
            [{"site": "pass2.worker.kill", "key": 0, "times": 1}]
        ):
            project = _fresh(workload)
            project.compile_files(workload["paths"])
            result = project.run(
                default_checkers(), jobs=jobs,
                extension_factory=default_checkers,
            )
        assert _keys(result) == workload["baseline_keys"]
        assert project.stats.count("pass2_worker_retries") >= 1
        assert project.stats.count("pass2_inprocess_fallbacks") == 0
        assert any(
            d["kind"] == "worker" and "recovered on retry" in d["detail"]
            for d in project.stats.degradations
        )

    @pytest.mark.parametrize("jobs", POOL_JOBS)
    def test_persistent_kill_falls_back_in_process(self, workload, jobs):
        # Enough budget to kill the batch worker and the retry worker;
        # the in-process fallback is kill-immune by construction.
        with faults.injected(
            [{"site": "pass2.worker.kill", "key": 0, "times": 10}]
        ):
            project = _fresh(workload)
            project.compile_files(workload["paths"])
            result = project.run(
                default_checkers(), jobs=jobs,
                extension_factory=default_checkers,
            )
        assert _keys(result) == workload["baseline_keys"]
        assert project.stats.count("pass2_inprocess_fallbacks") == 1
        assert any(
            d["kind"] == "worker" and "recovered in-process" in d["detail"]
            for d in project.stats.degradations
        )

    @pytest.mark.parametrize("jobs", POOL_JOBS)
    def test_worker_hang_recovered_via_timeout(self, workload, jobs):
        with faults.injected(
            [{"site": "pass2.worker.hang", "key": 0, "times": 1,
              "seconds": 30}]
        ):
            project = _fresh(workload)
            project.compile_files(workload["paths"])
            start = time.monotonic()
            result = project.run(
                default_checkers(), jobs=jobs,
                extension_factory=default_checkers, worker_timeout=1.0,
            )
            assert time.monotonic() - start < 20
        assert _keys(result) == workload["baseline_keys"]
        assert project.stats.count("pass2_worker_retries") >= 1

    @pytest.mark.parametrize("jobs", POOL_JOBS)
    def test_analysis_exception_recovered(self, workload, jobs):
        with faults.injected(
            [{"site": "pass2.analysis", "key": 0, "times": 2}]
        ):
            project = _fresh(workload)
            project.compile_files(workload["paths"])
            result = project.run(
                default_checkers(), jobs=jobs,
                extension_factory=default_checkers,
            )
        assert _keys(result) == workload["baseline_keys"]
        assert project.stats.count("pass2_worker_failures") >= 1

    def test_serial_jobs_are_immune_to_worker_faults(self, workload):
        # jobs=1 never enters a worker process, so worker faults cannot
        # fire: the run is simply the serial run.
        with faults.injected(
            [{"site": "pass2.worker.kill", "key": 0},
             {"site": "pass2.worker.hang", "key": 0}]
        ):
            project = _fresh(workload)
            project.compile_files(workload["paths"], jobs=1)
            result = project.run(default_checkers(), jobs=1)
        assert _keys(result) == workload["baseline_keys"]
        assert project.stats.count("pass2_worker_failures") == 0


class TestEngineDegradation:
    def _reports_by_root(self, workload, extensions):
        """Fault-free serial run: report identities attributed per root."""
        project = _fresh(workload)
        project.compile_files(workload["paths"])
        analysis = project.analysis()
        result = analysis.run(extensions)
        per_root = {}
        for __, root, begin, end in analysis.root_spans:
            per_root.setdefault(root, []).extend(
                r.identity() for r in result.log.reports[begin:end]
            )
        return per_root

    def test_injected_budget_keeps_other_roots_identical(self, workload):
        extensions = default_checkers()
        per_root = self._reports_by_root(workload, extensions)
        victim = max(per_root, key=lambda root: len(per_root[root]))
        with faults.injected([{"site": "engine.budget", "key": victim}]):
            project = _fresh(workload)
            project.compile_files(workload["paths"])
            result = project.run(default_checkers())
        assert not result.truncated
        assert result.degraded
        assert {d.root for d in result.degraded} == {victim}
        assert all(d.kind == "injected" for d in result.degraded)
        survivors = set(_keys(result))
        lost = set(workload["baseline_keys"]) - survivors
        assert lost <= set(per_root[victim])
        for root, keys in per_root.items():
            if root != victim:
                assert set(keys) <= survivors

    def test_step_budget_degrades_only_offending_root(self):
        # An exponential path-explosion root next to a tiny buggy one.
        chunks = ["int wide(int *p, int a) {", "  int x = 0;"]
        for index in range(24):
            chunks.append("  if (a > %d) { x = x + 1; } else { x = x - 1; }"
                          % index)
        chunks += ["  return x;", "}"]
        chunks += [
            "int buggy(int *p) {",
            "  kfree(p);",
            "  kfree(p);",
            "  return 0;",
            "}",
        ]
        unit = parse("\n".join(chunks), "budget.c")
        options = AnalysisOptions(
            max_steps_per_root=2000, false_path_pruning=False, caching=False
        )
        result = Analysis([unit], options=options).run(free_checker())
        assert not result.truncated
        assert [d.root for d in result.degraded] == ["wide"]
        assert result.degraded[0].kind == "steps"
        assert result.stats["degraded_roots"] == 1
        assert any(r.function == "buggy" for r in result.reports)

    def test_path_budget_records_kind_paths(self):
        chunks = ["int fanout(int a) {", "  int x = 0;"]
        for index in range(12):
            chunks.append("  if (a > %d) { x = x + 1; } else { x = x - 1; }"
                          % index)
        chunks += ["  return x;", "}"]
        unit = parse("\n".join(chunks), "paths.c")
        options = AnalysisOptions(
            max_paths_per_root=16, false_path_pruning=False, caching=False
        )
        result = Analysis([unit], options=options).run(free_checker())
        assert [d.kind for d in result.degraded] == ["paths"]
        assert not result.truncated

    def test_time_budget_records_kind_time(self):
        unit = parse(
            "int slow(int a) { int x = 0; x = x + a; return x; }\n", "slow.c"
        )
        options = AnalysisOptions(max_seconds_per_root=1e-9)
        result = Analysis([unit], options=options).run(free_checker())
        assert [d.kind for d in result.degraded] == ["time"]

    def test_partial_reports_survive_budget_abort(self):
        # The first kfree pair reports before the step budget dies inside
        # the tail of the same root: partial findings must be kept.
        chunks = [
            "int partial(int *p, int a) {",
            "  kfree(p);",
            "  kfree(p);",
            "  int x = 0;",
        ]
        for index in range(24):
            chunks.append("  if (a > %d) { x = x + 1; } else { x = x - 1; }"
                          % index)
        chunks += ["  return x;", "}"]
        unit = parse("\n".join(chunks), "partial.c")
        options = AnalysisOptions(
            max_steps_per_root=2000, false_path_pruning=False, caching=False
        )
        result = Analysis([unit], options=options).run(free_checker())
        assert [d.root for d in result.degraded] == ["partial"]
        assert result.degraded[0].reports_kept >= 1
        assert any(r.function == "partial" for r in result.reports)

    def test_global_budget_still_truncates_but_records(self):
        unit = parse(
            "int a(int x) { return x; }\n"
            "int b(int x) { return x; }\n",
            "global.c",
        )
        options = AnalysisOptions(max_steps=1, interprocedural=False)
        result = Analysis([unit], options=options).run(free_checker())
        assert result.truncated
        assert result.degraded[0].kind == "global-steps"

    def test_root_error_policy_degrade(self, workload, monkeypatch):
        extensions = default_checkers()
        per_root = self._reports_by_root(workload, extensions)
        victim = sorted(per_root)[0]
        original = Analysis._run_root

        def explode(self, ext, root):
            if root == victim:
                raise RuntimeError("hostile input")
            return original(self, ext, root)

        monkeypatch.setattr(Analysis, "_run_root", explode)
        project = _fresh(workload)
        project.compile_files(workload["paths"])
        options = AnalysisOptions(root_error_policy="degrade")
        result = project.run(default_checkers(), options)
        assert {d.root for d in result.degraded} == {victim}
        assert all(d.kind == "error" for d in result.degraded)
        for root, keys in per_root.items():
            if root != victim:
                assert set(keys) <= set(_keys(result))

    def test_root_error_policy_raise_is_default(self, workload, monkeypatch):
        def explode(self, ext, root):
            raise RuntimeError("hostile input")

        monkeypatch.setattr(Analysis, "_run_root", explode)
        project = _fresh(workload)
        project.compile_files(workload["paths"])
        with pytest.raises(RuntimeError):
            project.run(default_checkers())


class TestAcceptance:
    """ISSUE 2 acceptance: one run surviving a worker crash, a corrupt
    cache entry, and a budget-exhausted root, with byte-identical
    findings from unaffected roots and all three degradations in
    --stats-json."""

    def test_combined_faults_still_complete(self, workload, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        stats_json = str(tmp_path / "stats.json")
        argv = [
            "--checker", "free", "--checker", "lock",
            "--checker", "mallocfail", "-I", workload["root"],
        ] + workload["paths"]

        # Fault-free baseline (serial, no cache).
        code_baseline = main(argv)
        out_baseline = capsys.readouterr().out

        # Pick a root that reports nothing (so the faulted run's stdout
        # must be byte-identical), attributed via serial spans.
        project = _fresh(workload)
        project.compile_files(workload["paths"])
        from repro.checkers import ALL_CHECKERS

        extensions = [ALL_CHECKERS[n]() for n in ("free", "lock", "mallocfail")]
        analysis = project.analysis()
        analysis.run(extensions)
        reporting = {
            root
            for __, root, begin, end in analysis.root_spans
            if end > begin
        }
        quiet_roots = [
            r for r in project.callgraph.roots() if r not in reporting
        ]
        assert quiet_roots, "need a report-free root for the byte-compare"
        victim_root = quiet_roots[0]

        # Warm the cache, then corrupt one entry on disk.
        main(argv + ["--cache-dir", cache])
        capsys.readouterr()
        astcache.corrupt_entry(_first_cache_entry(cache), "garbage")

        # The hostile run: corrupt cache + killed worker + blown budget.
        with faults.injected([
            {"site": "pass2.worker.kill", "key": 0, "times": 1},
            {"site": "engine.budget", "key": victim_root},
        ]):
            code_faulted = main(
                argv + ["--cache-dir", cache, "--jobs", "4",
                        "--stats-json", stats_json]
            )
        captured = capsys.readouterr()

        assert code_faulted == code_baseline == 1
        assert captured.out == out_baseline
        with open(stats_json) as handle:
            stats = json.load(handle)
        kinds = {entry["kind"] for entry in stats["degradations"]}
        assert {"worker", "cache", "root"} <= kinds
        assert stats["counters"]["cache_evictions"] == 1
        assert stats["counters"]["pass2_worker_retries"] >= 1
        assert any(
            entry["kind"] == "root" and entry.get("root") == victim_root
            for entry in stats["degradations"]
        )
