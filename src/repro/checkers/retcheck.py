"""Statistical return-value checking ("bugs as deviant behavior", the
second inference family of [10]).

Nobody annotates which functions' return values must be checked; the tool
counts, per callee, how often call results are *used* (branched on,
assigned, returned, part of an expression) versus discarded, z-ranks the
"must check" rules, and reports the deviant call sites of high-confidence
rules.
"""

from repro.cfront import astnodes as ast
from repro.ranking.statistical import rule_z_score


class CallSiteUse:
    """One call site and whether its result is consumed."""

    def __init__(self, callee, location, function, checked):
        self.callee = callee
        self.location = location
        self.function = function
        self.checked = checked

    def __repr__(self):
        return "<call %s at %s:%s %s>" % (
            self.callee,
            self.location.filename,
            self.location.line,
            "checked" if self.checked else "IGNORED",
        )


class ReturnCheckRule:
    """One inferred "callers must check fn()" rule."""

    def __init__(self, callee, checked, ignored, ignored_sites):
        self.callee = callee
        self.checked = checked
        self.ignored = ignored
        self.ignored_sites = ignored_sites

    @property
    def z_score(self):
        return rule_z_score(self.checked, self.ignored)

    def __repr__(self):
        return "<must-check %s e=%d c=%d z=%.2f>" % (
            self.callee, self.checked, self.ignored, self.z_score,
        )


def collect_call_uses(callgraph):
    """Classify every direct call site as result-checked or ignored.

    A result is "checked" unless the call is the whole expression
    statement (its value evaporates).
    """
    uses = []
    for name in sorted(callgraph.functions):
        decl = callgraph.functions[name]
        for node, consumed in _walk_with_context(decl.body):
            callee = node.callee_name()
            if callee is None:
                continue
            uses.append(CallSiteUse(callee, node.location, name, consumed))
    return uses


def _walk_with_context(body):
    """Yield (Call node, result_consumed) for every call in a function."""
    out = []

    def visit(node, consumed):
        if isinstance(node, ast.Call):
            out.append((node, consumed))
            for arg in node.args:
                visit(arg, True)
            visit(node.func, True)
            return
        if isinstance(node, ast.ExprStmt):
            visit(node.expr, False)
            return
        if isinstance(node, ast.Comma):
            visit(node.left, False)
            visit(node.right, consumed)
            return
        for child in node.children():
            visit(child, True)

    visit(body, False)
    return out


def infer_must_check_rules(callgraph, min_checked=3):
    """Infer which functions' results must be checked; strongest first."""
    checked = {}
    ignored = {}
    ignored_sites = {}
    for use in collect_call_uses(callgraph):
        if use.checked:
            checked[use.callee] = checked.get(use.callee, 0) + 1
        else:
            ignored[use.callee] = ignored.get(use.callee, 0) + 1
            ignored_sites.setdefault(use.callee, []).append(use)
    rules = []
    for callee in set(checked) | set(ignored):
        n_checked = checked.get(callee, 0)
        n_ignored = ignored.get(callee, 0)
        if n_checked < min_checked:
            continue
        rules.append(
            ReturnCheckRule(
                callee, n_checked, n_ignored, ignored_sites.get(callee, [])
            )
        )
    rules.sort(key=lambda r: (-r.z_score, r.callee))
    return rules


def report_deviant_sites(callgraph, min_checked=3, min_z=1.0):
    """The user-facing pass: ErrorReport-shaped findings for ignored
    results of must-check functions."""
    from repro.engine.errors import ErrorReport

    reports = []
    for rule in infer_must_check_rules(callgraph, min_checked):
        if rule.z_score < min_z or not rule.ignored_sites:
            continue
        for site in rule.ignored_sites:
            reports.append(
                ErrorReport(
                    checker="retcheck",
                    message=(
                        "result of %s() ignored (checked at %d other sites, z=%.2f)"
                        % (rule.callee, rule.checked, rule.z_score)
                    ),
                    location=site.location,
                    function=site.function,
                    rule_id=rule.callee,
                )
            )
    return reports
