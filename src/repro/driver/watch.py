"""Content-fingerprint tree watching for the analysis daemon.

The daemon (:mod:`repro.driver.daemon`) must notice edits without
trusting mtimes: editors, build systems, and ``git checkout`` all
produce mtime patterns that lie in both directions (touched-but-equal
files, rewritten-with-old-stamp files).  :class:`TreeWatcher` therefore
fingerprints file *content* — SHA-256 over the raw bytes — and reports a
file as changed exactly when its digest differs from the last scan.
That is the same no-trust discipline the tier-1 cache applies to
preprocessed tokens, applied one level earlier and much cheaper (no
tokenization), so a full re-scan per request is still far below pass-1
probing cost.

Two input paths feed the watcher:

- ``poll()`` — re-hash the watched set (default: everything; or just
  the paths a change event named).  This is the authoritative diff.
- ``notify(paths)`` — an optional change-event hook (an editor plugin,
  inotify shim, or test) queues paths for the next poll, which then
  re-hashes only those plus any files never seen before.  Events are a
  hint, never a source of truth: the content hash still decides.

A watcher poll is an instrumented fault site (``daemon.watcher``): an
injected stall/error raises :class:`WatcherError`, which the daemon
degrades around (serve last-known state, count it) instead of wedging.
"""

import hashlib
import os

from repro import faults

#: File suffixes the watcher fingerprints by default: the analyzed
#: translation units and anything they can ``#include``.
WATCHED_SUFFIXES = (".c", ".h")


class WatcherError(Exception):
    """A poll that could not complete (injected stall, unreadable
    tree); the daemon degrades and keeps serving."""


def fingerprint_file(path):
    """SHA-256 hex digest of a file's bytes, or None when unreadable
    (deleted mid-scan, permissions): an unreadable file simply reads as
    *absent*, which the diff logic treats as a removal."""
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return None


class TreeWatcher:
    """Polling content-fingerprint watcher over directories + files.

    ``roots`` are directories walked recursively for
    :data:`WATCHED_SUFFIXES`; ``files`` are watched explicitly whatever
    their suffix.  State is ``{path: digest}`` from the last completed
    poll; :meth:`poll` returns the set of paths whose digest changed
    (created, edited, or removed) since then.
    """

    def __init__(self, roots=(), files=(), suffixes=WATCHED_SUFFIXES,
                 stats=None):
        self.roots = [os.path.abspath(root) for root in roots]
        self.files = [os.path.abspath(path) for path in files]
        self.suffixes = tuple(suffixes)
        self.stats = stats
        #: path -> digest as of the last completed poll.
        self.state = {}
        #: Paths a change event named since the last poll.
        self._notified = set()

    # -- discovery ---------------------------------------------------------

    def watched_files(self):
        """The sorted watch set as of right now: explicit files plus a
        recursive suffix walk of every root directory."""
        found = set(self.files)
        for root in self.roots:
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames.sort()
                for name in filenames:
                    if name.endswith(self.suffixes):
                        found.add(os.path.join(dirpath, name))
        return sorted(found)

    # -- change detection --------------------------------------------------

    def notify(self, paths):
        """Change-event hook: queue ``paths`` for the next poll.  The
        next poll re-hashes only these (plus never-seen files) instead
        of the whole tree — events narrow the scan, content decides."""
        for path in paths:
            self._notified.add(os.path.abspath(path))

    def poll(self, full=True):
        """Diff the tree against the last poll; returns changed paths.

        ``full=False`` restricts hashing to the notified set plus any
        newly appearing / disappearing paths (the cheap event-driven
        mode); ``full=True`` re-hashes everything.  Raises
        :class:`WatcherError` when a fault is injected at
        ``daemon.watcher`` — the poll's state is untouched, so the next
        poll sees every edit this one missed.
        """
        spec = faults.fires("daemon.watcher", key=self.roots[0]
                            if self.roots else None)
        if spec is not None:
            raise WatcherError(
                "injected watcher %s" % spec.get("mode", "stall")
            )
        current = self.watched_files()
        notified, self._notified = self._notified, set()
        changed = set()
        # Removals: watched before, gone (or unreadable) now.
        for path in set(self.state) - set(current):
            changed.add(path)
            del self.state[path]
        for path in current:
            if not full and path in self.state and path not in notified:
                continue
            digest = fingerprint_file(path)
            if digest is None:
                if self.state.pop(path, None) is not None:
                    changed.add(path)
                continue
            if self.state.get(path) != digest:
                changed.add(path)
                self.state[path] = digest
        if self.stats is not None:
            self.stats.add("daemon_polls")
            if changed:
                self.stats.add("daemon_files_changed", len(changed))
        return changed
