"""The refinement abstract domain: intervals over congruence classes.

:class:`RefineState` wraps the engine's own
:class:`repro.engine.falsepath.PathConstraints` (equalities,
disequalities, ordering relations, congruence closure) and layers an
*interval* per congruence class on top.  The closure alone never
derives a contradiction from ``x <= 4`` followed by ``x >= 10`` -- its
relations list is only consulted when *evaluating* a branch, not when
*assuming* one -- so the intervals are where chained inequality
contradictions actually surface.

Intervals are keyed by closure representative and re-canonicalized
after every assume (unions move representatives); a class whose
interval goes empty, or whose known constant falls outside its
interval, marks the state contradictory.
"""

from repro.cfront import astnodes as ast
from repro.engine.falsepath import (
    _NEGATE,
    _RELOPS,
    PathConstraints,
    _base_variable,
)


class Interval:
    """A closed integer interval; ``None`` bounds are infinite."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo=None, hi=None):
        self.lo = lo
        self.hi = hi

    @property
    def empty(self):
        return self.lo is not None and self.hi is not None \
            and self.lo > self.hi

    def intersect(self, other):
        lo = (self.lo if other.lo is None
              else other.lo if self.lo is None
              else max(self.lo, other.lo))
        hi = (self.hi if other.hi is None
              else other.hi if self.hi is None
              else min(self.hi, other.hi))
        return Interval(lo, hi)

    def contains(self, value):
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def __repr__(self):
        return (
            f"[{'-inf' if self.lo is None else self.lo!s}, "
            f"{'+inf' if self.hi is None else self.hi!s}]"
        )


def _interval_for(op, value):
    """The interval implied by ``<term> op <const value>``."""
    if op == "<":
        return Interval(None, value - 1)
    if op == "<=":
        return Interval(None, value)
    if op == ">":
        return Interval(value + 1, None)
    if op == ">=":
        return Interval(value, None)
    if op == "==":
        return Interval(value, value)
    return None


class RefineState:
    """Per-path symbolic state for the refinement evaluator.

    ``relevant`` is the slice's variable set
    (:func:`repro.refine.slicing.relevant_variables`); assignments to
    variables outside it are skipped entirely.  ``None`` tracks
    everything.
    """

    def __init__(self, relevant=None):
        self.pc = PathConstraints()
        self.intervals = {}
        self.relevant = relevant
        self._interval_dead = False

    def copy(self):
        clone = RefineState.__new__(RefineState)
        clone.pc = self.pc.copy()
        clone.intervals = dict(self.intervals)
        clone.relevant = self.relevant
        clone._interval_dead = self._interval_dead
        return clone

    @property
    def infeasible(self):
        return self.pc.infeasible or self._interval_dead

    def _tracks(self, name):
        return self.relevant is None or name in self.relevant

    def havoc(self, names):
        self.pc.havoc([n for n in names if self._tracks(n)])

    def declare(self, name):
        """Scope entry: a declaration kills any stale tracked state."""
        if self._tracks(name):
            self.pc.havoc([name])

    def assign_node(self, node):
        """Apply one ``Assign`` tree (desugaring compound operators the
        way the engine's value tracking does)."""
        target = node.target
        base = _base_variable(target)
        if base is None or not self._tracks(base):
            return
        if node.op == "=":
            self.pc.assign(target, node.value)
            return
        desugared = ast.Binary(node.op[:-1], target, node.value)
        self.pc.assign(target, desugared)

    def incdec_node(self, node):
        """Apply one ``++``/``--`` tree."""
        base = _base_variable(node.operand)
        if base is None or not self._tracks(base):
            return
        op = "+" if node.op == "++" else "-"
        self.pc.assign(node.operand,
                       ast.Binary(op, node.operand, ast.IntLit(1)))

    def call_effects(self, call, local_names):
        """Havoc what an opaque call may clobber: variables whose
        address escapes into the call, and every tracked non-local."""
        clobbered = set()
        for arg in call.args:
            for sub in arg.walk():
                if isinstance(sub, ast.Unary) and sub.op == "&" \
                        and not sub.postfix:
                    base = _base_variable(sub.operand)
                    if base is not None:
                        clobbered.add(base)
        if self.relevant is not None:
            clobbered.update(
                name for name in self.relevant if name not in local_names
            )
        self.havoc(clobbered)

    def assume(self, cond, truth):
        """Record a branch outcome in both layers, then
        re-canonicalize."""
        self.pc.assume(cond, truth)
        self._assume_interval(cond, truth)
        self._refresh()

    def _assume_interval(self, cond, truth):
        if cond is None:
            return
        if isinstance(cond, ast.Unary) and cond.op == "!" \
                and not cond.postfix:
            self._assume_interval(cond.operand, not truth)
            return
        if isinstance(cond, ast.Binary) and cond.op == "&&" and truth:
            self._assume_interval(cond.left, True)
            self._assume_interval(cond.right, True)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||" and not truth:
            self._assume_interval(cond.left, False)
            self._assume_interval(cond.right, False)
            return
        if isinstance(cond, ast.Assign):
            self._assume_interval(cond.target, truth)
            return
        if not isinstance(cond, ast.Binary) or cond.op not in _RELOPS:
            return
        op = cond.op if truth else _NEGATE[cond.op]
        left = self.pc.term(cond.left)
        right = self.pc.term(cond.right)
        if left is None or right is None:
            return
        closure = self.pc.closure
        left_const = closure.const_of(left)
        right_const = closure.const_of(right)
        if right_const is not None:
            self._constrain(left, op, right_const)
        if left_const is not None:
            swapped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
                       "==": "==", "!=": "!="}[op]
            self._constrain(right, swapped, left_const)

    def _constrain(self, key, op, value):
        implied = _interval_for(op, value)
        if implied is None:
            return
        rep = self.pc.closure.find(key)
        current = self.intervals.get(rep)
        self.intervals[rep] = (implied if current is None
                              else current.intersect(implied))

    def _refresh(self):
        """Re-key intervals by current representative and check for
        contradictions (empty class, constant outside its interval)."""
        closure = self.pc.closure
        merged = {}
        for key, interval in self.intervals.items():
            rep = closure.find(key)
            current = merged.get(rep)
            merged[rep] = (interval if current is None
                           else current.intersect(interval))
        for rep, interval in merged.items():
            if interval.empty:
                self._interval_dead = True
                break
            const = closure.consts.get(rep)
            if const is not None and not interval.contains(const):
                self._interval_dead = True
                break
        self.intervals = merged
