"""HTTP report-server tests: endpoints, concurrency, daemon
integration, and triage persistence across restarts.

The contract (docs/REPORTS.md): the server is the daemon's report
surface promoted to multi-client HTTP -- ``GET /diff`` answers must
equal the offline ``xgcc --diff`` over the same store, any number of
clients may query concurrently, ``POST /triage`` lands in the shared
backend (so it survives a daemon restart and re-renders the warm
state), and the server also runs standalone over a bare store backend
with no daemon at all.
"""

import contextlib
import functools
import json
import os
import shutil
import tempfile
import threading
import urllib.error
import urllib.request

import pytest

from repro.codegen.project_gen import generate_project
from repro.driver.cli import _build_extensions, main
from repro.driver.daemon import DaemonClient, XgccDaemon, wait_for_socket
from repro.driver.report_server import ReportServer, ReportServerError
from repro.driver.session import IncrementalSession, session_signature
from repro.driver.stats import DriverStats
from repro.driver.store import LocalStore
from repro.engine.analysis import AnalysisOptions
from repro.reports.hashing import assign_report_hashes
from repro.reports.history import RunHistory
from repro.reports.model import Report
from repro.reports.triage import TriageStore

cli_checkers = functools.partial(_build_extensions, ("free", "lock"), ())

CHECKER_ARGS = ["--checker", "free", "--checker", "lock"]

TREE = {
    "mod.c": (
        "int stable_bug(int *a) { kfree(a); return *a; }\n"
        "\n"
        "int target_bug(int *b) { kfree(b); return *b; }\n"
    ),
}

FIXED_TREE = {
    "mod.c": TREE["mod.c"].replace("return *b;", "return 0;"),
}


def write_tree(dirpath, files):
    for name, text in files.items():
        with open(os.path.join(str(dirpath), name), "w") as handle:
            handle.write(text)


def c_paths(dirpath):
    return sorted(
        os.path.join(str(dirpath), name)
        for name in os.listdir(str(dirpath))
        if name.endswith(".c")
    )


def get(url):
    """``(status, decoded JSON)`` for one GET."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def post(url, doc):
    data = json.dumps(doc).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def seeded_backend(tmp_path):
    """A local backend with two recorded runs one fix apart."""
    backend = LocalStore(str(tmp_path / "store"))
    history = RunHistory(backend)
    first = assign_report_hashes([
        Report("free_checker", "using a after free!", function="stable_bug",
               variable="a"),
        Report("free_checker", "using b after free!", function="target_bug",
               variable="b"),
    ])
    second = assign_report_hashes([
        Report("free_checker", "using a after free!", function="stable_bug",
               variable="a"),
    ])
    id1 = history.record_run(first, meta={"tag": "base"})
    id2 = history.record_run(second)
    return backend, history, id1, id2


@contextlib.contextmanager
def standalone_server(backend, stats=None):
    server = ReportServer(backend=backend, stats=stats)
    server.start()
    try:
        yield server
    finally:
        server.stop()


class TestStandaloneEndpoints:
    def test_needs_a_backend(self):
        with pytest.raises(ReportServerError):
            ReportServer()

    def test_ping(self, tmp_path):
        backend, *_ = seeded_backend(tmp_path)
        with standalone_server(backend) as server:
            status, doc = get(server.url + "/ping")
        assert status == 200
        assert doc["ok"] and not doc["live"]

    def test_runs_and_run_reports(self, tmp_path):
        backend, __, id1, id2 = seeded_backend(tmp_path)
        with standalone_server(backend) as server:
            status, doc = get(server.url + "/runs")
            assert status == 200
            assert [row["run_id"] for row in doc["runs"]] == [id1, id2]
            assert doc["runs"][0]["meta"] == {"tag": "base"}

            status, doc = get(server.url + "/runs/%s/reports" % id1)
            assert status == 200
            assert doc["run_id"] == id1
            assert len(doc["reports"]) == 2

            status, doc = get(server.url + "/runs/latest")
            assert doc["run_id"] == id2

            status, doc = get(server.url + "/runs/rnosuch")
            assert status == 404 and not doc["ok"]

    def test_reports_serves_latest_without_daemon(self, tmp_path):
        backend, __, __, id2 = seeded_backend(tmp_path)
        with standalone_server(backend) as server:
            status, doc = get(server.url + "/reports")
        assert status == 200
        assert doc["run_id"] == id2

    def test_diff_parity_with_offline_history(self, tmp_path):
        backend, history, id1, id2 = seeded_backend(tmp_path)
        offline = history.diff(id1, id2)
        with standalone_server(backend) as server:
            status, doc = get(
                server.url + "/diff?base=%s&head=%s" % (id1, id2)
            )
        assert status == 200
        for bucket in ("new", "resolved", "unresolved", "suppressed"):
            assert doc[bucket] == offline[bucket]
        assert [d["function"] for d in doc["resolved"]] == ["target_bug"]

    def test_diff_unknown_run_is_404(self, tmp_path):
        backend, *_ = seeded_backend(tmp_path)
        with standalone_server(backend) as server:
            status, doc = get(server.url + "/diff?base=rnosuch")
        assert status == 404 and "rnosuch" in doc["error"]

    def test_unknown_endpoint_is_404_and_counted(self, tmp_path):
        backend, *_ = seeded_backend(tmp_path)
        stats = DriverStats()
        with standalone_server(backend, stats=stats) as server:
            status, __ = get(server.url + "/nonsense")
        assert status == 404
        assert stats.count("report_server_errors") == 1
        assert stats.count("report_server_requests") == 1

    def test_triage_post_get_round_trip(self, tmp_path):
        backend, __, id1, id2 = seeded_backend(tmp_path)
        target = RunHistory(backend).load_run(id1)["reports"][1]
        with standalone_server(backend) as server:
            status, doc = get(server.url + "/triage")
            assert status == 200 and doc["entries"] == []

            status, doc = post(server.url + "/triage", {
                "kind": "hash", "key": target["hash"],
                "reason": "known-benign",
            })
            assert status == 200 and doc["entries"] == 1

            status, doc = get(server.url + "/triage")
            assert [e["key"] for e in doc["entries"]] == [target["hash"]]

            # The suppression shows up in diffs: the "new" report in the
            # reverse diff lands in the suppressed bucket instead.
            status, doc = get(
                server.url + "/diff?base=%s&head=%s" % (id2, id1)
            )
            assert doc["new"] == []
            assert [d["hash"] for d in doc["suppressed"]] == \
                [target["hash"]]
        # And it persisted through the shared backend.
        assert TriageStore.load_backend(backend).matches_dict(target)

    def test_triage_post_rejects_garbage(self, tmp_path):
        backend, *_ = seeded_backend(tmp_path)
        with standalone_server(backend) as server:
            status, doc = post(server.url + "/triage",
                               {"kind": "nope", "key": 1})
            assert status == 400 and not doc["ok"]

    def test_stats_endpoint(self, tmp_path):
        backend, *_ = seeded_backend(tmp_path)
        stats = DriverStats()
        with standalone_server(backend, stats=stats) as server:
            get(server.url + "/runs")
            status, doc = get(server.url + "/stats")
        assert status == 200
        assert doc["stats"]["counters"]["report_server_requests"] >= 1


class TestConcurrentClients:
    def test_many_clients_query_concurrently(self, tmp_path):
        backend, __, id1, id2 = seeded_backend(tmp_path)
        results, errors = [], []

        def client(index):
            try:
                if index % 2:
                    status, doc = get(
                        "%s/diff?base=%s&head=%s"
                        % (server.url, id1, id2)
                    )
                    results.append(("diff", status,
                                    len(doc["resolved"])))
                else:
                    status, doc = get(server.url + "/runs")
                    results.append(("runs", status, len(doc["runs"])))
            except Exception as err:  # pragma: no cover - failure detail
                errors.append(err)

        with standalone_server(backend) as server:
            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors
        assert len(results) == 8
        assert all(status == 200 for __, status, __ in results)
        assert {row for row in results} == \
            {("diff", 200, 1), ("runs", 200, 2)}


@contextlib.contextmanager
def live_daemon(src_dir, cache_dir, sock_path, http_port=0):
    """A daemon plus its HTTP report server, both torn down."""
    options = AnalysisOptions()
    signature = session_signature(
        checker_names=["free", "lock"], options=options
    )
    session = IncrementalSession(str(cache_dir), signature,
                                 pin_warm_state=True)
    daemon = XgccDaemon(
        watch_roots=[str(src_dir)], extension_factory=cli_checkers,
        session=session, socket_path=str(sock_path),
        include_paths=[str(src_dir)], cache_dir=str(cache_dir),
        options=options, poll_interval=30.0,
    )
    server = ReportServer(daemon=daemon, port=http_port)
    server.start()
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    assert wait_for_socket(str(sock_path), timeout=60.0)
    try:
        yield daemon, server
    finally:
        server.stop()
        try:
            with DaemonClient(str(sock_path)) as client:
                client.request("shutdown")
        except Exception:
            daemon.stop()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "daemon thread wedged"


@pytest.fixture
def sock_dir():
    path = tempfile.mkdtemp(prefix="xgccd-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def cold_output(dirpath, capsys):
    main(CHECKER_ARGS + ["-I", str(dirpath)] + c_paths(dirpath))
    return capsys.readouterr().out


class TestLiveDaemon:
    def test_reports_serve_warm_state_byte_identical(
        self, tmp_path, sock_dir, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=23, n_modules=2,
                               functions_per_module=4, bug_rate=0.5)
        write_tree(src, gen.files)
        baseline = cold_output(src, capsys)
        sock = os.path.join(sock_dir, "d.sock")
        with live_daemon(src, tmp_path / "cache", sock) as (__, server):
            status, doc = get(server.url + "/ping")
            assert doc["live"]
            status, doc = get(server.url + "/reports")
            assert status == 200
            assert doc["text"] == baseline
            assert doc["report_count"] == len(doc["reports"])
            # A second query is served from the warm response cache.
            status, warm = get(server.url + "/reports")
            assert warm["text"] == baseline
            assert warm["served_from"] == "cache"

    def test_head_current_diff_sees_live_edit(
        self, tmp_path, sock_dir, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        sock = os.path.join(sock_dir, "d.sock")
        with live_daemon(src, tmp_path / "cache", sock) as (__, server):
            status, doc = get(server.url + "/reports")
            base = doc["run_id"]
            assert base
            write_tree(src, FIXED_TREE)
            status, diff = get(server.url + "/diff?base=%s" % base)
            assert status == 200
            assert diff["head"] == "current"
            assert [d["function"] for d in diff["resolved"]] == \
                ["target_bug"]
            assert diff["new"] == []

    def test_http_diff_parity_with_offline_cli_diff(
        self, tmp_path, sock_dir, capsys
    ):
        # The CI-lane bar: the served diff equals xgcc --diff over the
        # same cache, endpoint vs offline.
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        cache = tmp_path / "cache"
        sock = os.path.join(sock_dir, "d.sock")
        with live_daemon(src, cache, sock) as (__, server):
            status, first = get(server.url + "/reports")
            write_tree(src, FIXED_TREE)
            status, second = get(server.url + "/reports")
            base, head = first["run_id"], second["run_id"]
            assert base != head
            status, served = get(
                "%s/diff?base=%s&head=%s" % (server.url, base, head)
            )
        code = main(["--diff", base, head, "--cache-dir", str(cache),
                     "--format", "json"])
        offline = json.loads(capsys.readouterr().out)
        assert code == 0
        for bucket in ("new", "resolved", "unresolved"):
            assert served[bucket] == offline[bucket]

    def test_triage_post_re_renders_and_survives_restart(
        self, tmp_path, sock_dir, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        cache = tmp_path / "cache"
        sock = os.path.join(sock_dir, "d.sock")
        with live_daemon(src, cache, sock) as (__, server):
            status, doc = get(server.url + "/reports")
            target = next(d for d in doc["reports"]
                          if d["function"] == "target_bug")
            status, __ = post(server.url + "/triage", {
                "kind": "hash", "key": target["hash"],
                "verdict": "false_positive", "reason": "triaged via api",
            })
            assert status == 200
            # The warm response cache was invalidated: the next query
            # re-renders without the suppressed report.
            status, doc = get(server.url + "/reports")
            assert "target_bug" not in doc["text"]
            assert "stable_bug" in doc["text"]

        # A fresh daemon over the same store: the decision held.
        sock2 = os.path.join(sock_dir, "d2.sock")
        with live_daemon(src, cache, sock2) as (__, server):
            status, doc = get(server.url + "/reports")
            assert "target_bug" not in doc["text"]
            assert "stable_bug" in doc["text"]
            status, doc = get(server.url + "/triage")
            assert [e["reason"] for e in doc["entries"]] == \
                ["triaged via api"]

    def test_unix_socket_and_http_clients_interleave(
        self, tmp_path, sock_dir, capsys
    ):
        # The promoted surface does not break the original one: socket
        # and HTTP clients hammer the daemon together.
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        sock = os.path.join(sock_dir, "d.sock")
        errors = []

        def http_client():
            try:
                for __ in range(3):
                    status, doc = get(server.url + "/reports")
                    assert status == 200 and doc["report_count"] == 2
            except Exception as err:  # pragma: no cover
                errors.append(err)

        def socket_client():
            try:
                for __ in range(3):
                    with DaemonClient(sock) as client:
                        response = client.request("analyze")
                    assert response["report_count"] == 2
            except Exception as err:  # pragma: no cover
                errors.append(err)

        with live_daemon(src, tmp_path / "cache", sock) as (__, server):
            threads = [threading.Thread(target=http_client)
                       for __ in range(2)]
            threads += [threading.Thread(target=socket_client)
                        for __ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not errors


class TestStandaloneMain:
    def test_main_needs_a_backend(self, capsys):
        with pytest.raises(SystemExit):
            from repro.driver.report_server import main as server_main

            server_main([])
