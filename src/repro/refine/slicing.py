"""Backward relevant-variable slicing over one function CFG.

The refinement evaluator does not need the whole function: only the
variables the report's anchors, the branch conditions along candidate
paths, and the report's own variable depend on.  ``relevant_variables``
computes that set as a fixpoint -- seed it with the identifiers the
report can observe, then close under data flow: whenever a statement
assigns a relevant variable, everything its right-hand side reads
becomes relevant too.

The evaluator then *skips* assignments whose target is irrelevant
(:meth:`repro.refine.domain.RefineState.assign_node`), which is sound
because an irrelevant variable is, by construction, never read by any
condition or anchor the verdict depends on.
"""

from repro.cfg.blocks import ReturnMarker
from repro.cfront import astnodes as ast
from repro.engine.falsepath import _base_variable


def _definition_edges(cfg):
    """``[(target_name, frozenset(rhs_names))]`` for every assignment
    (or ++/--) anywhere in the function."""
    edges = []
    for block in cfg.blocks:
        for item in block.items:
            if isinstance(item, (ast.VarDecl, ReturnMarker)):
                continue
            for node in item.walk():
                if isinstance(node, ast.Assign):
                    target = _base_variable(node.target)
                    if target is None:
                        continue
                    reads = set(ast.identifiers_in(node.value))
                    if node.op != "=":
                        reads |= ast.identifiers_in(node.target)
                    elif not isinstance(node.target, ast.Ident):
                        reads |= ast.identifiers_in(node.target)
                    edges.append((target, frozenset(reads)))
                elif isinstance(node, ast.Unary) and node.op in ("++", "--"):
                    target = _base_variable(node.operand)
                    if target is not None:
                        edges.append(
                            (target,
                             frozenset(ast.identifiers_in(node.operand)))
                        )
    return edges


def relevant_variables(cfg, anchor_lines, report_variable=None):
    """The variable names the refinement verdict can depend on.

    Seeds: the report's variable, every identifier in a branch/switch
    condition (candidate paths assume them), and every identifier in an
    item on an anchor line (the trace steps themselves).  Closure: if a
    statement assigns a relevant variable, its reads are relevant.
    """
    seed = set()
    if report_variable:
        seed.add(report_variable)
    anchor_set = set(anchor_lines)
    for block in cfg.blocks:
        if block.branch_cond is not None:
            seed |= ast.identifiers_in(block.branch_cond)
        if block.switch_cond is not None:
            seed |= ast.identifiers_in(block.switch_cond)
        for item in block.items:
            location = getattr(item, "location", None)
            if location is None or location.line not in anchor_set:
                continue
            if isinstance(item, ast.VarDecl):
                seed.add(item.name)
            elif isinstance(item, ReturnMarker):
                if item.expr is not None:
                    seed |= ast.identifiers_in(item.expr)
            else:
                seed |= ast.identifiers_in(item)
    edges = _definition_edges(cfg)
    changed = True
    while changed:
        changed = False
        for target, reads in edges:
            if target in seed and not (reads <= seed):
                seed |= reads
                changed = True
    return frozenset(seed)
