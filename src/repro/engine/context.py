"""The context object handed to C code actions (§3.2).

Actions can: report errors with the "why" attached, manipulate the
instance's data value, update the global state directly, annotate ASTs for
composed extensions, bump the statistical counters used by ranking, and
stop the current path (the path-kill idiom).
"""

from repro.cfront.unparse import unparse
from repro.engine.errors import ErrorReport


class StopPath(Exception):
    """Raised by ``ctx.stop_path()``: abandon the current execution path
    (the path-kill composition idiom, §3.2)."""


class ActionContext:
    """What a transition's action (or a callout) sees when it runs."""

    def __init__(self, engine, sm, point, bindings, instance=None):
        self.engine = engine
        self.sm = sm
        self.point = point
        self.bindings = bindings
        self.instance = instance

    # -- conveniences ----------------------------------------------------------

    @property
    def extension(self):
        return self.sm.extension

    @property
    def globals(self):
        """The per-extension user-global dictionary (metal's global C
        variables)."""
        return self.engine.user_globals(self.extension)

    @property
    def path_data(self):
        """Path-local storage; mutations revert when the DFS backtracks."""
        return self.sm.path_data

    @property
    def location(self):
        return getattr(self.point, "location", None)

    @property
    def function(self):
        return self.engine.current_function_name()

    def binding(self, name):
        return self.bindings.get(name)

    def identifier(self, name):
        """Source text of a binding (mc_identifier in metal)."""
        node = self.bindings.get(name)
        if node is None:
            return "<unbound %s>" % name
        if isinstance(node, list):
            return ", ".join(unparse(n) for n in node)
        return unparse(node)

    # -- error reporting ----------------------------------------------------------

    def err(self, fmt, *args, severity=None, rule_id=None):
        """Report a rule violation.

        Ranking inputs (distance, conditionals crossed, synonym chain,
        call-chain length) are filled in from the triggering instance and
        the engine's current path.
        """
        message = fmt % args if args else fmt
        inst = self.instance
        report = ErrorReport(
            checker=self.extension.name,
            message=message,
            location=self.location,
            function=self.function,
            origin_location=inst.origin_location if inst else None,
            conditionals=inst.conditionals_crossed if inst else 0,
            synonym_chain=inst.synonym_chain if inst else 0,
            call_chain=self.engine.call_depth(),
            severity=severity or self.extension.default_severity,
            rule_id=rule_id,
            variable=unparse(inst.obj) if inst else None,
            trace=inst.history if inst else None,
        )
        added = self.engine.log.add(report)
        if added is not None and rule_id is not None:
            self.engine.log.count_violation(rule_id, self.location)
        return report

    # -- instance data values (§3.1: "a C structure of arbitrary size") -------------

    def get_data(self, key, default=None):
        if self.instance is None:
            return default
        return self.instance.data.get(key, default)

    def set_data(self, key, value):
        if self.instance is None:
            raise ValueError("no instance to attach data to")
        self.instance.data[key] = value

    # -- direct state manipulation ("xgcc's internal interface", §3.2) --------------

    def set_global_state(self, value):
        self.sm.gstate = value

    def set_instance_state(self, value):
        """Transition the triggering instance directly; assigning ``stop``
        removes its SM like an ordinary stop transition would."""
        if self.instance is None:
            return
        from repro.metal.sm import STOP
        from repro.engine.synonyms import mirror_transition

        if value == STOP:
            mirror_transition(self.sm, self.instance, STOP)
            self.sm.remove(self.instance)
        else:
            self.instance.value = value
            mirror_transition(self.sm, self.instance, value, self.instance.data)

    # -- composition (AST annotations, §3.2) ----------------------------------------

    def annotate(self, node, key, value):
        self.engine.annotations.put(node, key, value)

    def annotation(self, node, key, default=None):
        return self.engine.annotations.get(node, key, default)

    # -- statistical counters (§9) ----------------------------------------------------

    def count_example(self, rule_id, site=None):
        self.engine.log.count_example(rule_id, site or self.location)

    def count_violation(self, rule_id, site=None):
        self.engine.log.count_violation(rule_id, site or self.location)

    # -- control ------------------------------------------------------------------------

    def stop_path(self):
        """Abandon the current path (path-kill)."""
        raise StopPath()
