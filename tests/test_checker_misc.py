"""Tests for the null, mallocfail, interrupt, security, format-string,
and range checkers."""

from conftest import messages, run_checker

from repro.checkers import (
    format_string_checker,
    interrupt_checker,
    malloc_fail_checker,
    null_checker,
    range_check_checker,
    user_pointer_checker,
)


class TestNullChecker:
    def test_checked_pointer_is_safe(self):
        code = (
            "int f(int n) {\n"
            "    int *p = kmalloc(n);\n"
            "    if (!p)\n"
            "        return -1;\n"
            "    return *p;\n"
            "}\n"
        )
        assert messages(run_checker(code, null_checker())) == []

    def test_unchecked_deref(self):
        code = "int f(int n) { int *p = kmalloc(n); return *p; }"
        result = run_checker(code, null_checker())
        assert any("may be NULL" in m for m in messages(result))

    def test_deref_on_null_path(self):
        code = (
            "int f(int n) {\n"
            "    int *p = kmalloc(n);\n"
            "    if (p)\n"
            "        return 0;\n"
            "    return *p;\n"
            "}\n"
        )
        result = run_checker(code, null_checker())
        assert any("IS NULL" in m for m in messages(result))

    def test_synonym_check_transfers(self):
        # §8's synonym example: checking p also checks q.
        code = (
            "int f(int n) {\n"
            "    int *p, *q;\n"
            "    p = q = kmalloc(n);\n"
            "    if (!p)\n"
            "        return 0;\n"
            "    return *q;\n"
            "}\n"
        )
        assert messages(run_checker(code, null_checker())) == []

    def test_eq_zero_check(self):
        code = (
            "int f(int n) {\n"
            "    int *p = kmalloc(n);\n"
            "    if (p == 0)\n"
            "        return -1;\n"
            "    return *p;\n"
            "}\n"
        )
        assert messages(run_checker(code, null_checker())) == []


class TestMallocFail:
    def test_unchecked(self):
        code = "int f(int n) { int *p = kmalloc(n); *p = 1; return 0; }"
        result = run_checker(code, malloc_fail_checker())
        assert any("without a NULL check" in m for m in messages(result))

    def test_checked(self):
        code = (
            "int f(int n) { int *p = kmalloc(n); if (!p) return -1;"
            " *p = 1; return 0; }"
        )
        assert messages(run_checker(code, malloc_fail_checker())) == []

    def test_severity_is_minor(self):
        # §9 ranks allocation failures lowest.
        code = "int f(int n) { int *p = kmalloc(n); *p = 1; return 0; }"
        result = run_checker(code, malloc_fail_checker())
        assert result.reports[0].severity == "MINOR"


class TestInterrupts:
    def test_clean_pairing(self):
        code = "int f(void) { cli(); sti(); return 0; }"
        assert messages(run_checker(code, interrupt_checker())) == []

    def test_double_disable(self):
        code = "int f(void) { cli(); cli(); sti(); return 0; }"
        result = run_checker(code, interrupt_checker())
        assert any("twice" in m for m in messages(result))

    def test_stray_enable(self):
        code = "int f(void) { sti(); return 0; }"
        result = run_checker(code, interrupt_checker())
        assert any("already enabled" in m for m in messages(result))

    def test_exit_disabled(self):
        code = "int f(void) { cli(); return 0; }"
        result = run_checker(code, interrupt_checker())
        assert any("ends with interrupts disabled" in m for m in messages(result))

    def test_branch_dependent_state(self):
        # disabled only on one path: the bad path is found, the good one
        # is clean.
        code = (
            "int f(int c) {\n"
            "    cli();\n"
            "    if (c) {\n"
            "        sti();\n"
            "        return 1;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, interrupt_checker())
        assert messages(result) == ["path ends with interrupts disabled!"]


class TestUserPointer:
    def test_deref_tainted(self):
        code = "int f(int c) { char *p = get_user_ptr(c); *p = 1; return 0; }"
        result = run_checker(code, user_pointer_checker())
        assert len(result.reports) == 1
        assert result.reports[0].severity == "SECURITY"

    def test_sanitized_is_clean(self):
        code = (
            "int f(int c) { char b[8]; char *p = get_user_ptr(c);"
            " copy_from_user(b, p, 8); return 0; }"
        )
        assert messages(run_checker(code, user_pointer_checker())) == []

    def test_taint_flows_through_call(self):
        code = (
            "int use(char *q) { return *q; }\n"
            "int f(int c) { char *p = get_user_ptr(c); return use(p); }\n"
        )
        result = run_checker(code, user_pointer_checker())
        assert len(result.reports) == 1


class TestFormatString:
    def test_non_literal_format(self):
        code = "int f(char *s) { printf(s); return 0; }"
        result = run_checker(code, format_string_checker())
        assert any("non-literal" in m for m in messages(result))

    def test_literal_format_ok(self):
        code = 'int f(int x) { printf("%d", x); return 0; }'
        assert messages(run_checker(code, format_string_checker())) == []

    def test_tainted_format(self):
        code = (
            "int f(int c) { char *s = get_user_str(c); printf(s); return 0; }"
        )
        result = run_checker(code, format_string_checker())
        assert any("user-controlled" in m for m in messages(result))

    def test_format_position_by_family(self):
        code = 'int f(char *s) { fprintf(stderr, "ok"); sprintf(s, "ok"); return 0; }'
        assert not any(
            "non-literal" in m
            for m in messages(run_checker(code, format_string_checker()))
        )


class TestRangeChecker:
    def test_unchecked_index(self):
        code = (
            "int f(int c) { int t[8]; int i = get_user_int(c);"
            " t[i] = 1; return 0; }"
        )
        result = run_checker(code, range_check_checker())
        assert len(result.reports) == 1
        assert result.reports[0].severity == "SECURITY"

    def test_upper_bound_check(self):
        code = (
            "int f(int c) { int t[8]; int i = get_user_int(c);\n"
            " if (i < 8)\n"
            "     t[i] = 1;\n"
            " return 0; }"
        )
        assert messages(run_checker(code, range_check_checker())) == []

    def test_ge_early_return_idiom(self):
        code = (
            "int f(int c) { int t[8]; int i = get_user_int(c);\n"
            " if (i >= 8)\n"
            "     return -1;\n"
            " t[i] = 1;\n"
            " return 0; }"
        )
        assert messages(run_checker(code, range_check_checker())) == []

    def test_index_still_tainted_on_unchecked_path(self):
        code = (
            "int f(int c) { int t[8]; int i = get_user_int(c);\n"
            " if (i < 8) {\n"
            "     t[i] = 1;\n"
            " }\n"
            " t[i] = 2;\n"  # unchecked on the other path
            " return 0; }"
        )
        result = run_checker(code, range_check_checker())
        assert len(result.reports) == 1
