"""Format-string checker.

Two rules in one extension:

* *stateless*: calling a printf-family function with a non-literal format
  string (the "%n" attack surface) -- a pure pattern+callout rule;
* *taint-flow*: a string obtained from the user reaching a format
  position, via a variable-specific state machine.
"""

from repro.cfront import astnodes as ast
from repro.metal import ANY_ARGUMENTS, ANY_FN_CALL, ANY_POINTER, Extension
from repro.metal.patterns import AndPattern, Callout

PRINTF_FAMILY = {
    "printf": 0,
    "fprintf": 1,
    "sprintf": 1,
    "snprintf": 2,
    "printk": 0,
    "syslog": 1,
}


def format_string_checker(taint_sources=("get_user_str", "read_user_string")):
    ext = Extension("format_string_checker")
    ext.state_var("v", ANY_POINTER)
    ext.decl("fn", ANY_FN_CALL)
    ext.decl("args", ANY_ARGUMENTS)
    ext.default_severity = "SECURITY"

    for fn in taint_sources:
        ext.transition("start", "{ v = %s(args) }" % fn, to="v.user_string")

    # Stateless rule: non-literal format argument.
    non_literal = AndPattern(
        ext._compile_pattern_text("{ fn(args) }"),
        Callout(_non_literal_format, "format argument is not a literal"),
    )
    ext.transition(
        "start",
        non_literal,
        action=lambda ctx: ctx.err(
            "non-literal format string in call to %s",
            _callee(ctx),
            severity="ERROR",
            rule_id="format-literal",
        ),
    )

    # Taint rule: the user string reaches a format position.
    tainted_fmt = Callout(_make_tainted_format(), "user string used as format")
    ext.transition(
        "v.user_string",
        tainted_fmt,
        to="v.stop",
        action=lambda ctx: ctx.err(
            "user-controlled string %s used as format string!",
            ctx.identifier("v"),
            severity="SECURITY",
            rule_id="format-taint",
        ),
    )
    return ext


def _callee(ctx):
    node = ctx.binding("fn")
    if isinstance(node, ast.Ident):
        return node.name
    return "<indirect>"


def _format_argument(call):
    name = call.callee_name()
    index = PRINTF_FAMILY.get(name)
    if index is None or index >= len(call.args):
        return None
    return call.args[index]


def _non_literal_format(context):
    point = context.point
    if not isinstance(point, ast.Call):
        return False
    fmt = _format_argument(point)
    if fmt is None:
        return False
    return not isinstance(fmt, ast.StringLit)


def _make_tainted_format():
    def check(context):
        point = context.point
        obj = context.bindings.get("v")
        if not isinstance(point, ast.Call) or obj is None:
            return False
        fmt = _format_argument(point)
        if fmt is None:
            return False
        return ast.structurally_equal(fmt, obj)

    return check
