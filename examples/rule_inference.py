#!/usr/bin/env python
"""Statistical rule inference: "bugs as deviant behavior" (§3.2, §9).

Nobody told the tool that ``dma_map`` must be paired with ``dma_unmap`` --
it infers the rule from the code base itself (most code does it right),
ranks candidate rules with the z-statistic, then turns the best ones into
checkers and reports the deviants.

Run:  python examples/rule_inference.py
"""

from repro.cfront.parser import parse
from repro.cfg import CallGraph
from repro.checkers import infer_pairs, make_pair_checker
from repro.engine import Analysis

# A small "driver code base": most functions follow the dma_map/dma_unmap
# and get_page/put_page disciplines; a couple forget. The irq_save /
# counter_bump pair below is NOT a real rule (counter_bump is incidental),
# and the z-ranking keeps it below the real ones.
SOURCE = """
struct dev { int id; };

int xmit_a(struct dev *d) { dma_map(d); send(d); dma_unmap(d); return 0; }
int xmit_b(struct dev *d) { dma_map(d); send(d); send(d); dma_unmap(d); return 0; }
int xmit_c(struct dev *d) { dma_map(d); send(d); dma_unmap(d); return 0; }
int xmit_d(struct dev *d) { dma_map(d); send(d); dma_unmap(d); return 0; }
int xmit_bad(struct dev *d) { dma_map(d); send(d); return 0; }

int page_a(struct dev *d) { get_page(d); touch(d); put_page(d); return 0; }
int page_b(struct dev *d) { get_page(d); put_page(d); return 0; }
int page_c(struct dev *d) { get_page(d); touch(d); put_page(d); return 0; }
int page_bad(struct dev *d, int e) {
    get_page(d);
    if (e)
        return -1;
    put_page(d);
    return 0;
}

int misc_a(struct dev *d) { irq_save(d); counter_bump(d); irq_restore(d); return 0; }
int misc_b(struct dev *d) { irq_save(d); irq_restore(d); return 0; }
int misc_c(struct dev *d) { irq_save(d); irq_restore(d); counter_bump(d); return 0; }
"""


def main():
    unit = parse(SOURCE, "drivers.c")
    callgraph = CallGraph.from_units([unit])

    print("== inferred pairing rules (z-ranked) ==")
    pairs = infer_pairs(callgraph, min_examples=2)
    interesting = [p for p in pairs if p.z_score > 0][:8]
    for pair in interesting:
        print(
            "  %-12s -> %-12s  followed %d, violated %d, z = %5.2f"
            % (pair.first, pair.second, pair.examples, pair.counterexamples,
               pair.z_score)
        )

    print("\n== checking the top rules ==")
    strong = [p for p in pairs if p.z_score >= 1.0 and p.counterexamples > 0]
    for pair in strong:
        checker = make_pair_checker(pair.first, pair.second)
        result = Analysis([parse(SOURCE, "drivers.c")]).run(checker)
        for report in result.reports:
            print("  %s (rule inferred with z=%.2f)"
                  % (report.format(), pair.z_score))

    deviants = set()
    for pair in strong:
        checker = make_pair_checker(pair.first, pair.second)
        result = Analysis([parse(SOURCE, "drivers.c")]).run(checker)
        deviants |= {r.function for r in result.reports}
    assert "xmit_bad" in deviants and "page_bad" in deviants

    # The other inference families work the same way:
    from repro.checkers import report_deviant_sites

    ret_code = (
        "int open_dev(int n);\n"
        + "\n".join(
            "int u%d(int n) { if (open_dev(n) < 0) return -1; return 0; }" % i
            for i in range(4)
        )
        + "\nint sloppy(int n) { open_dev(n); return 0; }\n"
    )
    retcheck = report_deviant_sites(CallGraph.from_units([parse(ret_code, "r.c")]))
    print("\n== must-check-result inference ==")
    for report in retcheck:
        print("  " + report.format())
    assert [r.function for r in retcheck] == ["sloppy"]

    print("\nfound the deviant functions without any hand-written rule.")


if __name__ == "__main__":
    main()
