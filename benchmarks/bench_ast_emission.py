"""§6 pass-1 claim: emitted AST files "are typically four or five times
larger than the text representation."

We measure the pickle-serialized AST size against the source text for
generated modules of several sizes.
"""

from repro.codegen import generate_kernel_module
from repro.driver.project import Project


def measure(n_functions, seed=1):
    workload = generate_kernel_module(seed=seed, n_functions=n_functions,
                                      bug_rate=0.3)
    project = Project()
    compiled = project.compile_text(workload.source, "gen.c")
    return compiled


def test_ast_emission_ratio(benchmark):
    compiled = benchmark(measure, 40)
    print("\nAST emission size (pass 1, §6):")
    for n in (10, 40, 120):
        c = measure(n)
        print(
            "  %3d functions: %6d bytes source -> %7d bytes AST (%.1fx)"
            % (n, c.source_bytes, c.emitted_bytes, c.expansion_ratio)
        )
    # "typically four or five times larger" -- ours lands in the same
    # region (a pickle is not GCC's format; assert the order of magnitude).
    assert 2.0 <= compiled.expansion_ratio <= 20.0


def test_pass2_roundtrip(benchmark, tmp_path):
    import os

    workload = generate_kernel_module(seed=9, n_functions=25, bug_rate=0.5)
    emit_dir = str(tmp_path / "asts")
    pass1 = Project(emit_dir=emit_dir)
    pass1.compile_text(workload.source, "gen.c")

    def pass2():
        project = Project()
        project.load_emitted(os.path.join(emit_dir, "gen.c.ast"))
        return project

    project = benchmark(pass2)
    # >= : some idioms (interproc-uaf) emit a helper function besides the
    # named one.
    assert len(project.callgraph.functions) >= 25
    assert set(workload.function_names) <= set(project.callgraph.functions)

    # the reassembled ASTs analyze identically to the originals
    from repro.checkers import free_checker

    direct = pass1.run(free_checker(("kfree",)))
    reloaded = project.run(free_checker(("kfree",)))
    assert sorted(r.message for r in direct.reports) == sorted(
        r.message for r in reloaded.reports
    )
    print("\npass-2 reassembly: %d functions, identical analysis results"
          % len(project.callgraph.functions))
