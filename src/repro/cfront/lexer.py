"""A C tokenizer.

Covers the token set of C89 plus the C99 additions the parser understands
(``//`` comments, ``inline``, ``restrict``, ``_Bool``).  The lexer is shared
by three clients: the preprocessor (which works on raw token lines), the
parser, and the metal pattern compiler (which extends the identifier space
with hole variables).
"""

import enum
from dataclasses import dataclass, field

from repro.cfront.source import LexError, Location


class TokenKind(enum.Enum):
    """Lexical categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT_CONST = "int"
    FLOAT_CONST = "float"
    CHAR_CONST = "char"
    STRING = "string"
    PUNCT = "punct"
    NEWLINE = "newline"  # only emitted in preprocessor mode
    HASH = "hash"  # '#' at the start of a directive (preprocessor mode)
    EOF = "eof"


KEYWORDS = frozenset(
    """
    auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    _Bool
    """.split()
)

# Punctuators ordered longest-first so maximal munch is a simple scan.
PUNCTUATORS = (
    "...",
    "<<=",
    ">>=",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "^=",
    "|=",
    "##",
    "[",
    "]",
    "(",
    ")",
    "{",
    "}",
    ".",
    "&",
    "*",
    "+",
    "-",
    "~",
    "!",
    "/",
    "%",
    "<",
    ">",
    "^",
    "|",
    "?",
    ":",
    ";",
    "=",
    ",",
    "#",
    "$",  # used by metal callout syntax ${...} and $end_of_path$
    "@",
)

_SIMPLE_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


@dataclass
class Token:
    """A single lexical token.

    ``value`` is the exact source spelling; semantic values (e.g. the integer
    a constant denotes) are computed lazily by the parser.
    """

    kind: TokenKind
    value: str
    location: Location = field(default_factory=Location)
    # True when whitespace preceded the token; the preprocessor needs this to
    # stringize correctly and to tell function-like macro invocations apart.
    preceded_by_space: bool = False

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind.name, self.value)

    def is_punct(self, *values):
        return self.kind is TokenKind.PUNCT and self.value in values

    def is_keyword(self, *values):
        return self.kind is TokenKind.KEYWORD and self.value in values

    def is_ident(self, *values):
        if self.kind is not TokenKind.IDENT:
            return False
        return not values or self.value in values


class Lexer:
    """Converts C source text into a list of :class:`Token`.

    In preprocessor mode (``emit_newlines=True``) the lexer also emits
    NEWLINE tokens and marks a ``#`` that begins a directive line as HASH, so
    the preprocessor can recover line structure.
    """

    def __init__(self, text, filename="<string>", emit_newlines=False):
        self.text = text
        self.filename = filename
        self.emit_newlines = emit_newlines
        self.pos = 0
        self.line = 1
        self.column = 1
        self._at_line_start = True

    def location(self):
        return Location(self.filename, self.line, self.column)

    def tokens(self):
        """Tokenize the whole input, ending with a single EOF token."""
        out = []
        while True:
            token = self.next_token()
            out.append(token)
            if token.kind is TokenKind.EOF:
                return out

    # -- character helpers -------------------------------------------------

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos >= len(self.text):
                return
            char = self.text[self.pos]
            self.pos += 1
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1

    def _skip_whitespace_and_comments(self):
        """Skip spaces and comments; return (saw_space, saw_newline)."""
        saw_space = False
        saw_newline = False
        while self.pos < len(self.text):
            char = self._peek()
            if char == "\\" and self._peek(1) == "\n":
                # Line continuation: splice.
                self._advance(2)
                saw_space = True
            elif char == "\n":
                if self.emit_newlines:
                    return saw_space, True
                saw_newline = True
                saw_space = True
                self._advance()
            elif char in " \t\r\f\v":
                saw_space = True
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
                saw_space = True
            elif char == "/" and self._peek(1) == "*":
                start = self.location()
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start)
                saw_space = True
            else:
                break
        return saw_space, saw_newline

    # -- token scanners ----------------------------------------------------

    def next_token(self):
        saw_space, _ = self._skip_whitespace_and_comments()
        location = self.location()

        if self.emit_newlines and self._peek() == "\n":
            self._advance()
            self._at_line_start = True
            return Token(TokenKind.NEWLINE, "\n", location, saw_space)

        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", location, saw_space)

        char = self._peek()
        at_line_start = self._at_line_start
        self._at_line_start = False

        if char.isalpha() or char == "_":
            return self._lex_identifier(location, saw_space)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(location, saw_space)
        if char == '"':
            return self._lex_string(location, saw_space)
        if char == "'":
            return self._lex_char(location, saw_space)
        if char == "#" and at_line_start and self.emit_newlines:
            self._advance()
            return Token(TokenKind.HASH, "#", location, saw_space)
        return self._lex_punct(location, saw_space)

    def _lex_identifier(self, location, saw_space):
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        name = self.text[start : self.pos]
        kind = TokenKind.KEYWORD if name in KEYWORDS else TokenKind.IDENT
        return Token(kind, name, location, saw_space)

    def _lex_number(self, location, saw_space):
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() and self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) and self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        # Suffixes: integer (u/l combinations) or float (f/l).
        # (note: _peek() returns "" at EOF, and "" is "in" any string, so
        # every suffix check must also require a nonempty peek)
        if is_float:
            while self._peek() and self._peek() in "fFlL":
                self._advance()
        else:
            while self._peek() and self._peek() in "uUlL":
                self._advance()
        text = self.text[start : self.pos]
        kind = TokenKind.FLOAT_CONST if is_float else TokenKind.INT_CONST
        return Token(kind, text, location, saw_space)

    def _lex_string(self, location, saw_space):
        start = self.pos
        self._advance()  # opening quote
        while True:
            if self.pos >= len(self.text) or self._peek() == "\n":
                raise LexError("unterminated string literal", location)
            char = self._peek()
            if char == "\\":
                self._advance(2)
            elif char == '"':
                self._advance()
                break
            else:
                self._advance()
        return Token(TokenKind.STRING, self.text[start : self.pos], location, saw_space)

    def _lex_char(self, location, saw_space):
        start = self.pos
        self._advance()  # opening quote
        while True:
            if self.pos >= len(self.text) or self._peek() == "\n":
                raise LexError("unterminated character constant", location)
            char = self._peek()
            if char == "\\":
                self._advance(2)
            elif char == "'":
                self._advance()
                break
            else:
                self._advance()
        return Token(TokenKind.CHAR_CONST, self.text[start : self.pos], location, saw_space)

    def _lex_punct(self, location, saw_space):
        for punct in PUNCTUATORS:
            if self.text.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, location, saw_space)
        raise LexError("unexpected character %r" % self._peek(), location)


def tokenize(text, filename="<string>"):
    """Tokenize ``text`` (without preprocessing); returns tokens incl. EOF."""
    return Lexer(text, filename).tokens()


def parse_string_literal(spelling):
    """Decode the spelling of a C string literal into its value."""
    assert spelling.startswith('"') and spelling.endswith('"')
    return _decode_escapes(spelling[1:-1])


def parse_char_constant(spelling):
    """Decode a character constant spelling into its integer value."""
    assert spelling.startswith("'") and spelling.endswith("'")
    body = _decode_escapes(spelling[1:-1])
    if not body:
        raise ValueError("empty character constant")
    return ord(body[0])


def _decode_escapes(body):
    out = []
    index = 0
    while index < len(body):
        char = body[index]
        if char != "\\":
            out.append(char)
            index += 1
            continue
        index += 1
        escape = body[index] if index < len(body) else ""
        if escape == "x":
            index += 1
            start = index
            while index < len(body) and body[index] in "0123456789abcdefABCDEF":
                index += 1
            out.append(chr(int(body[start:index] or "0", 16)))
        elif escape.isdigit():
            start = index
            while index < len(body) and body[index].isdigit() and index - start < 3:
                index += 1
            out.append(chr(int(body[start:index], 8)))
        else:
            out.append(_SIMPLE_ESCAPES.get(escape, escape))
            index += 1
    return "".join(out)


def parse_int_constant(spelling):
    """Decode an integer constant spelling (handles 0x, octal, suffixes)."""
    text = spelling.rstrip("uUlL")
    if text.lower().startswith("0x"):
        return int(text, 16)
    if text.startswith("0") and len(text) > 1:
        return int(text, 8)
    return int(text)
