"""§5.2 caching and independence claims.

Three series:

1. *Block caching*: n sequential diamonds -- 2^n paths uncached vs O(n)
   program points cached.
2. *Independence*: k tracked instances -- linear growth in work ("With
   independence, this number scales linearly with the number of these
   instances"), vs the exponential blowup the paper says the naive
   product construction would suffer.
3. *Function summaries*: a call chain with several callsites per level --
   summary cache hits keep the work near-linear in depth.
"""

from repro.cfront.parser import parse
from repro.checkers import free_checker
from repro.codegen.scaling import (
    call_chain_module,
    diamond_function,
    tracked_objects_function,
)
from repro.engine.analysis import Analysis, AnalysisOptions

HEADER = "struct device { int flags; int count; int lck; char *buf; };\n"


def points_for(code, caching=True, max_steps=3_000_000):
    unit = parse(code, "scale.c")
    options = AnalysisOptions(caching=caching, max_steps=max_steps)
    analysis = Analysis([unit], options)
    analysis.run(free_checker())
    return analysis.stats["points_visited"]


def test_block_caching_beats_path_enumeration(benchmark):
    code = HEADER + diamond_function(12)

    cached_points = points_for(code, caching=True)
    uncached_points = points_for(code, caching=False)

    print("\n12-diamond function (2^12 = 4096 paths):")
    print("  cached:   %7d points visited" % cached_points)
    print("  uncached: %7d points visited" % uncached_points)
    print("  speedup:  %7.0fx" % (uncached_points / cached_points))

    assert cached_points < 400
    assert uncached_points > 50 * cached_points

    benchmark(points_for, code, True)


def test_caching_scaling_series(benchmark):
    print("\npoints visited vs diamond count:")
    print("  %-10s %-12s %-12s" % ("diamonds", "cached", "uncached"))
    series = []
    for n in (4, 6, 8, 10):
        cached = points_for(HEADER + diamond_function(n), caching=True)
        uncached = points_for(HEADER + diamond_function(n), caching=False)
        series.append((n, cached, uncached))
        print("  %-10d %-12d %-12d" % (n, cached, uncached))
    # cached grows linearly (ratio ~ n), uncached doubles per diamond
    assert series[-1][1] < series[0][1] * 6
    assert series[-1][2] > series[0][2] * 30
    benchmark(points_for, HEADER + diamond_function(10), True)


def test_independence_linear_in_instances(benchmark):
    print("\npoints visited vs tracked instances k (independence, §5.2):")
    series = []
    for k in (2, 4, 8, 16, 32):
        code = HEADER + tracked_objects_function(k, with_diamonds=3)
        points = points_for(code)
        series.append((k, points))
        print("  k=%-4d %d points" % (k, points))
    # Doubling k from 8->16 and 16->32 must grow work by < 4x each time
    # (linear-ish, not exponential).
    assert series[3][1] < series[2][1] * 4
    assert series[4][1] < series[3][1] * 4
    benchmark(points_for, HEADER + tracked_objects_function(16, with_diamonds=3))


def test_function_summary_caching(benchmark):
    code = call_chain_module(depth=7, callsites_per_level=3)

    def run():
        unit = parse(code, "chain.c")
        analysis = Analysis([unit])
        analysis.run(free_checker())
        return analysis.stats

    stats = benchmark(run)
    print("\ncall chain depth 7, 3 callsites/level "
          "(3^6 = 729 interprocedural paths):")
    print("  calls followed:      %d" % stats["calls_followed"])
    print("  function cache hits: %d" % stats["function_cache_hits"])
    print("  points visited:      %d" % stats["points_visited"])
    # each level analyzed once; the other callsites hit the summary cache
    assert stats["calls_followed"] <= 7
    assert stats["function_cache_hits"] >= 10
    assert stats["points_visited"] < 2000
