"""The path-kill extension (§3.2, composition).

"One common use of composition is the path-kill extension, which flags
all calls to panic so that subsequent analyses will not report errors on
paths dominated by these calls.  When a subsequent extension sees a
flagged function call, it stops traversing the current path."

Run this extension first; it annotates every call to a terminating
function with ``pathkill`` and kills its own path there too.  The engine
honours the annotation for every later extension run in the same
:class:`repro.engine.Analysis`.
"""

from repro.cfront import astnodes as ast
from repro.metal import ANY_ARGUMENTS, ANY_FN_CALL, Extension
from repro.metal.patterns import AndPattern, Callout

DEFAULT_TERMINATORS = ("panic", "BUG", "do_exit", "die", "assert_fail")


def path_kill_extension(terminators=DEFAULT_TERMINATORS):
    ext = Extension("path_kill")
    ext.decl("fn", ANY_FN_CALL)
    ext.decl("args", ANY_ARGUMENTS)

    terminator_set = frozenset(terminators)

    def is_terminator(context):
        node = context.bindings.get("fn")
        return isinstance(node, ast.Ident) and node.name in terminator_set

    def flag_and_kill(ctx):
        ctx.annotate(ctx.point, "pathkill", True)
        ctx.stop_path()

    pattern = AndPattern(
        ext._compile_pattern_text("{ fn(args) }"),
        Callout(is_terminator, "call to a terminating function"),
    )
    ext.transition("start", pattern, action=flag_and_kill)
    return ext


def error_path_annotator(error_returns=(-1,)):
    """The §9 severity annotator: marks paths that return an error code
    with the ERROR annotation, so composed checkers can rank errors on
    error paths higher ("error paths are less tested").

    Annotates the enclosing return statement's value node; checkers query
    ``ctx.annotation(node, "onpath")``.
    """
    ext = Extension("error_path_annotator")
    codes = set(error_returns)

    def mark(ctx):
        ctx.annotate(ctx.point, "onpath", "ERROR")

    def is_error_return(context):
        point = context.point
        from repro.cfg.blocks import ReturnMarker

        if not isinstance(point, ReturnMarker) or point.expr is None:
            return False
        expr = point.expr
        if isinstance(expr, ast.Unary) and expr.op == "-" and isinstance(
            expr.operand, ast.IntLit
        ):
            return -expr.operand.value in codes
        if isinstance(expr, ast.IntLit):
            return expr.value in codes
        return False

    ext.transition("start", Callout(is_error_return, "returns an error code"),
                   action=mark)
    return ext
