"""Multi-module project generator tests, plus the relax-walk regression
the generator's cross-path flows exposed."""

from repro.cfront.parser import parse
from repro.codegen.project_gen import (
    default_checkers,
    generate_project,
    score_project,
)
from repro.engine.analysis import Analysis, AnalysisOptions
from repro.checkers import free_checker


class TestGeneratedProject:
    def test_deterministic(self):
        a = generate_project(seed=3)
        b = generate_project(seed=3)
        assert a.files == b.files
        assert a.bugs == b.bugs

    def test_structure(self):
        gen = generate_project(seed=1, n_modules=3, functions_per_module=7)
        assert "shared.h" in gen.files
        assert sum(1 for n in gen.files if n.endswith(".c")) == 3

    def test_compiles_with_in_memory_header(self):
        gen = generate_project(seed=2, n_modules=2, functions_per_module=6)
        project = gen.make_project()
        assert len(project.callgraph.functions) >= 12

    def test_statics_per_module(self):
        gen = generate_project(seed=2, n_modules=3)
        project = gen.make_project()
        assert project.static_vars["m0_uses"] == "module_0.c"
        assert project.static_vars["m2_uses"] == "module_2.c"

    def test_cross_module_call_chain(self):
        gen = generate_project(seed=2, n_modules=3)
        project = gen.make_project()
        callgraph = project.callgraph
        assert "m1_entry" in callgraph.callees["m0_entry"]
        assert "m2_entry" in callgraph.callees["m1_entry"]

    def test_full_audit_scores_clean(self):
        gen = generate_project(seed=7, n_modules=4, functions_per_module=10,
                               bug_rate=0.4)
        project = gen.make_project()
        result = project.run(default_checkers())
        hits, injected, false_positives = score_project(gen, result.reports)
        assert hits == injected
        assert false_positives == []


class TestRelaxSharedTailRegression:
    """Two paths share their tail blocks; the second path's relax walk
    must keep propagating even where the shared tail already has suffix
    edges (a real bug found by the interprocedural property test)."""

    CODE = (
        "int callee(int *p0, int c0) {\n"
        "    if (c0) {\n"
        "        kfree(p0);\n"
        "        kfree(p0);\n"
        "    } else {\n"
        "        use(p0);\n"
        "    }\n"
        "    return 0;\n"
        "}\n"
        "int caller(int *p0, int c0) {\n"
        "    kfree(p0);\n"
        "    callee(p0, c0);\n"
        "    kfree(p0);\n"
        "    return 0;\n"
        "}\n"
    )

    def summary_rows(self, caching):
        analysis = Analysis(
            [parse(self.CODE, "r.c")],
            AnalysisOptions(caching=caching, false_path_pruning=False),
        )
        table = analysis.run_one(free_checker())
        entry = analysis._cfg("callee").entry
        return sorted(
            e.describe() for e in table.get(entry).suffix if not e.is_global_only
        )

    def test_identity_edge_survives_shared_tail(self):
        rows = self.summary_rows(caching=False)
        assert "(start,v:p0->freed) --> (start,v:p0->freed)" in rows

    def test_cached_and_uncached_summaries_agree(self):
        assert self.summary_rows(caching=True) == self.summary_rows(caching=False)

    def test_reports_agree(self):
        def reports(caching):
            result = Analysis(
                [parse(self.CODE, "r.c")],
                AnalysisOptions(caching=caching, false_path_pruning=False),
            ).run(free_checker())
            return sorted(
                (r.message, r.location.line, r.location.column)
                for r in result.reports
            )

        assert reports(True) == reports(False)
