#!/usr/bin/env python
"""Lock-discipline audit of a generated kernel module, with ranking.

The scenario the paper's evaluation lived in: a big pile of kernel-style
code, a lock checker, and more reports than anyone wants to read -- so the
§9 ranking machinery orders them: severity classes first, then the generic
distance/conditional criteria, and a statistical view of which rules (and
which functions) to trust.

Run:  python examples/kernel_lock_audit.py [seed]
"""

import sys

from repro.checkers import free_checker, lock_checker, malloc_fail_checker
from repro.codegen import generate_kernel_module
from repro.driver.project import Project
from repro.ranking import stratify
from repro.ranking.generic import difficulty_score
from repro.ranking.statistical import rule_reliability_table


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2002
    workload = generate_kernel_module(seed=seed, n_functions=42, bug_rate=0.45)
    print("generated module: %d functions, %d injected bugs (seed=%d)\n"
          % (len(workload.function_names), len(workload.bugs), seed))

    project = Project()
    project.compile_text(workload.source, "module.c")
    result = project.run(
        [
            lock_checker(),
            free_checker(("kfree", "vfree")),
            malloc_fail_checker(),
        ]
    )

    ranked = stratify(result.reports)
    print("== ranked reports (inspect top-down) ==")
    for index, report in enumerate(ranked, 1):
        marker = "*" if any(b.function == report.function for b in workload.bugs) else " "
        print(
            "%2d.%s [%-8s] %-28s %s (difficulty %d)"
            % (
                index,
                marker,
                report.severity or "plain",
                report.function,
                report.message,
                difficulty_score(report),
            )
        )

    print("\n== rule reliability (z-statistic, §9) ==")
    for rule_id, examples, violations, z in rule_reliability_table(result.log):
        print(
            "  %-14s followed %3d times, violated %2d  ->  z = %5.2f"
            % (rule_id, examples, violations, z)
        )

    injected = {b.function for b in workload.bugs}
    found = {r.function for r in result.reports}
    checkable = {
        b.function
        for b in workload.bugs
        if b.kind in ("missing-unlock", "double-lock", "use-after-free",
                      "double-free", "unchecked-alloc")
    }
    print(
        "\nscore: found %d/%d checkable injected bugs, %d reports total"
        % (len(checkable & found), len(checkable), len(result.reports))
    )


if __name__ == "__main__":
    main()
