"""Statistical rule inference tests (§3.2, §9, after [10])."""

from conftest import messages, run_checker

from repro.cfront.parser import parse
from repro.cfg import CallGraph
from repro.checkers import infer_pairs, make_pair_checker


def callgraph(code):
    return CallGraph.from_units([parse(code)])


class TestInference:
    MOSTLY_PAIRED = "\n".join(
        "int f%d(int *l) { my_open(l); work(%d); my_close(l); return 0; }"
        % (i, i)
        for i in range(8)
    ) + "\nint f_bad(int *l) { my_open(l); work(9); return 0; }\n"

    def test_pair_discovered(self):
        pairs = infer_pairs(callgraph(self.MOSTLY_PAIRED))
        best = {(p.first, p.second): p for p in pairs}
        assert ("my_open", "my_close") in best
        pair = best[("my_open", "my_close")]
        assert pair.examples == 8
        assert pair.counterexamples == 1

    def test_z_ordering(self):
        pairs = infer_pairs(callgraph(self.MOSTLY_PAIRED))
        scores = [p.z_score for p in pairs]
        assert scores == sorted(scores, reverse=True)
        # the violated-once rule still scores clearly positive
        best = {(p.first, p.second): p for p in pairs}
        assert best[("my_open", "my_close")].z_score > 1.5

    def test_candidates_filter(self):
        pairs = infer_pairs(
            callgraph(self.MOSTLY_PAIRED), candidates={"my_open"}
        )
        assert all(p.first == "my_open" for p in pairs)

    def test_min_examples(self):
        code = "int f(int *l) { rare_a(l); rare_b(l); return 0; }"
        pairs = infer_pairs(callgraph(code), min_examples=2)
        assert pairs == []

    def test_branching_traces(self):
        # b follows a only on one branch: one example, one counterexample.
        code = (
            "int f(int *l, int c) {\n"
            "    aa(l);\n"
            "    if (c)\n"
            "        bb(l);\n"
            "    return 0;\n"
            "}\n"
        )
        pairs = infer_pairs(callgraph(code), min_examples=1)
        pair = next(p for p in pairs if (p.first, p.second) == ("aa", "bb"))
        assert pair.examples == 1
        assert pair.counterexamples == 1

    def test_unpaired_noise_scores_low(self):
        pairs = infer_pairs(callgraph(self.MOSTLY_PAIRED), min_examples=1)
        by_key = {(p.first, p.second): p for p in pairs}
        # work() is followed by my_close 8 of 9 times, but my_close is
        # never followed by anything: no (my_close, *) pair survives.
        assert not any(first == "my_close" for first, __ in by_key)


class TestPairChecker:
    def test_violation_reported(self):
        code = (
            "int good(int *l) { my_open(l); my_close(l); return 0; }\n"
            "int bad(int *l) { my_open(l); return 0; }\n"
        )
        result = run_checker(code, make_pair_checker("my_open", "my_close"))
        assert len(result.reports) == 1
        assert result.reports[0].function == "bad"

    def test_example_counting(self):
        code = (
            "int good(int *l) { my_open(l); my_close(l); return 0; }\n"
            "int good2(int *l) { my_open(l); work(); my_close(l); return 0; }\n"
            "int bad(int *l) { my_open(l); return 0; }\n"
        )
        result = run_checker(code, make_pair_checker("my_open", "my_close"))
        examples, violations = result.log.rule_counts("my_open/my_close")
        assert examples == 2
        assert violations == 1

    def test_inference_to_checking_pipeline(self):
        # End to end: infer the rule, build the checker from the top pair,
        # find the deviant function.
        code = TestInference.MOSTLY_PAIRED
        pairs = infer_pairs(callgraph(code))
        top = next(p for p in pairs if p.second == "my_close")
        checker = make_pair_checker(top.first, top.second)
        result = run_checker(code, checker)
        assert [r.function for r in result.reports] == ["f_bad"]

    def test_branch_scoped_violation(self):
        code = (
            "int f(int *l, int c) {\n"
            "    my_open(l);\n"
            "    if (c)\n"
            "        return -1;\n"  # violation path
            "    my_close(l);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, make_pair_checker("my_open", "my_close"))
        assert len(result.reports) == 1
