"""Front-end torture tests: every file in tests/data must parse,
round-trip through the unparser, build CFGs, and survive a full analysis
run without crashing.

The generated-pathology section stresses the hostile shapes real code
bases throw at a checker -- deep block nesting, huge switches, long
pointer-synonym chains -- and proves the per-root budgets degrade only
the offending root instead of aborting the run (docs/DRIVER.md,
"Degradation semantics")."""

import glob
import os

import pytest

from repro.cfront import astnodes as ast
from repro.cfront.parser import parse
from repro.cfront.unparse import unparse
from repro.cfg.builder import build_cfg
from repro.checkers import free_checker, null_checker
from repro.engine.analysis import Analysis, AnalysisOptions

DATA = os.path.join(os.path.dirname(__file__), "data")
FILES = sorted(glob.glob(os.path.join(DATA, "*.c")))


def read(path):
    with open(path) as handle:
        return handle.read()


@pytest.mark.parametrize("path", FILES, ids=[os.path.basename(p) for p in FILES])
class TestTortureFiles:
    def test_parses(self, path):
        unit = parse(read(path), path)
        assert unit.decls

    def test_roundtrips(self, path):
        first = parse(read(path), path)
        text = unparse(first)
        second = parse(text, path)
        assert ast.structural_key(first) == ast.structural_key(second)

    def test_cfgs_build(self, path):
        unit = parse(read(path), path)
        for decl in unit.functions():
            cfg = build_cfg(decl)
            assert cfg.entry is not None
            assert cfg.exit.is_exit

    def test_analysis_survives(self, path):
        unit = parse(read(path), path)
        result = Analysis([unit]).run([free_checker(), null_checker()])
        assert result.stats["points_visited"] > 0

    def test_deterministic_analysis(self, path):
        unit_a = parse(read(path), path)
        unit_b = parse(read(path), path)
        a = Analysis([unit_a]).run(free_checker())
        b = Analysis([unit_b]).run(free_checker())
        assert sorted(r.identity() for r in a.reports) == sorted(
            r.identity() for r in b.reports
        )


def test_corpus_is_nontrivial():
    assert len(FILES) >= 3
    total = sum(len(read(p).splitlines()) for p in FILES)
    assert total > 150


# -- generated pathologies ---------------------------------------------------
#
# These shapes are generated rather than committed: a 10k-case switch is
# noise in a data directory but three lines of generator.


def deeply_nested_source(depth=256):
    """``depth`` nested conditional blocks with a double free at the
    bottom -- stresses parser recursion and CFG depth."""
    lines = ["int nested(int *p, int a) {"]
    for index in range(depth):
        lines.append("if (a > %d) { int x%d = a;" % (index, index))
    lines += ["kfree(p);", "kfree(p);"]
    lines += ["}"] * depth
    lines += ["return a;", "}"]
    return "\n".join(lines)


def wide_switch_source(cases=10_000):
    """A ``cases``-branch switch whose default arm double-frees."""
    lines = ["int dispatch(int *p, int a) {", "int x = 0;", "switch (a) {"]
    for index in range(cases):
        lines.append("case %d: x = %d; break;" % (index, index))
    lines += [
        "default: kfree(p); kfree(p); break;",
        "}",
        "return x;",
        "}",
    ]
    return "\n".join(lines)


def synonym_chain_source(length=300):
    """A freed pointer copied down a ``length``-long chain of locals;
    the use at the end is only reachable through synonym mirroring."""
    lines = ["int chain(int *p) {", "kfree(p);", "int *s0 = p;"]
    for index in range(1, length):
        lines.append("int *s%d = s%d;" % (index, index - 1))
    lines += ["return *s%d;" % (length - 1), "}"]
    return "\n".join(lines)


def benign_buggy_source():
    """A tiny root whose report must survive any neighbour's collapse."""
    return "int benign(int *q) { kfree(q); kfree(q); return 0; }"


PATHOLOGIES = {
    "nested": deeply_nested_source,
    "switch": wide_switch_source,
    "chain": synonym_chain_source,
}


@pytest.mark.parametrize("name", sorted(PATHOLOGIES))
class TestGeneratedPathologies:
    def test_parses_and_builds_cfgs(self, name):
        unit = parse(PATHOLOGIES[name](), name + ".c")
        for decl in unit.functions():
            cfg = build_cfg(decl)
            assert cfg.entry is not None
            assert cfg.exit.is_exit

    def test_analysis_finds_the_planted_bug(self, name):
        unit = parse(PATHOLOGIES[name](), name + ".c")
        result = Analysis([unit]).run(free_checker())
        assert result.reports, "planted bug not found in %s" % name
        assert not result.truncated
        assert not result.degraded

    def test_budget_degrades_root_not_run(self, name):
        """A starvation-level per-root step budget abandons only the
        pathological root: the run completes, is not truncated, and the
        benign root's report survives untouched."""
        hostile = parse(PATHOLOGIES[name](), name + ".c")
        benign = parse(benign_buggy_source(), "benign.c")
        options = AnalysisOptions(max_steps_per_root=50, caching=False)
        result = Analysis([hostile, benign]).run(free_checker())
        baseline_benign = [
            r.identity() for r in result.reports if r.function == "benign"
        ]
        assert baseline_benign

        budgeted = Analysis([hostile, benign], options=options).run(
            free_checker()
        )
        assert not budgeted.truncated
        hostile_root = hostile.functions()[0].name
        assert [d.root for d in budgeted.degraded] == [hostile_root]
        assert budgeted.degraded[0].kind == "steps"
        assert budgeted.stats["degraded_roots"] == 1
        assert [
            r.identity() for r in budgeted.reports if r.function == "benign"
        ] == baseline_benign


def test_nested_depth_scales_past_default_recursion():
    # Python's default recursion limit is 1000; the parser bumps it, so
    # a 600-deep block tree must still parse.
    unit = parse(deeply_nested_source(depth=600), "deep600.c")
    assert unit.functions()[0].name == "nested"


def test_time_budget_on_pathological_root():
    hostile = parse(wide_switch_source(cases=2_000), "switch.c")
    benign = parse(benign_buggy_source(), "benign.c")
    options = AnalysisOptions(max_seconds_per_root=1e-9, caching=False)
    result = Analysis([hostile, benign], options=options).run(free_checker())
    assert not result.truncated
    assert {d.kind for d in result.degraded} == {"time"}
    # Both roots blow a 1ns budget; the run still visits every root
    # rather than aborting at the first.
    assert {d.root for d in result.degraded} == {"benign", "dispatch"}
