"""Shared artifact-store tests: differential parity, daemon
integration, offline fallback, and the network fault matrix.

The contract under test (docs/STORE.md): a remote store changes *where
warm state lives*, never *what the driver prints*.  Cold, warm-local,
warm-from-store, and two-clients-sharing-one-store runs must all emit
byte-identical ranked reports, serial and under ``--jobs``; an
unreachable or misbehaving store degrades a run to local-only (counted,
recorded) instead of failing it; and no network fault -- timeout, dead
connection, mid-batch crash, CAS conflict -- may surface partial frames
or wedge a run.
"""

import contextlib
import functools
import json
import os
import shutil
import tempfile
import threading

import pytest

from repro import faults
from repro.codegen.project_gen import apply_function_edits, generate_project
from repro.driver import cache as astcache
from repro.driver import store as storemod
from repro.driver.cli import _build_extensions, main
from repro.driver.daemon import DaemonClient, XgccDaemon, wait_for_socket
from repro.driver.session import IncrementalSession, session_signature
from repro.driver.stats import DriverStats
from repro.driver.store import RemoteStore, StoreError, TieredStore
from repro.driver.store_server import StoreServer
from repro.engine.analysis import AnalysisOptions

cli_checkers = functools.partial(_build_extensions, ("free", "lock"), ())

CHECKER_ARGS = ["--checker", "free", "--checker", "lock"]


def write_tree(dirpath, files):
    for name, text in files.items():
        with open(os.path.join(str(dirpath), name), "w") as handle:
            handle.write(text)


def c_paths(dirpath):
    return sorted(
        os.path.join(str(dirpath), name)
        for name in os.listdir(str(dirpath))
        if name.endswith(".c")
    )


def run_cli(src, capsys, *extra):
    """``(exit_code, stdout)`` of one CLI invocation over ``src``."""
    code = main(CHECKER_ARGS + ["-I", str(src)] + list(extra)
                + c_paths(src))
    return code, capsys.readouterr().out


def read_stats(path):
    with open(str(path)) as handle:
        return json.load(handle)


def count(payload, name):
    return payload["counters"].get(name, 0)


@pytest.fixture
def server(tmp_path):
    root = tmp_path / "store-root"
    root.mkdir()
    srv = StoreServer(str(root))
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture
def sock_dir():
    path = tempfile.mkdtemp(prefix="xgccd-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


class TestSharedStoreDifferential:
    """Two sessions sharing one remote store produce ranked reports
    byte-identical to a solo cold run -- the tentpole acceptance bar."""

    @pytest.mark.parametrize("jobs", ["1", "4"])
    def test_cold_vs_warm_vs_shared_are_byte_identical(
        self, tmp_path, server, capsys, jobs
    ):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=13, n_modules=3,
                               functions_per_module=4, bug_rate=0.4)
        write_tree(src, gen.files)

        code0, baseline = run_cli(src, capsys)  # cache-less cold run

        stats1 = tmp_path / "s1.json"
        code1, out1 = run_cli(
            src, capsys, "--cache-dir", str(tmp_path / "c1"),
            "--incremental", "--store-url", server.url,
            "--jobs", jobs, "--stats-json", str(stats1),
        )
        assert (code1, out1) == (code0, baseline)
        first = read_stats(stats1)
        assert count(first, "store_round_trips") > 0
        assert count(first, "store_degraded") == 0

        # A second client with a *fresh* local cache starts warm from
        # the store: every file loads instead of parsing, every root
        # replays instead of re-analyzing.
        stats2 = tmp_path / "s2.json"
        code2, out2 = run_cli(
            src, capsys, "--cache-dir", str(tmp_path / "c2"),
            "--incremental", "--store-url", server.url,
            "--jobs", jobs, "--stats-json", str(stats2),
        )
        assert (code2, out2) == (code0, baseline)
        second = read_stats(stats2)
        assert count(second, "cache_hits") == len(c_paths(src))
        assert count(second, "parses") == 0
        assert count(second, "summary_hits") > 0
        assert count(second, "incremental_roots_replayed") > 0
        assert count(second, "incremental_roots_analyzed") == 0
        assert count(second, "store_batch_keys") > 0

    def test_store_only_clients_share_without_local_caches(
        self, tmp_path, server, capsys
    ):
        """No ``--cache-dir`` at all: the store alone carries the warm
        state between two pathless clients."""
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=17, n_modules=2,
                               functions_per_module=4, bug_rate=0.5)
        write_tree(src, gen.files)
        __, baseline = run_cli(src, capsys)

        __, out1 = run_cli(
            src, capsys, "--incremental", "--store-url", server.url,
        )
        stats2 = tmp_path / "s2.json"
        __, out2 = run_cli(
            src, capsys, "--incremental", "--store-url", server.url,
            "--stats-json", str(stats2),
        )
        assert out1 == baseline and out2 == baseline
        second = read_stats(stats2)
        assert count(second, "parses") == 0
        assert count(second, "incremental_roots_replayed") > 0

    def test_edits_propagate_through_the_store(
        self, tmp_path, server, capsys
    ):
        """Client A analyzes an edit; client B (fresh cache) replays
        A's work and still matches a cold run of the edited tree."""
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=19, n_modules=3,
                               functions_per_module=4, bug_rate=0.4)
        write_tree(src, gen.files)
        run_cli(src, capsys, "--cache-dir", str(tmp_path / "a"),
                "--incremental", "--store-url", server.url)

        gen, __ = apply_function_edits(gen, k=2, seed=23)
        write_tree(src, gen.files)
        __, edited_cold = run_cli(src, capsys)
        __, out_a = run_cli(
            src, capsys, "--cache-dir", str(tmp_path / "a"),
            "--incremental", "--store-url", server.url,
        )
        assert out_a == edited_cold

        stats_b = tmp_path / "b.json"
        __, out_b = run_cli(
            src, capsys, "--cache-dir", str(tmp_path / "b"),
            "--incremental", "--store-url", server.url,
            "--stats-json", str(stats_b),
        )
        assert out_b == edited_cold
        assert count(read_stats(stats_b), "incremental_roots_analyzed") == 0


@contextlib.contextmanager
def store_daemon(src_dir, cache_dir, sock_path, store_url):
    """A daemon whose warm state is backed by a remote store."""
    options = AnalysisOptions()
    signature = session_signature(
        checker_names=["free", "lock"], options=options
    )
    session = IncrementalSession(
        str(cache_dir), signature, pin_warm_state=True,
        store_url=store_url,
    )
    daemon = XgccDaemon(
        watch_roots=[str(src_dir)], extension_factory=cli_checkers,
        session=session, socket_path=str(sock_path),
        include_paths=[str(src_dir)], cache_dir=str(cache_dir),
        options=options, poll_interval=30.0, store_url=store_url,
    )
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    assert wait_for_socket(str(sock_path), timeout=60.0)
    try:
        yield daemon
    finally:
        try:
            with DaemonClient(str(sock_path)) as client:
                client.request("shutdown")
        except Exception:
            daemon.stop()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "daemon thread wedged"


class TestDaemonWithStore:
    def test_warm_edit_parity_and_store_population(
        self, tmp_path, server, sock_dir, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=29, n_modules=3,
                               functions_per_module=4, bug_rate=0.4)
        write_tree(src, gen.files)
        sock = os.path.join(sock_dir, "d.sock")

        def cold(out_dir):
            main(CHECKER_ARGS + ["-I", str(out_dir)] + c_paths(out_dir))
            return capsys.readouterr().out

        with store_daemon(src, tmp_path / "cache", sock,
                          server.url) as daemon:
            with DaemonClient(sock) as client:
                first = client.request("analyze")
                assert first["ok"]
                assert first["reports"] == cold(src)
                gen, __ = apply_function_edits(gen, k=2, seed=31)
                write_tree(src, gen.files)
                resp = client.request("analyze")
                assert resp["ok"]
                assert resp["served_from"] == "analysis"
                assert resp["reports"] == cold(src)
            assert daemon.stats.count("store_round_trips") > 0
            assert daemon.stats.count("store_degraded") == 0

        # The daemon's runs populated the shared store: a CLI client
        # with a fresh cache starts warm off the daemon's work.
        stats = tmp_path / "cli.json"
        code, out = run_cli(
            src, capsys, "--cache-dir", str(tmp_path / "cli-cache"),
            "--incremental", "--store-url", server.url,
            "--stats-json", str(stats),
        )
        assert out == cold(src)
        after = read_stats(stats)
        assert count(after, "parses") == 0
        assert count(after, "incremental_roots_replayed") > 0


class TestOfflineFallback:
    def test_unreachable_store_degrades_to_local_only(
        self, tmp_path, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=37, n_modules=2,
                               functions_per_module=4, bug_rate=0.5)
        write_tree(src, gen.files)
        code0, baseline = run_cli(src, capsys)

        stats = tmp_path / "s.json"
        code, out = run_cli(
            src, capsys, "--cache-dir", str(tmp_path / "cache"),
            "--incremental", "--store-url", "tcp://127.0.0.1:1",
            "--stats-json", str(stats),
        )
        assert (code, out) == (code0, baseline)
        recorded = read_stats(stats)
        assert count(recorded, "store_degraded") == 1
        assert count(recorded, "store_fallbacks") >= 1
        kinds = [entry["kind"] for entry in recorded["degradations"]]
        assert "store" in kinds

        # The local overlay still did its job: a re-run against the
        # same dead store is warm from the local cache.
        stats2 = tmp_path / "s2.json"
        code2, out2 = run_cli(
            src, capsys, "--cache-dir", str(tmp_path / "cache"),
            "--incremental", "--store-url", "tcp://127.0.0.1:1",
            "--stats-json", str(stats2),
        )
        assert (code2, out2) == (code0, baseline)
        assert count(read_stats(stats2), "parses") == 0


class TestNetworkFaultMatrix:
    """Injected network faults: every row must end in recovery or a
    counted degradation -- never a failed run or a partial frame."""

    def _seed(self, server, key="f" * 64, data=b"frame-bytes"):
        loader = RemoteStore(server.url)
        loader.put_many("sum", {key: data})
        loader.close()
        return key, data

    def test_slow_reply_times_out_then_recovers(self, server):
        key, data = self._seed(server)
        client = RemoteStore(server.url, timeout=0.5)
        try:
            with faults.injected([{"site": "store.slow", "times": 1,
                                   "seconds": 5.0}]):
                # Attempt 1 stalls past the timeout; the resend (fault
                # exhausted) serves the full frame.
                assert client.get_many("sum", [key]) == {key: data}
        finally:
            client.close()

    def test_persistent_stall_degrades_tiered_run(self, tmp_path, server):
        key, data = self._seed(server)
        stats = DriverStats()
        store = storemod.open_store(
            cache_dir=str(tmp_path / "overlay"), store_url=server.url,
            stats=stats, timeout=0.5,
        )
        try:
            with faults.injected([{"site": "store.slow", "times": 2,
                                   "seconds": 5.0}]):
                # Both attempts stall: the tier degrades to local-only
                # and the read comes back a plain miss.
                assert store.get_many("sum", [key]) == {}
            assert stats.count("store_degraded") == 1
            # Degradation is sticky for the run: later ops skip the
            # (now healthy) remote and are counted as fallbacks.
            store.put_many("sum", {"a" * 64: b"local-only"})
            assert stats.count("store_fallbacks") >= 1
            assert store.get_many("sum", ["a" * 64]) == {
                "a" * 64: b"local-only"
            }
        finally:
            store.close()

    def test_dropped_connection_reconnects_and_resends(self, server):
        key, data = self._seed(server)
        client = RemoteStore(server.url)
        try:
            with faults.injected([{"site": "store.request", "times": 1}]):
                assert client.get_many("sum", [key]) == {key: data}
            with faults.injected([{"site": "store.request", "times": 2}]):
                with pytest.raises(StoreError):
                    client.get_many("sum", [key])
            # The client is not poisoned: the next call reconnects.
            assert client.get_many("sum", [key]) == {key: data}
        finally:
            client.close()

    def test_mid_batch_crash_serves_no_partial_frames(self, server):
        key, data = self._seed(server, data=b"x" * 4096)
        client = RemoteStore(server.url)
        try:
            # One partial reply: the retry must deliver the exact
            # original bytes, never a truncated frame.
            with faults.injected([{"site": "store.request", "times": 1,
                                   "mode": "partial"}]):
                assert client.get_many("sum", [key]) == {key: data}
            # Two partial replies exhaust the retry: the whole batch is
            # unserved (StoreError), not half-served.
            with faults.injected([{"site": "store.request", "times": 2,
                                   "mode": "partial"}]):
                with pytest.raises(StoreError):
                    client.get_many("sum", [key])
        finally:
            client.close()

    def test_mid_batch_crash_during_warm_run_self_heals(
        self, tmp_path, server, capsys
    ):
        """A store crash in the middle of a warm run's batched fetch
        degrades that run to local recompute -- identical reports."""
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=41, n_modules=2,
                               functions_per_module=4, bug_rate=0.5)
        write_tree(src, gen.files)
        __, baseline = run_cli(src, capsys)
        run_cli(src, capsys, "--incremental", "--store-url", server.url)

        stats = tmp_path / "s.json"
        with faults.injected([{"site": "store.request", "times": 4,
                               "mode": "partial"}]):
            code, out = run_cli(
                src, capsys, "--incremental", "--store-url", server.url,
                "--stats-json", str(stats),
            )
        assert out == baseline
        recorded = read_stats(stats)
        assert count(recorded, "store_degraded") == 1

    def test_cas_conflict_bounded_retry_merges_both_sides(
        self, tmp_path, server
    ):
        """A rival CAS landing in our read->write window forces a
        re-read/re-merge; both sessions' entries survive."""
        stats = DriverStats()
        backend = storemod.open_store(
            cache_dir=str(tmp_path / "overlay"), store_url=server.url,
            stats=stats,
        )
        cache = astcache.SummaryCache(backend=backend)
        signature = "sig-conflict"
        try:
            # Two distinct rivals land back to back: each invalidates
            # the ETag we hold, forcing two counted re-merges.
            with faults.injected([
                {"site": "store.conflict", "times": 1,
                 "fingerprints": {"rival1": ["r", "r"]}},
                {"site": "store.conflict", "times": 1,
                 "fingerprints": {"rival2": ["r", "r"]}},
            ]):
                cache.store_manifest(
                    signature, {"ours": ["a", "b"]},
                    frame_keys=["1" * 64], stats=stats,
                )
            assert stats.count("store_cas_conflicts") == 2
            text, __ = backend.manifest_get(signature)
            doc = json.loads(text)
            assert set(doc["fingerprints"]) == {
                "ours", "rival1", "rival2",
            }
            assert doc["frame_keys"] == ["1" * 64]
        finally:
            backend.close()

    def test_cli_run_survives_cas_conflicts(
        self, tmp_path, server, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=43, n_modules=2,
                               functions_per_module=3, bug_rate=0.5)
        write_tree(src, gen.files)
        __, baseline = run_cli(src, capsys)
        stats = tmp_path / "s.json"
        with faults.injected([
            {"site": "store.conflict", "times": 1,
             "fingerprints": {"rival%d" % i: ["r", "r"]}}
            for i in range(3)
        ]):
            code, out = run_cli(
                src, capsys, "--incremental", "--store-url", server.url,
                "--stats-json", str(stats),
            )
        assert out == baseline
        recorded = read_stats(stats)
        assert count(recorded, "store_cas_conflicts") == 3
        assert count(recorded, "store_degraded") == 0
