/* The §4 callout example: flag every call to gets(). */
sm gets_checker {
 decl any_fn_call fn;
 decl any_arguments args;

 start: { fn(args) } && ${ mc_is_call_to(fn, "gets") } ,
    { err("call to gets() is never safe"); }
  ;
}
