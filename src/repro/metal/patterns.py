"""Metal patterns (§4): pattern compilation and AST unification.

A *base pattern* is a bracketed code fragment in an extended C where
identifiers declared as hole variables match whole subtrees.  Base patterns
compose with ``&&`` and ``||``; *callouts* (``${...}``) are boolean escapes;
``$end_of_path$`` matches path ends.

Matching is structural over ASTs ("because we match ASTs, spaces and other
lexical artifacts do not interfere with matching").  Repeated holes must
bind structurally equal subtrees.
"""

from repro.cfront import astnodes as ast
from repro.cfront.parser import Parser
from repro.cfront.source import ParseError
from repro.cfg.blocks import ReturnMarker
from repro.metal.metatypes import ANY_ARGUMENTS, ANY_FN_CALL


class MatchContext:
    """Everything a callout may consult during a match attempt.

    ``point`` is the current program point (``mc_stmt`` in the paper's
    callout library); ``bindings`` maps hole names to matched subtrees;
    ``engine`` exposes the analysis state (may be None in unit tests).
    """

    def __init__(self, point, bindings=None, engine=None, end_of_path=False):
        self.point = point
        self.bindings = bindings if bindings is not None else {}
        self.engine = engine
        self.end_of_path = end_of_path


class Pattern:
    """Base class; patterns report whether they match at a program point."""

    def match(self, point, bindings, context):
        """Try to match ``point``; extend ``bindings`` in place and return
        True, or leave them unchanged and return False."""
        raise NotImplementedError

    def mentions_end_of_path(self):
        return False

    def __and__(self, other):
        return AndPattern(self, other)

    def __or__(self, other):
        return OrPattern(self, other)


class BasePattern(Pattern):
    """A bracketed code fragment compiled to a pattern AST."""

    def __init__(self, pattern_ast, source=None):
        self.pattern_ast = pattern_ast
        self.source = source
        # Hole-free patterns cannot extend bindings, so matching them
        # needs no trial-copy/commit dance (precomputed once: the
        # pattern AST is immutable after construction).
        self.has_holes = pattern_ast is not None and any(
            isinstance(node, ast.Hole) for node in pattern_ast.walk()
        )

    def match(self, point, bindings, context):
        if not self.has_holes:
            return _unify(self.pattern_ast, point, bindings)
        trial = dict(bindings)
        if _unify(self.pattern_ast, point, trial):
            bindings.clear()
            bindings.update(trial)
            return True
        return False

    def __repr__(self):
        return "BasePattern(%r)" % (self.source or self.pattern_ast)


class AndPattern(Pattern):
    def __init__(self, left, right):
        self.left = left
        self.right = right

    def match(self, point, bindings, context):
        trial = dict(bindings)
        if self.left.match(point, trial, context):
            if self.right.match(point, trial, context):
                bindings.clear()
                bindings.update(trial)
                return True
        return False

    def mentions_end_of_path(self):
        return self.left.mentions_end_of_path() or self.right.mentions_end_of_path()

    def __repr__(self):
        return "(%r && %r)" % (self.left, self.right)


class OrPattern(Pattern):
    def __init__(self, left, right):
        self.left = left
        self.right = right

    def match(self, point, bindings, context):
        trial = dict(bindings)
        if self.left.match(point, trial, context):
            bindings.clear()
            bindings.update(trial)
            return True
        trial = dict(bindings)
        if self.right.match(point, trial, context):
            bindings.clear()
            bindings.update(trial)
            return True
        return False

    def mentions_end_of_path(self):
        return self.left.mentions_end_of_path() or self.right.mentions_end_of_path()

    def __repr__(self):
        return "(%r || %r)" % (self.left, self.right)


class NotPattern(Pattern):
    """Negation; provided for Python-API checkers (metal composes callouts
    for this, but the convenience costs nothing)."""

    def __init__(self, inner):
        self.inner = inner

    def match(self, point, bindings, context):
        trial = dict(bindings)
        return not self.inner.match(point, trial, context)

    def __repr__(self):
        return "!(%r)" % (self.inner,)


class Callout(Pattern):
    """A boolean escape ``${...}``.

    ``fn(context)`` returns truth; used alone it can refer only to the
    current point and global state; as a conjunct it sees the hole bindings
    of its siblings (§4).
    """

    def __init__(self, fn, source=None):
        self.fn = fn
        self.source = source

    def match(self, point, bindings, context):
        local = MatchContext(point, bindings, context.engine if context else None,
                             context.end_of_path if context else False)
        return bool(self.fn(local))

    def __repr__(self):
        return "${%s}" % (self.source or self.fn)


#: The degenerate callouts: ``${0}`` matches nothing, ``${1}`` everything.
MATCH_NOTHING = Callout(lambda context: False, "0")
MATCH_EVERYTHING = Callout(lambda context: True, "1")


class EndOfPath(Pattern):
    """``$end_of_path$``: true when an instance permanently leaves scope or
    the program terminates (§3.2)."""

    def match(self, point, bindings, context):
        return bool(context is not None and context.end_of_path)

    def mentions_end_of_path(self):
        return True

    def __repr__(self):
        return "$end_of_path$"


# ---------------------------------------------------------------------------
# Unification
# ---------------------------------------------------------------------------


def _unify(pattern, node, bindings):
    """Match a pattern AST against a candidate AST, growing ``bindings``."""
    if isinstance(pattern, ast.Hole):
        return _unify_hole(pattern, node, bindings)

    # A pattern "return v;" (a Stmt) should match the engine's ReturnMarker.
    if isinstance(pattern, ast.Return):
        if isinstance(node, ReturnMarker):
            if pattern.expr is None:
                return node.expr is None
            return node.expr is not None and _unify(pattern.expr, node.expr, bindings)
        return False

    if isinstance(node, ReturnMarker):
        return False

    if type(pattern) is not type(node):
        return False

    if isinstance(pattern, ast.Ident):
        return pattern.name == node.name
    if isinstance(pattern, (ast.IntLit, ast.CharLit)):
        return pattern.value == node.value
    if isinstance(pattern, ast.FloatLit):
        return pattern.value == node.value
    if isinstance(pattern, ast.StringLit):
        return pattern.value == node.value
    if isinstance(pattern, ast.Unary):
        return (
            pattern.op == node.op
            and pattern.postfix == node.postfix
            and _unify(pattern.operand, node.operand, bindings)
        )
    if isinstance(pattern, ast.Binary):
        return (
            pattern.op == node.op
            and _unify(pattern.left, node.left, bindings)
            and _unify(pattern.right, node.right, bindings)
        )
    if isinstance(pattern, ast.Assign):
        return (
            pattern.op == node.op
            and _unify(pattern.target, node.target, bindings)
            and _unify(pattern.value, node.value, bindings)
        )
    if isinstance(pattern, ast.Conditional):
        return (
            _unify(pattern.cond, node.cond, bindings)
            and _unify(pattern.then, node.then, bindings)
            and _unify(pattern.otherwise, node.otherwise, bindings)
        )
    if isinstance(pattern, ast.Call):
        return _unify_call(pattern, node, bindings)
    if isinstance(pattern, ast.Member):
        return (
            pattern.name == node.name
            and pattern.arrow == node.arrow
            and _unify(pattern.obj, node.obj, bindings)
        )
    if isinstance(pattern, ast.Index):
        return _unify(pattern.array, node.array, bindings) and _unify(
            pattern.index, node.index, bindings
        )
    if isinstance(pattern, ast.Cast):
        return pattern.to_type == node.to_type and _unify(
            pattern.operand, node.operand, bindings
        )
    if isinstance(pattern, ast.SizeofExpr):
        return _unify(pattern.operand, node.operand, bindings)
    if isinstance(pattern, ast.SizeofType):
        return pattern.of_type == node.of_type
    if isinstance(pattern, ast.Comma):
        return _unify(pattern.left, node.left, bindings) and _unify(
            pattern.right, node.right, bindings
        )
    if isinstance(pattern, ast.InitList):
        if len(pattern.items) != len(node.items):
            return False
        return all(_unify(p, n, bindings) for p, n in zip(pattern.items, node.items))
    return False


def _unify_hole(hole, node, bindings):
    if isinstance(node, ReturnMarker):
        return False
    metatype = hole.metatype
    if metatype is ANY_FN_CALL and not isinstance(node, ast.Call):
        # In callee position _unify_call binds the callee; a standalone
        # any_fn_call hole must see a Call node.
        if not isinstance(node, ast.Expr):
            return False
    if not metatype.matches(node):
        return False
    previous = bindings.get(hole.name)
    if previous is not None:
        return ast.structurally_equal(previous, node)
    bindings[hole.name] = node
    return True


def _unify_call(pattern, node, bindings):
    # Callee: an any_fn_call hole in function position binds the callee
    # expression; otherwise unify structurally.
    func_pattern = pattern.func
    if isinstance(func_pattern, ast.Hole) and func_pattern.metatype is ANY_FN_CALL:
        previous = bindings.get(func_pattern.name)
        if previous is not None and not ast.structurally_equal(previous, node.func):
            return False
        bindings[func_pattern.name] = node.func
    elif not _unify(func_pattern, node.func, bindings):
        return False

    # Arguments: a single any_arguments hole swallows the whole list.
    if len(pattern.args) == 1 and isinstance(pattern.args[0], ast.Hole) and (
        pattern.args[0].metatype is ANY_ARGUMENTS
    ):
        hole = pattern.args[0]
        previous = bindings.get(hole.name)
        if previous is not None:
            if len(previous) != len(node.args):
                return False
            return all(
                ast.structurally_equal(p, n) for p, n in zip(previous, node.args)
            )
        bindings[hole.name] = list(node.args)
        return True
    if len(pattern.args) != len(node.args):
        return False
    return all(_unify(p, n, bindings) for p, n in zip(pattern.args, node.args))


# ---------------------------------------------------------------------------
# Pattern compilation
# ---------------------------------------------------------------------------


def compile_pattern(source, hole_types, typedefs=None):
    """Compile one base pattern's *body* (the text between the braces).

    Tries the expression grammar first, then the statement grammar, so that
    ``kfree(v)`` and ``return v;`` both work.
    """
    try:
        parser = Parser(source, "<pattern>", typedefs=typedefs, hole_types=hole_types)
        expr = parser.parse_expression()
        parser.accept_punct(";")
        if parser.at_eof():
            return BasePattern(expr, source)
    except ParseError:
        pass
    parser = Parser(source, "<pattern>", typedefs=typedefs, hole_types=hole_types)
    stmt = parser.parse_statement()
    if not parser.at_eof():
        raise ParseError("pattern does not parse as one expression or statement: %r" % source)
    if isinstance(stmt, ast.ExprStmt):
        return BasePattern(stmt.expr, source)
    return BasePattern(stmt, source)


def match(pattern, point, context=None):
    """Convenience wrapper: match and return the bindings dict or None."""
    bindings = {}
    ctx = context or MatchContext(point)
    if pattern.match(point, bindings, ctx):
        return bindings
    return None
