"""Interprocedural engine tests: refine/restore (Table 2), function
summaries, recursion, file-scope inactivation (§6)."""

from conftest import messages, run_checker

from repro.cfront.parser import parse
from repro.checkers import free_checker, lock_checker
from repro.engine.analysis import Analysis, AnalysisOptions
from repro.metal import compile_metal


class TestTable2Rows:
    """Each row of Table 2 as a micro-program: state must survive the call
    (refine) and the return (restore)."""

    def test_row1_plain_argument(self):
        # Actual xa, formal xf, state on xa.
        code = (
            "void callee(int *xf) { kfree(xf); }\n"
            "int caller(int *xa) { callee(xa); return *xa; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using xa after free!"]

    def test_row1_restore_direction(self):
        # State created on the formal maps back to the actual.
        code = (
            "void callee(int *xf) { kfree(xf); *xf = 1; }\n"
            "int caller(int *xa) { callee(xa); return 0; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using xf after free!"]

    def test_row2_address_of(self):
        # Actual &xa, formal xf, state on xa: state(*xf) = state(xa).
        code = (
            "void callee(int **xf) { kfree(*xf); }\n"
            "int caller(int *xa) { callee(&xa); return *xa; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using xa after free!"]

    def test_row3_field_dot(self):
        code = (
            "struct s { int *field; };\n"
            "void callee(struct s xf) { kfree(xf.field); }\n"
            "int caller(struct s xa) { callee(xa); return *xa.field; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using xa.field after free!"]

    def test_row4_field_arrow(self):
        code = (
            "struct s { int *field; };\n"
            "void callee(struct s *xf) { kfree(xf->field); }\n"
            "int caller(struct s *xa) { callee(xa); return *xa->field; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using xa->field after free!"]

    def test_row5_deref(self):
        # Actual xa, formal xf, state on *xa.
        code = (
            "void callee(int **xf) { kfree(*xf); }\n"
            "int caller(int **xa) { callee(xa); return **xa; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using *xa after free!"]

    def test_deeper_indirection(self):
        # "The final four rules actually apply at all levels of
        # indirection."
        code = (
            "struct s { struct s *next; int *data; };\n"
            "void callee(struct s *xf) { kfree(xf->next->data); }\n"
            "int caller(struct s *xa) { callee(xa); return *xa->next->data; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using xa->next->data after free!"]

    def test_state_into_callee(self):
        # refine direction: freed state visible inside the callee.
        code = (
            "int callee(int *xf) { return *xf; }\n"
            "int caller(int *xa) { kfree(xa); return callee(xa); }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using xf after free!"]

    def test_by_value_option(self):
        # With by-value restore, the callee's state changes to the plain
        # actual do not come back.
        code = (
            "void callee(int *xf) { kfree(xf); }\n"
            "int caller(int *xa) { callee(xa); return *xa; }\n"
        )
        result = run_checker(
            code, free_checker(), options=AnalysisOptions(by_value_params=True)
        )
        assert messages(result) == []


class TestCallerLocalsSaved:
    def test_untouched_local_state_survives_call(self):
        code = (
            "void noop(int x) { x = x + 1; }\n"
            "int caller(int *p, int x) { kfree(p); noop(x); return *p; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using p after free!"]

    def test_local_state_not_visible_in_callee(self):
        # p is not passed, so the callee must not see (or kill) its state.
        code = (
            "void other(int *q) { *q = 1; }\n"
            "int caller(int *p, int *q) { kfree(p); other(q); return *p; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using p after free!"]


class TestFunctionSummaries:
    def test_summary_cache_hit(self):
        code = (
            "void helper(int *p) { *p = 1; }\n"
            "int root(int *a, int *b) { helper(a); helper(b); helper(a);"
            " return 0; }\n"
        )
        unit = parse(code)
        analysis = Analysis([unit])
        analysis.run(free_checker())
        assert analysis.stats["function_cache_hits"] >= 1

    def test_callee_analyzed_in_new_state(self):
        # top-down: helper re-analyzed when reached with freed state.
        code = (
            "int helper(int *p) { return *p; }\n"
            "int root(int *a) { helper(a); kfree(a); helper(a); return 0; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using p after free!"]

    def test_union_of_exit_states(self):
        # §2.2 step 12: outgoing instances are the union over exit paths.
        code = (
            "void callee(int *p, int *w, int c) {\n"
            "    if (c)\n"
            "        kfree(p);\n"
            "    else\n"
            "        kfree(w);\n"
            "}\n"
            "int caller(int *p, int *w, int c) {\n"
            "    callee(p, w, c);\n"
            "    return *p + *w;\n"
            "}\n"
        )
        result = run_checker(code, free_checker())
        assert sorted(messages(result)) == [
            "using p after free!",
            "using w after free!",
        ]

    def test_stopped_in_callee_stays_stopped(self):
        code = (
            "void fixup(int *p) { p = 0; }\n"  # kills its own view only
            "void really_fix(int **p) { *p = 0; }\n"
            "int caller(int *a) { kfree(a); really_fix(&a); return *a; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == []

    def test_unknown_callee_skipped(self):
        # §6: "if the function's CFG is not available, the system silently
        # continues."
        code = "int caller(int *p) { mystery(p); kfree(p); return *p; }"
        result = run_checker(code, free_checker())
        assert messages(result) == ["using p after free!"]

    def test_matched_calls_not_followed(self):
        # kfree is matched by the extension, so even a defined kfree body
        # is not traversed (Fig. 5 caption).
        code = (
            "void kfree(int *x) { *x = 0; }\n"
            "int caller(int *p) { kfree(p); return *p; }\n"
        )
        result = run_checker(code, free_checker(), roots=["caller"])
        assert messages(result) == ["using p after free!"]


class TestRecursion:
    def test_self_recursion_terminates(self):
        code = (
            "int fact(int n, int *p) {\n"
            "    if (n <= 1) return 1;\n"
            "    return n * fact(n - 1, p);\n"
            "}\n"
        )
        result = run_checker(code, free_checker())
        assert result.stats["points_visited"] < 5000

    def test_mutual_recursion_terminates(self):
        code = (
            "int is_even(int n);\n"
            "int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }\n"
            "int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }\n"
        )
        result = run_checker(code, free_checker())
        assert result.stats["points_visited"] < 5000

    def test_recursion_with_state(self):
        # unsound-by-design: incomplete summaries are assumed sufficient,
        # but the analysis must still terminate and not crash.
        code = (
            "void walk(int *p, int n) {\n"
            "    if (n == 0) {\n"
            "        kfree(p);\n"
            "        return;\n"
            "    }\n"
            "    walk(p, n - 1);\n"
            "}\n"
        )
        result = run_checker(code, free_checker())
        assert result.stats["points_visited"] < 5000


class TestCallChainRanking:
    def test_call_chain_recorded(self):
        code = (
            "int deep(int *p) { return *p; }\n"
            "int mid(int *p) { return deep(p); }\n"
            "int root(int *p) { kfree(p); return mid(p); }\n"
        )
        result = run_checker(code, free_checker())
        assert len(result.reports) == 1
        assert result.reports[0].call_chain == 2
        assert not result.reports[0].is_local

    def test_local_error_has_zero_chain(self):
        result = run_checker(
            "int f(int *p) { kfree(p); return *p; }", free_checker()
        )
        assert result.reports[0].call_chain == 0
        assert result.reports[0].is_local


class TestGlobalState:
    def test_global_variable_state_passes_through(self):
        code = (
            "int *cached;\n"
            "void helper(int n) { n = n + 1; }\n"
            "int root(void) { kfree(cached); helper(3); return *cached; }\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using cached after free!"]

    def test_gstate_across_calls(self):
        # global interrupt state flows into and back out of callees
        code = (
            "void helper(void) { sti(); }\n"
            "int root(void) { cli(); helper(); return 0; }\n"
        )
        from repro.checkers import interrupt_checker

        result = run_checker(code, interrupt_checker())
        assert messages(result) == []

    def test_gstate_error_in_callee(self):
        code = (
            "void helper(void) { cli(); }\n"
            "int root(void) { cli(); helper(); sti(); return 0; }\n"
        )
        from repro.checkers import interrupt_checker

        result = run_checker(code, interrupt_checker())
        assert messages(result) == ["disabling interrupts twice (nested cli)"]
