"""§10.2: the annotation-overhead contrast.

"Flanagan and Freund ... measured an annotation overhead of one annotation
per 50 lines of code at a cost of one programmer hour per thousand lines
of code.  For a system the size of Linux (2 MLOC), this would require two
spells of 40 days and 40 nights of continuous annotating for a single
property!  In contrast, once the fixed cost of writing a metal extension
is paid (often a day or so) there is little incremental cost to applying
it to a large amount of code."

We reproduce the arithmetic and then demonstrate the scaling claim: the
same unchanged checker applied to code bases of growing size, with the
analysis cost growing while the extension cost stays one fixed constant.
"""

from repro.checkers import lock_checker
from repro.codegen import generate_kernel_module
from repro.driver.project import Project


def test_the_40_days_arithmetic(benchmark):
    def compute():
        lines = 2_000_000  # Linux, per the paper
        hours = lines / 1000.0  # one hour per KLOC
        days = hours / 24.0
        annotations = lines / 50.0
        return annotations, hours, days

    annotations, hours, days = benchmark(compute)
    print("\n§10.2 arithmetic for a 2 MLOC system:")
    print("  annotations needed: %.0f (one per 50 lines)" % annotations)
    print("  effort: %.0f hours = %.0f days of continuous annotating" % (hours, days))
    print("  = 'two spells of 40 days and 40 nights'")
    assert round(days) == 83  # ~ 2 x 40 days and 40 nights of work
    assert annotations == 40_000


def test_fixed_cost_vs_incremental(benchmark):
    checker_lines = 20  # the Fig. 3 checker, written once

    def analyze(n_functions):
        workload = generate_kernel_module(
            seed=4, n_functions=n_functions, bug_rate=0.3,
            kinds=("missing-unlock", "double-lock"),
        )
        project = Project()
        project.compile_text(workload.source, "gen.c")
        result = project.run(lock_checker())
        return len(result.reports)

    print("\nfixed extension cost vs code-base size:")
    print("  %-12s %-18s %s" % ("functions", "checker LOC spent", "bugs found"))
    for n in (10, 40, 160):
        found = analyze(n)
        print("  %-12d %-18d %d" % (n, checker_lines, found))
    benchmark(analyze, 40)
    # the claim is structural: the extension is written once; only machine
    # time grows with the code base.
    assert checker_lines < 200
