"""The xgcc analysis engine: DFS with caching (Fig. 4) plus the top-down
context-sensitive interprocedural algorithm (§6.3).

The engine applies one extension at a time to the CFG, one execution path
at a time, starting at the callgraph roots.  Composition happens across
sequential runs through the shared :class:`AnnotationStore`.
"""

import os
import sys
import time
from contextlib import nullcontext

from repro import faults
from repro.cfront import astnodes as ast
from repro.cfg.blocks import ReturnMarker
from repro.cfg.builder import build_cfg
from repro.cfg.callgraph import CallGraph
from repro.metal.patterns import MatchContext
from repro.metal.sm import GLOBAL, PLACEHOLDER, STOP, PathSplit, StateRef
from repro.engine.composition import AnnotationStore
from repro.engine.context import ActionContext, StopPath
from repro.engine.deltas import DeltaTracker, TrackedGlobals, clone_value
from repro.engine.errors import ErrorLog
from repro.engine.falsepath import PathConstraints
from repro.engine.interproc import (
    ArgumentMap,
    collect_applicable_edges,
    partition_exit_states,
    refine,
    restore,
)
from repro.engine.kills import (
    definition_target,
    kill_for_declaration,
    kill_for_definition,
)
from repro.engine.state import SMInstance, VarInstance, state_tuples
from repro.engine.summaries import (
    TRANSITION,
    Edge,
    FunctionSummary,
    RootArtifact,
    SummaryTable,
    make_add_edge,
    make_transition_edge,
    relax,
)
from repro.engine.synonyms import maybe_create_synonym, mirror_transition

sys.setrecursionlimit(max(sys.getrecursionlimit(), 100000))


class AnalysisOptions:
    """Engine switches.  Defaults mirror the paper's described behaviour;
    the benchmarks toggle individual pieces for ablations."""

    def __init__(
        self,
        interprocedural=True,
        false_path_pruning=True,
        kills=True,
        synonyms=True,
        caching=True,
        propagate_return_state=False,
        by_value_params=False,
        restrict_partial_hits=False,
        max_steps=20_000_000,
        max_steps_per_root=None,
        max_paths_per_root=None,
        max_seconds_per_root=None,
        root_error_policy="raise",
        capture_root_artifacts=False,
        matcher=None,
    ):
        self.interprocedural = interprocedural
        self.false_path_pruning = false_path_pruning
        self.kills = kills
        self.synonyms = synonyms
        self.caching = caching
        self.propagate_return_state = propagate_return_state
        self.by_value_params = by_value_params
        # §5.3 describes continuing a partially cached path with only the
        # missed tuples.  That reduced state is an approximation: the DFS
        # then explores (gstate, vars) combinations no real path produces,
        # which can manufacture reports.  Off by default -- partial hits
        # re-traverse with the full state (full hits still abort) -- so
        # cached and uncached runs report identically.
        self.restrict_partial_hits = restrict_partial_hits
        self.max_steps = max_steps
        # Per-root budgets (graceful degradation): when one blows, only
        # the offending root is abandoned -- its partial reports stay in
        # the log, a DegradedRoot lands in the result, and the remaining
        # roots analyze normally.  None disables a budget.  The time
        # budget is wall-clock and therefore machine-dependent; the step
        # and path budgets are deterministic.
        self.max_steps_per_root = max_steps_per_root
        self.max_paths_per_root = max_paths_per_root
        self.max_seconds_per_root = max_seconds_per_root
        # What to do when a root raises an unexpected exception:
        # "raise" propagates (the default -- bugs in checkers or the
        # engine should be loud), "degrade" records a DegradedRoot and
        # moves on to the next root (CLI --keep-going).
        self.root_error_policy = root_error_policy
        # Incremental capture (docs/DRIVER.md): record one serializable
        # RootArtifact per (extension, root) with *root-scoped*
        # deduplication, so each root's contribution is independent of
        # which other roots ran.  The raw log then contains cross-root
        # duplicates; consumers rebuild the final log by replaying the
        # artifacts in serial order (the driver's incremental session and
        # the parallel merge both do).
        self.capture_root_artifacts = capture_root_artifacts
        # Pattern-matching engine: "compiled" runs the table-driven
        # matchers from repro.metal.compile (docs/MATCHER.md);
        # "interp" runs the tree-walking oracle in repro.metal.patterns.
        # Both produce byte-identical reports/artifacts/deltas; the
        # XGCC_MATCHER environment variable overrides the default so CI
        # can run whole suites against the oracle.
        if matcher is None:
            matcher = os.environ.get("XGCC_MATCHER", "compiled")
        if matcher not in ("compiled", "interp"):
            raise ValueError(
                "matcher must be 'compiled' or 'interp', not %r" % (matcher,)
            )
        self.matcher = matcher


class AnalysisBudgetExceeded(Exception):
    """Raised internally when the global max_steps is hit; surfaced as
    truncation (every remaining root is skipped)."""


class RootBudgetExceeded(Exception):
    """Raised internally when a *per-root* budget is hit; only the
    current root is abandoned."""

    def __init__(self, kind, detail=""):
        super().__init__(kind, detail)
        self.kind = kind  # "steps" | "paths" | "time" | "injected"
        self.detail = detail


class DegradedRoot:
    """Structured record of one root the engine gave up on.

    The run itself survives: reports already emitted for this root are
    kept, and every other root is analyzed normally.  ``kind`` says why
    ("steps" / "paths" / "time" for per-root budgets, "global-steps" for
    the whole-run step ceiling, "error" for a recovered crash under
    root_error_policy="degrade", "injected" for fault injection).
    """

    __slots__ = ("root", "extension", "kind", "detail", "reports_kept")

    def __init__(self, root, extension, kind, detail="", reports_kept=0):
        self.root = root
        self.extension = extension
        self.kind = kind
        self.detail = detail
        self.reports_kept = reports_kept

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)

    def as_dict(self):
        return {
            "root": self.root,
            "extension": self.extension,
            "kind": self.kind,
            "detail": self.detail,
            "reports_kept": self.reports_kept,
        }

    def describe(self):
        text = "root %s (%s): %s" % (self.root, self.extension, self.kind)
        if self.detail:
            text += " -- %s" % self.detail
        return text

    def __repr__(self):
        return "<DegradedRoot %s>" % self.describe()


class AnalysisResult:
    """The outcome of applying extensions to a source base."""

    def __init__(self, log, tables, stats, truncated=False, degraded=None,
                 root_artifacts=None, coupled=False):
        self.log = log
        self.tables = tables  # extension name -> SummaryTable
        self.stats = stats
        self.truncated = truncated
        #: :class:`DegradedRoot` entries -- roots abandoned mid-run while
        #: the rest of the analysis completed (empty on a clean run).
        self.degraded = list(degraded or [])
        #: Per-(extension, root) :class:`RootArtifact` records, captured
        #: only under ``AnalysisOptions.capture_root_artifacts``.
        self.root_artifacts = list(root_artifacts or [])
        #: Did the run leave cross-root state behind (AST annotations or
        #: extension user globals)?  When True, per-root artifacts are
        #: not independent and must not be reused incrementally.
        self.coupled = coupled
        # Every driver path (serial, parallel, incremental replay, daemon)
        # finalizes its report set here, so stable hashes are assigned in
        # exactly one place -- over the canonical serial order the log
        # guarantees (occurrence ordinals depend on it).
        from repro.reports.hashing import assign_report_hashes

        assign_report_hashes(self.log.reports)

    @property
    def reports(self):
        return self.log.reports

    def reports_for(self, checker_name):
        return [r for r in self.log.reports if r.checker == checker_name]

    def __repr__(self):
        return "<AnalysisResult %d reports, stats=%r>" % (len(self.log), self.stats)


class _FunctionContext:
    """Per-function data the traversal needs."""

    def __init__(self, name, cfg):
        self.name = name
        self.cfg = cfg
        self.param_names = {p.name for p in cfg.decl.params if p.name}
        self.local_names = cfg.local_names()
        self.pure_locals = self.local_names - self.param_names
        self.file = cfg.decl.location.filename

    def local_edge_filter(self, edge):
        """Suffix-summary filter: drop edges on function-local objects
        ("the analysis would never use these edges", Fig. 5)."""
        snapshot = edge.end_snapshot
        if snapshot is None:
            return False
        return bool(ast.identifiers_in(snapshot.obj) & self.pure_locals)


class _BlockRun:
    """Entry snapshot of one block traversal, for summary recording."""

    __slots__ = ("block", "entry_gstate", "entry", "entry_state_key")

    def __init__(self, block, sm):
        self.block = block
        self.entry_gstate = sm.gstate
        self.entry = [
            (inst.tuple_key(sm.gstate), inst.uid, inst.copy())
            for inst in sm.live_instances()
        ]
        # The entry state as (gstate, frozenset of instance tuples) -- the
        # placeholder is normalized away so the empty state is the subset
        # of every state (BlockSummary.entry_states).
        self.entry_state_key = (
            sm.gstate,
            frozenset(entry_tuple for entry_tuple, __, __ in self.entry),
        )


class Analysis:
    """Applies metal extensions to a source base."""

    def __init__(self, units=None, options=None, callgraph=None, static_vars=None,
                 phase_timer=None):
        """``units`` is an iterable of TranslationUnits (or pass a prebuilt
        ``callgraph``).  ``static_vars`` maps file-scope static variable
        names to their file (drives the §6.1 inactivation rule).
        ``phase_timer`` is an optional context-manager factory (e.g.
        :meth:`repro.driver.stats.DriverStats.phase`) timing the cfg and
        traverse phases."""
        if callgraph is None:
            callgraph = CallGraph.from_units(units or [])
        self.callgraph = callgraph
        self.options = options or AnalysisOptions()
        self.annotations = AnnotationStore()
        self.static_vars = dict(static_vars or {})
        self.log = ErrorLog()
        self._cfgs = {}
        self._fctxs = {}
        self._user_globals = {}
        # Cross-root state tracking (incremental global checkers): when
        # artifacts are captured, a DeltaTracker diffs the annotation
        # store and user globals at root boundaries.
        self._tracker = None
        if self.options.capture_root_artifacts:
            self._tracker = DeltaTracker(self.current_function_name)
            self.annotations.tracker = self._tracker
        # {(ext_index, root): ResolvedDelta} replayed instead of analyzed.
        self._replay = {}
        self.stats = {
            "points_visited": 0,
            "blocks_traversed": 0,
            "paths_completed": 0,
            "cache_hits": 0,
            "function_cache_hits": 0,
            "calls_followed": 0,
            "errors": 0,
            "degraded_roots": 0,
            "matcher_table_hits": 0,
            "matcher_miss_memo_hits": 0,
            "matcher_fallbacks": 0,
            "matcher_compile_s": 0.0,
        }
        # Matcher counters accumulate in plain attributes (a dict update
        # per probe would double the cost of the miss path they measure)
        # and fold into ``stats`` when a run finishes.
        self._m_table_hits = 0
        self._m_miss_memo_hits = 0
        self._m_fallbacks = 0
        # The active extension's CompiledExtension, or None under
        # --matcher=interp (set per run_one).
        self._compiled = None
        #: DegradedRoot entries for roots abandoned mid-run.
        self.degraded = []
        #: ``(extension_index, root, first_report, end_report)`` spans over
        #: ``self.log.reports``: which root produced which reports.  The
        #: parallel driver merges worker logs back into the serial report
        #: order with these.
        self.root_spans = []
        #: :class:`repro.engine.summaries.RootArtifact` records, one per
        #: (extension, root), when options.capture_root_artifacts is set.
        self.root_artifacts = []
        self._phase_timer = phase_timer
        self._ext_index = 0
        # Per-run state.
        self._table = None
        self._ext = None
        self._call_stack = []
        self._steps = 0
        self._points_cache = {}
        self._truncated = False
        self._return_records = []
        self._current_block = None
        # Per-root budget tracking.
        self._current_root = None
        self._root_start_steps = 0
        self._root_start_paths = 0
        self._root_deadline = None
        self._faults_active = False

    # -- public API --------------------------------------------------------------

    def run(self, extensions, roots=None, replay=None):
        """Apply each extension (in order) to the whole source base.

        ``replay`` maps ``(extension_index, root)`` to a
        :class:`repro.engine.deltas.ResolvedDelta`: those pairs are not
        traversed — their recorded cross-root writes are applied at the
        pair's serial position instead, so analyzed roots observe the
        same annotation-store/user-global environment a full serial run
        would have built.
        """
        if not isinstance(extensions, (list, tuple)):
            extensions = [extensions]
        self._replay = dict(replay or {})
        tables = {}
        with self._phase("traverse"):
            for ext_index, ext in enumerate(extensions):
                self._ext_index = ext_index
                tables[ext.name] = self.run_one(ext, roots=roots)
        self.stats["errors"] = len(self.log)
        return AnalysisResult(
            self.log, tables, dict(self.stats), self._truncated,
            degraded=list(self.degraded),
            root_artifacts=list(self.root_artifacts),
            coupled=self.coupled_state(),
        )

    def coupled_state(self):
        """Did extensions leave cross-root state behind?

        AST annotations (§3.2 composition) and extension user globals are
        shared across roots: a root analyzed later can observe what an
        earlier root's traversal wrote, so per-root outcomes are not
        independent functions of the root's callee cone.  The incremental
        driver refuses to persist or reuse artifacts from coupled runs.
        """
        if len(self.annotations):
            return True
        return any(bool(values) for values in self._user_globals.values())

    def run_one(self, ext, roots=None):
        """Apply a single extension; returns its SummaryTable."""
        self._ext = ext
        self._table = SummaryTable()
        self._steps = 0
        self._faults_active = faults.active()
        if self.options.matcher == "compiled":
            compile_start = time.perf_counter()
            self._compiled = ext.compiled()
            elapsed = time.perf_counter() - compile_start
            self.stats["matcher_compile_s"] += elapsed
            per_ext = "matcher_compile_s:" + ext.name
            self.stats[per_ext] = self.stats.get(per_ext, 0.0) + elapsed
        else:
            self._compiled = None
        if roots is None:
            if self.options.interprocedural:
                roots = self.callgraph.roots()
            else:
                roots = sorted(self.callgraph.functions)
        capture = self.options.capture_root_artifacts
        for root in roots:
            if root not in self.callgraph.functions:
                continue
            resolved = self._replay.get((self._ext_index, root))
            if resolved is not None:
                # Replay this pair's recorded cross-root writes in place
                # of traversing it; its reports come from the cached
                # artifact at merge time.
                self._apply_replay(resolved)
                continue
            start = len(self.log)
            degraded_before = len(self.degraded)
            if capture:
                self.log.push_scope()
                self._tracker.begin_root()
            self._begin_root(root)
            try:
                self._run_root(ext, root)
            except RootBudgetExceeded as err:
                # Per-root budget: abandon this root only, keep its
                # partial reports, analyze the remaining roots.
                self._record_degraded(root, err.kind, err.detail, start)
            except AnalysisBudgetExceeded:
                self._truncated = True
                self._record_degraded(
                    root, "global-steps",
                    "max_steps=%r exhausted; remaining roots skipped"
                    % self.options.max_steps,
                    start,
                )
            except Exception as err:
                if self.options.root_error_policy != "degrade":
                    raise
                self._record_degraded(root, "error", repr(err), start)
            self.root_spans.append((self._ext_index, root, start, len(self.log)))
            if capture:
                self._capture_artifact(ext, root, start, degraded_before)
            if self._truncated:
                break
        self.stats["matcher_table_hits"] = self._m_table_hits
        self.stats["matcher_miss_memo_hits"] = self._m_miss_memo_hits
        self.stats["matcher_fallbacks"] = self._m_fallbacks
        return self._table

    def _apply_replay(self, resolved):
        """Apply a resolved delta's writes to the live environment.

        Values are cloned so later in-place mutations by analyzed roots
        never reach the cached artifact object; the tracker (outside any
        root here) folds the writes into its baseline so they are not
        attributed to the next analyzed root.
        """
        for node, ann_key, value in resolved.ann_ops:
            self.annotations.put(node, ann_key, clone_value(value))
        for ext_name, var, value in resolved.glob_sets:
            copy = clone_value(value)
            mapping = self._globals_for_name(ext_name)
            dict.__setitem__(mapping, var, copy)
            if self._tracker is not None:
                self._tracker.note_replay_glob(ext_name, var, copy)
        for ext_name, var in resolved.glob_dels:
            mapping = self._globals_for_name(ext_name)
            if dict.__contains__(mapping, var):
                dict.__delitem__(mapping, var)
            if self._tracker is not None:
                self._tracker.note_replay_glob(ext_name, var, None, deleted=True)

    def _capture_artifact(self, ext, root, start, degraded_before):
        examples, counterexamples = self.log.pop_scope()
        degraded = self.degraded[degraded_before:]
        delta = None
        if self._tracker is not None:
            delta = self._tracker.end_root(self.annotations, self._user_globals)
        summary = None
        if root in self._cfgs:
            summary = FunctionSummary.snapshot(
                root, ext.name, None, self._table.get(self._cfgs[root].entry)
            )
        self.root_artifacts.append(RootArtifact(
            ext_index=self._ext_index,
            extension=ext.name,
            root=root,
            reports=self.log.reports[start:len(self.log)],
            examples=examples,
            counterexamples=counterexamples,
            degraded=degraded,
            clean=not degraded and not self._truncated,
            summary=summary,
            delta=delta,
        ))

    def _begin_root(self, root):
        self._current_root = root
        self._root_start_steps = self._steps
        self._root_start_paths = self.stats["paths_completed"]
        cap = self.options.max_seconds_per_root
        self._root_deadline = None if cap is None else time.monotonic() + cap

    def _record_degraded(self, root, kind, detail, start):
        entry = DegradedRoot(
            root=root,
            extension=self._ext.name if self._ext is not None else None,
            kind=kind,
            detail=detail,
            reports_kept=len(self.log) - start,
        )
        self.degraded.append(entry)
        self.stats["degraded_roots"] += 1

    def run_on_function(self, ext, name):
        """Test helper: analyze one function as the only root."""
        return self.run(ext, roots=[name])

    # -- engine state helpers ----------------------------------------------------

    def call_depth(self):
        return max(0, len(self._call_stack) - 1)

    def current_function_name(self):
        return self._call_stack[-1] if self._call_stack else None

    def user_globals(self, ext):
        return self._globals_for_name(ext.name)

    def _globals_for_name(self, name):
        values = self._user_globals.get(name)
        if values is None:
            if self._tracker is not None:
                values = TrackedGlobals(name, self._tracker)
            else:
                values = {}
            self._user_globals[name] = values
        return values

    def _phase(self, name):
        if self._phase_timer is None:
            return nullcontext()
        return self._phase_timer(name)

    def _cfg(self, name):
        cfg = self._cfgs.get(name)
        if cfg is None:
            with self._phase("cfg"):
                cfg = build_cfg(self.callgraph.functions[name])
            self._cfgs[name] = cfg
        return cfg

    def _fctx(self, name):
        fctx = self._fctxs.get(name)
        if fctx is None:
            fctx = _FunctionContext(name, self._cfg(name))
            self._fctxs[name] = fctx
        return fctx

    def _check_budget(self):
        options = self.options
        if options.max_steps is not None and self._steps > options.max_steps:
            raise AnalysisBudgetExceeded()
        cap = options.max_steps_per_root
        if cap is not None and self._steps - self._root_start_steps > cap:
            raise RootBudgetExceeded(
                "steps", "exceeded %d steps for this root" % cap
            )
        cap = options.max_paths_per_root
        if cap is not None and (
            self.stats["paths_completed"] - self._root_start_paths > cap
        ):
            raise RootBudgetExceeded(
                "paths", "exceeded %d completed paths for this root" % cap
            )
        if self._root_deadline is not None and time.monotonic() > self._root_deadline:
            raise RootBudgetExceeded(
                "time",
                "exceeded %gs wall clock for this root"
                % options.max_seconds_per_root,
            )
        if self._faults_active and faults.fires(
            "engine.budget", key=self._current_root
        ):
            raise RootBudgetExceeded("injected", "fault injection")

    # -- roots ----------------------------------------------------------------------

    def _run_root(self, ext, root):
        fctx = self._fctx(root)
        sm = SMInstance(ext)
        constraints = PathConstraints()
        self._call_stack = [root]
        try:
            self._traverse(fctx, sm, constraints, fctx.cfg.entry, [])
        except StopPath:
            pass

    # -- the DFS (Fig. 4) --------------------------------------------------------------

    def _traverse(self, fctx, sm, constraints, block, backtrace):
        self._check_budget()
        if self.options.caching:
            summary = self._table.get(block)
            tuples = state_tuples(sm)
            missed = {t for t in tuples if not summary.covers(t)}
            if not missed and self._creations_covered(summary, sm):
                self.stats["cache_hits"] += 1
                relax(backtrace + [block], self._table, fctx.local_edge_filter)
                return
            if missed and missed != tuples and self.options.restrict_partial_hits:
                self._restrict(sm, missed)
        self.stats["blocks_traversed"] += 1
        backtrace = backtrace + [block]
        run = _BlockRun(block, sm)
        if block.havoc_vars and self.options.false_path_pruning:
            constraints.havoc(block.havoc_vars)
        points = self._points_of(block)
        self._run_points(fctx, sm, constraints, block, points, 0, run, backtrace)

    def _creations_covered(self, summary, sm):
        """May a fully tuple-covered state abort (§5.3)?

        Tuple coverage caches every tuple's *continuation*, but an object
        the state knows nothing about is not a tuple: a prior run that
        tracked it recorded its transitions, not the creation the current
        path would perform.  So a hit additionally needs some completed
        run whose entry state was a subset of this one -- every object
        unknown now was unknown then, so its creation (and everything
        downstream) is in the recorded summaries.  The paper's pure
        tuple-wise rule is available via ``restrict_partial_hits``."""
        if self.options.restrict_partial_hits:
            return True
        live = frozenset(
            inst.tuple_key(sm.gstate) for inst in sm.live_instances()
        )
        return summary.saw_subset_entry(sm.gstate, live)

    def _restrict(self, sm, missed):
        """Keep only the instances whose tuples were cache misses (§5.3).

        Removed objects are remembered so that a function summary applied
        later on this path cannot re-create state for them: their real
        continuations are the cached ones, not whatever the callee did
        while they were absent."""
        gstate = sm.gstate
        for inst in list(sm.live_instances()):
            if inst.tuple_key(gstate) not in missed:
                sm.restricted.add((inst.var_name, inst.obj_key))
                sm.remove(inst)

    def _points_of(self, block):
        cached = self._points_cache.get(id(block))
        if cached is not None:
            return cached
        points = []
        for item_idx, item in enumerate(block.items):
            if isinstance(item, ast.VarDecl):
                points.append(("decl", item, item_idx))
            elif isinstance(item, ReturnMarker):
                points.append(("return", item, item_idx))
            else:
                for node in ast.execution_order(item):
                    points.append(("expr", node, item_idx))
        self._points_cache[id(block)] = points
        return points

    def point_is_branch_condition(self, point):
        """Is ``point`` the branch condition of the block being analyzed?
        (Backs the mc_is_branch callout: path-specific null checks.)"""
        block = self._current_block
        return block is not None and block.branch_cond is point

    def _run_points(self, fctx, sm, constraints, block, points, idx, run, backtrace):
        while idx < len(points):
            self._current_block = block
            kind, node, item_idx = points[idx]
            self._steps += 1
            self.stats["points_visited"] += 1
            self._check_budget()
            if kind == "decl":
                if self.options.kills:
                    kill_for_declaration(sm, node.name)
                if self.options.false_path_pruning:
                    constraints.havoc([node.name])
            elif kind == "return":
                self._apply_extension(fctx, sm, node, (id(block), item_idx))
                if self.options.propagate_return_state and self._return_records:
                    self._record_return_state(sm, node)
            else:
                continuations = self._process_expr_point(
                    fctx, sm, constraints, block, node, item_idx
                )
                if continuations is not None:
                    if len(continuations) == 1:
                        sm, constraints = continuations[0]
                    else:
                        for new_sm, new_constraints in continuations:
                            try:
                                self._run_points(
                                    fctx,
                                    new_sm,
                                    new_constraints,
                                    block,
                                    points,
                                    idx + 1,
                                    run,
                                    backtrace,
                                )
                            except StopPath:
                                pass
                        return
            idx += 1
        self._finish_block(fctx, sm, constraints, block, run, backtrace)

    def _process_expr_point(self, fctx, sm, constraints, block, point, item_idx):
        """Apply kills, synonyms, value tracking and the extension at one
        program point; returns continuation list when a call was followed."""
        creation_site = (id(block), item_idx)
        target = definition_target(point)
        if target is not None:
            new_synonym = None
            if self.options.synonyms and isinstance(point, ast.Assign):
                new_synonym = maybe_create_synonym(sm, point)
                if new_synonym is not None:
                    new_synonym.created_at = creation_site
            if self.options.kills:
                keep = [new_synonym] if new_synonym is not None else []
                kill_for_definition(sm, target, keep=keep)
            if self.options.false_path_pruning:
                self._track_definition(constraints, point, target)

        matched_call = self._apply_extension(fctx, sm, point, creation_site)

        if isinstance(point, ast.Call) and self.annotations.get(point, "pathkill"):
            # A composed path-kill extension flagged this call (§3.2):
            # "When a subsequent extension sees a flagged function call, it
            # stops traversing the current path."
            raise StopPath()

        if (
            isinstance(point, ast.Call)
            and self.options.interprocedural
            and not matched_call
        ):
            callee = point.callee_name()
            if callee and callee in self.callgraph.functions:
                return self._follow_call(fctx, sm, constraints, point)
        return None

    def _track_definition(self, constraints, point, target):
        if isinstance(point, ast.Assign):
            if point.op == "=":
                constraints.assign(target, point.value)
            else:
                desugared = ast.Binary(point.op[:-1], target, point.value)
                constraints.assign(target, desugared)
        else:  # ++ / --
            op = "+" if point.op == "++" else "-"
            desugared = ast.Binary(op, target, ast.IntLit(1))
            constraints.assign(target, desugared)

    # -- extension application (§5.1) ----------------------------------------------------

    def _apply_extension(self, fctx, sm, point, creation_site, end_of_path=False):
        if self._compiled is not None:
            return self._apply_extension_compiled(
                sm, point, creation_site, end_of_path
            )
        ext = sm.extension
        matched_this_point = False
        touched = set()

        # Variable-specific instances first.
        for inst in list(sm.active_vars):
            if inst.inactive or inst not in sm.active_vars:
                continue
            if inst.created_at == creation_site:
                # "An instance cannot trigger a transition at the statement
                # where that instance was created" (§3.1).
                continue
            for rule in ext.specific_transitions(inst.value, inst.var_name):
                bindings = {inst.var_name: inst.obj}
                mctx = MatchContext(point, bindings, self, end_of_path)
                if rule.pattern.match(point, bindings, mctx):
                    matched_this_point = True
                    touched.add((inst.var_name, inst.obj_key))
                    self._execute_instance_rule(sm, rule, inst, bindings, point)
                    break

        # Then global transitions.
        for rule in ext.global_transitions(sm.gstate):
            bindings = {}
            mctx = MatchContext(point, bindings, self, end_of_path)
            if rule.pattern.match(point, bindings, mctx):
                matched_this_point = True
                self._execute_global_rule(
                    sm, rule, bindings, point, creation_site, touched
                )
        return matched_this_point

    def _apply_extension_compiled(self, sm, point, creation_site, end_of_path):
        """The compiled twin of :meth:`_apply_extension`: identical rule
        order, first-match-wins for instances, all-matches for globals --
        only dispatch and matching change (docs/MATCHER.md)."""
        compiled = self._compiled
        cls = point.__class__
        if not compiled.any_candidates(cls, end_of_path):
            # No rule in any source state admits this node class: skip the
            # instance loop and the global probe outright.
            self._m_miss_memo_hits += 1
            return False
        matched_this_point = False
        touched = set()
        # (var_name, value) -> candidate tuple for this point's node class.
        # Instances overwhelmingly share a state, so after the first probe
        # every further instance costs one dict hit (the "no candidates"
        # miss-memo from docs/MATCHER.md).
        cand_memo = {}
        miss_hits = 0
        table_hits = 0

        for inst in list(sm.active_vars):
            if inst.inactive or inst not in sm.active_vars:
                continue
            if inst.created_at == creation_site:
                # §3.1: no triggering at the instance's creation site.
                continue
            mkey = (inst.var_name, inst.value)
            candidates = cand_memo.get(mkey)
            if candidates is None:
                table = compiled.specific_table(inst.var_name, inst.value)
                if table is None:
                    candidates = ()
                else:
                    candidates = table.candidates(cls, end_of_path)
                cand_memo[mkey] = candidates
            if not candidates:
                miss_hits += 1
                continue
            table_hits += 1
            for crule in candidates:
                if crule.matcher is None:
                    self._m_fallbacks += 1
                    bindings = {inst.var_name: inst.obj}
                    mctx = MatchContext(point, bindings, self, end_of_path)
                    if not crule.rule.pattern.match(point, bindings, mctx):
                        continue
                else:
                    bindings = crule.match(
                        point, self, end_of_path, inst.var_name, inst.obj
                    )
                    if bindings is None:
                        continue
                matched_this_point = True
                touched.add((inst.var_name, inst.obj_key))
                self._execute_instance_rule(sm, crule.rule, inst, bindings, point)
                break

        table = compiled.global_table(sm.gstate)
        if table is None:
            self._m_miss_memo_hits += miss_hits + 1
            self._m_table_hits += table_hits
            return matched_this_point
        candidates = table.candidates(cls, end_of_path)
        if not candidates:
            self._m_miss_memo_hits += miss_hits + 1
            self._m_table_hits += table_hits
            return matched_this_point
        self._m_miss_memo_hits += miss_hits
        self._m_table_hits += table_hits + 1
        for crule in candidates:
            if crule.matcher is None:
                self._m_fallbacks += 1
                bindings = {}
                mctx = MatchContext(point, bindings, self, end_of_path)
                if not crule.rule.pattern.match(point, bindings, mctx):
                    continue
            else:
                bindings = crule.match(point, self, end_of_path)
                if bindings is None:
                    continue
            matched_this_point = True
            self._execute_global_rule(
                sm, crule.rule, bindings, point, creation_site, touched
            )
        return matched_this_point

    def _execute_instance_rule(self, sm, rule, inst, bindings, point):
        if rule.action is not None:
            ctx = ActionContext(self, sm, point, bindings, inst)
            rule.action(ctx)
        if inst not in sm.active_vars:
            return  # the action removed it
        if isinstance(rule.target, PathSplit):
            sm.pending_splits.append((inst, rule.target, point))
        elif isinstance(rule.target, StateRef):
            self._set_instance_value(
                sm, inst, rule.target.value, getattr(point, "location", None)
            )

    def _set_instance_value(self, sm, inst, value, location=None):
        if value == STOP:
            mirror_transition(sm, inst, STOP)
            sm.remove(inst)
        else:
            inst.record("transitioned to %s" % value, location)
            inst.value = value
            mirror_transition(sm, inst, value, inst.data)

    def _execute_global_rule(self, sm, rule, bindings, point, creation_site, touched):
        ext = sm.extension
        if rule.creates_instance:
            target_ref = rule.target
            if isinstance(target_ref, PathSplit):
                target_ref = target_ref.true_state
            var_name = target_ref.var
            obj = bindings.get(var_name)
            if obj is None:
                return
            key = ast.structural_key(obj)
            if (var_name, key) in touched or sm.find(key, var_name) is not None:
                return  # add edges apply only when nothing is known about t
            target = rule.target
            value = (
                target.true_state.value
                if isinstance(target, PathSplit)
                else target.value
            )
            inst = VarInstance(var_name, obj, value)
            # A real creation point re-tracks a cache-restricted object.
            sm.restricted.discard((var_name, key))
            inst.created_at = creation_site
            inst.created_location = getattr(point, "location", None)
            inst.origin_location = inst.created_location
            inst.call_depth_at_creation = self.call_depth()
            inst.record(
                "entered state %s.%s" % (var_name, value), inst.created_location
            )
            if isinstance(obj, ast.Ident) and obj.name in self.static_vars:
                inst.file_scope_file = self.static_vars[obj.name]
            sm.add(inst)
            if rule.action is not None:
                ctx = ActionContext(self, sm, point, bindings, inst)
                rule.action(ctx)
            if inst not in sm.active_vars:
                return
            if isinstance(target, PathSplit):
                sm.pending_splits.append((inst, target, point))
            elif value == STOP:
                sm.remove(inst)
        else:
            if rule.action is not None:
                ctx = ActionContext(self, sm, point, bindings, None)
                rule.action(ctx)
            if isinstance(rule.target, PathSplit):
                sm.pending_splits.append((None, rule.target, point))
            elif isinstance(rule.target, StateRef) and rule.target.is_global:
                sm.gstate = rule.target.value

    # -- block completion: summaries + successors ------------------------------------------

    def _finish_block(self, fctx, sm, constraints, block, run, backtrace):
        if block.is_exit:
            self._at_exit(fctx, sm, constraints, block, run, backtrace)
            return
        self._record_block_run(run, sm)
        if block.branch_cond is not None and any(
            e.label in (True, False) for e in block.edges
        ):
            self._branch_successors(fctx, sm, constraints, block, backtrace)
            return
        if block.switch_cond is not None and any(
            isinstance(e.label, tuple) or e.label == "default" for e in block.edges
        ):
            self._switch_successors(fctx, sm, constraints, block, backtrace)
            return
        successors = [e.target for e in block.edges]
        if not successors:
            # A dead end that is not the exit block (e.g. an empty goto
            # target); treat as a path end.
            self.stats["paths_completed"] += 1
            relax(backtrace, self._table, fctx.local_edge_filter)
            return
        if sm.pending_splits:
            self._fork_pending_splits(fctx, sm, constraints, successors, backtrace)
            return
        for index, succ in enumerate(successors):
            new_sm = sm if index == len(successors) - 1 else sm.copy()
            new_constraints = (
                constraints
                if index == len(successors) - 1
                else constraints.copy()
            )
            try:
                self._traverse(fctx, new_sm, new_constraints, succ, backtrace)
            except StopPath:
                pass

    def _fork_pending_splits(self, fctx, sm, constraints, successors, backtrace):
        """A path-specific transition fired outside a branch condition: the
        modelled function had two outcomes, so the path itself splits."""
        for outcome in (True, False):
            new_sm = sm.copy()
            self._resolve_splits(new_sm, outcome, None)
            for succ in successors:
                try:
                    self._traverse(
                        fctx, new_sm.copy(), constraints.copy(), succ, backtrace
                    )
                except StopPath:
                    pass

    def _branch_successors(self, fctx, sm, constraints, block, backtrace):
        cond = block.branch_cond
        verdict = None
        if self.options.false_path_pruning:
            verdict = constraints.evaluate(cond)
        for edge in block.edges:
            if edge.label not in (True, False):
                continue
            if verdict is True and edge.label is False:
                continue  # pruned (§8 step 5)
            if verdict is False and edge.label is True:
                continue
            new_sm = sm.copy()
            self._resolve_splits(new_sm, edge.label, cond)
            new_constraints = constraints.copy()
            if self.options.false_path_pruning:
                new_constraints.assume(cond, edge.label)
                if new_constraints.infeasible:
                    continue
            for inst in new_sm.active_vars:
                inst.conditionals_crossed += 1
            try:
                self._traverse(fctx, new_sm, new_constraints, edge.target, backtrace)
            except StopPath:
                pass

    def _switch_successors(self, fctx, sm, constraints, block, backtrace):
        cond = block.switch_cond
        known = None
        if self.options.false_path_pruning:
            key = constraints.term(cond)
            if key is not None:
                known = constraints.closure.const_of(key)
        for edge in block.edges:
            if isinstance(edge.label, tuple) and edge.label[0] == "case":
                value = edge.label[1]
                if known is not None and isinstance(value, int) and value != known:
                    continue
                new_constraints = constraints.copy()
                if self.options.false_path_pruning and isinstance(value, int):
                    new_constraints.assume(
                        ast.Binary("==", cond, ast.IntLit(value)), True
                    )
                    if new_constraints.infeasible:
                        continue
            else:
                new_constraints = constraints.copy()
            new_sm = sm.copy()
            for inst in new_sm.active_vars:
                inst.conditionals_crossed += 1
            try:
                self._traverse(fctx, new_sm, new_constraints, edge.target, backtrace)
            except StopPath:
                pass

    def _resolve_splits(self, sm, branch_label, cond):
        for inst, split, matched_point in sm.pending_splits:
            flips = 0
            if cond is not None:
                found = _polarity(cond, matched_point)
                if found is not None:
                    flips = found
            effective = branch_label if flips % 2 == 0 else not branch_label
            ref = split.true_state if effective else split.false_state
            if inst is None:
                if ref is not None and ref.is_global:
                    sm.gstate = ref.value
            elif inst in sm.active_vars and ref is not None:
                self._set_instance_value(sm, inst, ref.value)
        sm.pending_splits = []

    def _record_block_run(self, run, sm):
        summary = self._table.get(run.block)
        summary.entry_states.add(run.entry_state_key)
        g0 = run.entry_gstate
        g1 = sm.gstate
        # The placeholder edge is a real cache entry only when the
        # placeholder tuple actually was the state that reached the block
        # (no live instances); otherwise it is recorded for relaxation
        # only (§5.3 / §6.2 -- see Edge.relax_only).
        summary.edges.add(
            Edge(
                TRANSITION,
                (g0, PLACEHOLDER),
                (g1, PLACEHOLDER),
                relax_only=bool(run.entry),
            )
        )
        current = {inst.uid: inst for inst in sm.active_vars}
        entry_uids = set()
        for __, uid, entry_copy in run.entry:
            entry_uids.add(uid)
            exit_inst = current.get(uid)
            summary.edges.add(make_transition_edge(g0, entry_copy, g1, exit_inst))
        for inst in sm.active_vars:
            if inst.uid not in entry_uids and not inst.inactive:
                summary.edges.add(make_add_edge(g0, g1, inst))

    # -- path ends -------------------------------------------------------------------------

    def _at_exit(self, fctx, sm, constraints, block, run, backtrace):
        ext = sm.extension
        if ext.uses_end_of_path():
            is_root = self.call_depth() == 0
            end_point = _EndOfPathPoint(fctx)
            for inst in list(sm.live_instances()):
                leaves_scope = bool(
                    ast.identifiers_in(inst.obj) & fctx.pure_locals
                )
                if is_root or leaves_scope:
                    self._apply_end_of_path(sm, inst, end_point)
            if is_root:
                self._apply_extension(
                    fctx, sm, end_point, (id(block), -1), end_of_path=True
                )
        # Locals leave scope at function exit regardless of the checker.
        for inst in list(sm.active_vars):
            if ast.identifiers_in(inst.obj) & fctx.pure_locals:
                sm.remove(inst)
        self._record_block_run(run, sm)
        self.stats["paths_completed"] += 1
        relax(backtrace, self._table, fctx.local_edge_filter)

    def _apply_end_of_path(self, sm, inst, end_point):
        ext = sm.extension
        if inst not in sm.active_vars or inst.inactive:
            return
        compiled = self._compiled
        if compiled is not None:
            table = compiled.specific_table(inst.var_name, inst.value)
            if table is None:
                self._m_miss_memo_hits += 1
                return
            self._m_table_hits += 1
            for crule in table.eop_mentions:
                if crule.matcher is None:
                    self._m_fallbacks += 1
                    bindings = {inst.var_name: inst.obj}
                    mctx = MatchContext(
                        end_point, bindings, self, end_of_path=True
                    )
                    if not crule.rule.pattern.match(end_point, bindings, mctx):
                        continue
                else:
                    bindings = crule.match(
                        end_point, self, True, inst.var_name, inst.obj
                    )
                    if bindings is None:
                        continue
                self._execute_instance_rule(
                    sm, crule.rule, inst, bindings, end_point
                )
                break
            return
        for rule in ext.specific_transitions(inst.value, inst.var_name):
            if not rule.pattern.mentions_end_of_path():
                continue
            bindings = {inst.var_name: inst.obj}
            mctx = MatchContext(end_point, bindings, self, end_of_path=True)
            if rule.pattern.match(end_point, bindings, mctx):
                self._execute_instance_rule(sm, rule, inst, bindings, end_point)
                break

    def _record_return_state(self, sm, marker):
        if marker.expr is None:
            return
        inst = sm.find(ast.structural_key(marker.expr))
        if inst is not None:
            self._return_records[-1].append(inst.copy())

    # -- interprocedural (§6) ----------------------------------------------------------------

    def _follow_call(self, fctx, sm, constraints, call):
        callee_name = call.callee_name()
        callee_decl = self.callgraph.functions[callee_name]
        callee_cfg = self._cfg(callee_name)
        callee_fctx = self._fctx(callee_name)
        argmap = ArgumentMap(call, callee_decl)

        refined, saved = refine(sm, argmap, fctx.local_names, callee_fctx.file)
        for inst in refined.active_vars:
            if inst.inactive and inst.file_scope_file == callee_fctx.file:
                inst.inactive = False

        entry_summary = self._table.get(callee_cfg.entry)
        function_summary = entry_summary.suffix
        tuples = state_tuples(refined)
        hit = all(
            any(
                e.kind == TRANSITION and not e.relax_only
                for e in function_summary.with_start(t)
            )
            for t in tuples
        ) and self._creations_covered(entry_summary, refined)

        return_states = []
        if hit:
            self.stats["function_cache_hits"] += 1
        elif callee_name in self._call_stack:
            # Recursion: "our algorithm assumes that the existing function
            # summary is sufficient" (§7).
            pass
        else:
            self.stats["calls_followed"] += 1
            self._call_stack.append(callee_name)
            if self.options.propagate_return_state:
                self._return_records.append([])
            callee_constraints = self._refine_constraints(constraints, argmap)
            try:
                self._traverse(
                    callee_fctx,
                    refined.copy(),
                    callee_constraints,
                    callee_cfg.entry,
                    [],
                )
            except StopPath:
                pass
            if self.options.propagate_return_state:
                return_states = self._return_records.pop()
            self._call_stack.pop()

        assignments, add_edges, global_edges, __ = collect_applicable_edges(
            refined, function_summary
        )
        if not assignments and not add_edges and not global_edges and not len(
            function_summary
        ):
            partitions = [refined.copy()]  # unanalyzed recursive callee
        else:
            partitions = partition_exit_states(
                refined, assignments, add_edges, global_edges
            )
        for part in partitions:
            for inst in refined.active_vars:
                if inst.inactive and part.find(inst.obj_key) is None:
                    part.add(inst.copy())

        restored = restore(partitions, saved, argmap, sm, callee_fctx.local_names)

        # Cache-restricted objects stay owned by the cache across the call:
        # drop any state the summary application resurrected for them.
        if sm.restricted:
            for new_sm in restored:
                new_sm.restricted |= sm.restricted
                for inst in list(new_sm.active_vars):
                    if (inst.var_name, inst.obj_key) in sm.restricted:
                        new_sm.remove(inst)

        # File-scope variables re-enter scope when the analysis is back in
        # their file (and leave it again otherwise) -- §6.1.
        for new_sm in restored:
            for inst in new_sm.active_vars:
                if inst.file_scope_file is not None:
                    inst.inactive = inst.file_scope_file != fctx.file

        if self.options.by_value_params:
            self._revert_by_value(restored, saved, sm, argmap)
        if self.options.propagate_return_state and return_states:
            self._attach_return_state(restored, return_states, call)

        if self.options.false_path_pruning:
            self._havoc_after_call(constraints, argmap)

        out = []
        for index, new_sm in enumerate(restored):
            new_constraints = constraints if index == 0 else constraints.copy()
            out.append((new_sm, new_constraints))
        if not out:
            out.append((sm, constraints))
        return out

    def _refine_constraints(self, constraints, argmap):
        """Seed the callee's value tracking with known-constant arguments."""
        callee = PathConstraints()
        for actual, base, formal, addrof in argmap.pairs:
            if addrof:
                continue
            key = constraints.term(actual)
            if key is None:
                continue
            const = constraints.closure.const_of(key)
            if const is not None:
                callee.assign(ast.Ident(formal), ast.IntLit(const))
        return callee

    def _havoc_after_call(self, constraints, argmap):
        for actual, base, formal, addrof in argmap.pairs:
            if addrof and isinstance(base, ast.Ident):
                constraints.havoc([base.name])

    def _revert_by_value(self, restored, saved, original_sm, argmap):
        """Rule 1 by-value restore: state(xa) unchanged across the call for
        plain (non-indirected) actuals -- whatever the callee did to the
        formal itself, the actual keeps its pre-call state (Table 2)."""
        plain_actual_keys = {
            ast.structural_key(actual)
            for actual, __, __, addrof in argmap.pairs
            if not addrof
        }
        originals = {
            inst.obj_key: inst
            for inst in original_sm.active_vars
            if inst.obj_key in plain_actual_keys
        }
        for new_sm in restored:
            for obj_key in plain_actual_keys:
                original = originals.get(obj_key)
                inst = new_sm.find(obj_key)
                if original is not None:
                    if inst is not None:
                        inst.value = original.value
                        inst.data = dict(original.data)
                    else:
                        new_sm.add(original.copy())
                elif inst is not None:
                    new_sm.remove(inst)

    def _attach_return_state(self, restored, return_states, call):
        """Extension beyond the paper (option-gated): state attached to the
        callee's return expression transfers to the call expression."""
        snapshot = return_states[0]
        for new_sm in restored:
            if new_sm.find(ast.structural_key(call)) is None:
                clone = snapshot.copy()
                VarInstance._next_uid[0] += 1
                clone.uid = VarInstance._next_uid[0]
                clone.retarget(call)
                new_sm.add(clone)


class _EndOfPathPoint:
    """The synthetic program point $end_of_path$ transitions match at."""

    def __init__(self, fctx):
        self.location = fctx.cfg.decl.location
        self._fields = ()

    def walk(self):
        yield self

    def children(self):
        return iter(())


def _polarity(cond, node):
    """Count logical negations between a branch condition's root and the
    matched node; None when the node is not inside the condition."""
    if cond is node:
        return 0
    if not isinstance(cond, ast.Node):
        return None
    if isinstance(cond, ast.Unary) and cond.op == "!" and not cond.postfix:
        inner = _polarity(cond.operand, node)
        return None if inner is None else inner + 1
    if isinstance(cond, ast.Binary) and cond.op in ("==", "!="):
        for side, other in ((cond.left, cond.right), (cond.right, cond.left)):
            inner = _polarity(side, node)
            if inner is not None and isinstance(other, ast.IntLit) and other.value == 0:
                return inner + (1 if cond.op == "==" else 0)
    for child in cond.children():
        inner = _polarity(child, node)
        if inner is not None:
            return inner
    return None
