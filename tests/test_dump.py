"""Dump-tool tests (CFG text/DOT, call graph, summaries)."""

import pytest

from repro.cfront.parser import parse
from repro.cfg import CallGraph
from repro.cfg.builder import build_cfg
from repro.checkers import free_checker
from repro.driver.cli import main
from repro.driver.dump import (
    dump_callgraph,
    dump_cfg,
    dump_cfg_dot,
    dump_summaries,
)
from repro.engine.analysis import Analysis

CODE = """
int helper(int *p) { kfree(p); return 0; }
int root(int *p, int c) {
    if (c)
        helper(p);
    return *p;
}
"""


@pytest.fixture
def callgraph():
    return CallGraph.from_units([parse(CODE, "d.c")])


class TestDumpCfg:
    def test_text_dump(self, callgraph):
        cfg = build_cfg(callgraph.functions["root"])
        text = dump_cfg(cfg)
        assert "CFG root" in text
        assert "[entry" in text or "[entry]" in text
        assert "T:B" in text and "F:B" in text
        assert "return *p" in text

    def test_dot_dump(self, callgraph):
        cfg = build_cfg(callgraph.functions["root"])
        dot = dump_cfg_dot(cfg)
        assert dot.startswith('digraph "root"')
        assert dot.rstrip().endswith("}")
        assert '[label="T"]' in dot
        assert "B0 ->" in dot

    def test_loop_header_marked(self):
        unit = parse("int f(int n) { while (n) n--; return n; }")
        cfg = build_cfg(unit.functions()[0])
        text = dump_cfg(cfg)
        assert "loop-head havoc={n}" in text


class TestDumpCallgraph:
    def test_roots_marked(self, callgraph):
        text = dump_callgraph(callgraph)
        assert " * root -> helper" in text
        assert "helper" in text
        assert "[external: kfree]" in text


class TestDumpSummaries:
    def test_figure5_style_rows(self):
        unit = parse(CODE, "d.c")
        analysis = Analysis([unit])
        table = analysis.run_one(free_checker())
        text = dump_summaries(analysis, table, ["helper"])
        assert "== helper ==" in text
        assert "v:p->$unknown) --> (start,v:p->freed)" in text
        assert "sfx:" in text


class TestDumpCLI:
    def test_dump_cfg_mode(self, tmp_path, capsys):
        src = tmp_path / "d.c"
        src.write_text(CODE)
        assert main(["--dump-cfg", str(src)]) == 0
        out = capsys.readouterr().out
        assert "CFG helper" in out and "CFG root" in out

    def test_dump_dot_mode(self, tmp_path, capsys):
        src = tmp_path / "d.c"
        src.write_text(CODE)
        assert main(["--dump-dot", str(src)]) == 0
        assert 'digraph "root"' in capsys.readouterr().out

    def test_dump_callgraph_mode(self, tmp_path, capsys):
        src = tmp_path / "d.c"
        src.write_text(CODE)
        assert main(["--dump-callgraph", str(src)]) == 0
        assert "callgraph (2 functions" in capsys.readouterr().out

    def test_dump_summaries_mode(self, tmp_path, capsys):
        src = tmp_path / "d.c"
        src.write_text(CODE)
        code = main(["--checker", "free", "--dump-summaries", str(src)])
        assert code == 1  # the use-after-free is still reported
        captured = capsys.readouterr()
        assert "summaries for free_checker" in captured.err
        assert "-->" in captured.err
