/* Device lifetime management.
 *
 * Seeded bugs:
 *   dev_destroy_twice : double free of dev->buf          (free)
 *   dev_replace_buf   : use after free of the old buffer (free)
 */
#include "kernel.h"

static struct device *device_list;

struct device *dev_create(int id) {
    struct device *dev = kmalloc(128);
    if (!dev)
        return 0;
    dev->id = id;
    dev->flags = 0;
    dev->refcnt = 1;
    dev->buf = kmalloc(RING_SIZE);
    if (!dev->buf) {
        kfree(dev);
        return 0;
    }
    dev->next = device_list;
    device_list = dev;
    return dev;
}

void dev_destroy(struct device *dev) {
    kfree(dev->buf);
    kfree(dev);
}

void dev_destroy_twice(struct device *dev) {
    kfree(dev->buf);
    if (dev->flags & DEV_FLAG_DEAD)
        kfree(dev->buf);            /* BUG: double free */
    kfree(dev);
}

int dev_replace_buf(struct device *dev, int n) {
    char *old = dev->buf;
    kfree(old);
    dev->buf = kmalloc(n);
    if (!dev->buf) {
        dev->buf = old;             /* BUG: resurrecting a freed buffer */
        return old[0];              /* BUG: use after free */
    }
    return 0;
}

int dev_put(struct device *dev) {
    dev->refcnt = dev->refcnt - 1;
    if (dev->refcnt == 0) {
        dev_destroy(dev);
        return 1;
    }
    return 0;
}
