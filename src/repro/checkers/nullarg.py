"""Statistical null-argument checking (a third "bugs as deviant
behavior" family).

Infer, per (function, argument position), how often call sites pass a
non-null expression versus a literal null; positions that are "never
null" elsewhere make a literal-NULL call site a deviant worth reporting,
ranked by the z-statistic.
"""

from repro.cfront import astnodes as ast
from repro.metal.callouts import mc_is_null
from repro.ranking.statistical import rule_z_score


class NullArgRule:
    """One inferred "argument i of fn() must not be NULL" rule."""

    def __init__(self, callee, index, non_null, null_sites):
        self.callee = callee
        self.index = index
        self.non_null = non_null
        self.null_sites = null_sites  # list of (location, function)

    @property
    def violations(self):
        return len(self.null_sites)

    @property
    def z_score(self):
        return rule_z_score(self.non_null, self.violations)

    def __repr__(self):
        return "<nonnull %s arg%d e=%d c=%d z=%.2f>" % (
            self.callee, self.index, self.non_null, self.violations,
            self.z_score,
        )


def collect_argument_uses(callgraph):
    """Yield (callee, arg_index, is_null_literal, is_pointerish, location,
    caller).  ``is_pointerish`` marks non-null arguments whose inferred
    type is a pointer -- the evidence that the *position* is a pointer
    position, so that a literal ``0`` there means NULL and not the
    integer zero."""
    out = []
    for name in sorted(callgraph.functions):
        decl = callgraph.functions[name]
        for node in decl.body.walk():
            if not isinstance(node, ast.Call):
                continue
            callee = node.callee_name()
            if callee is None:
                continue
            for index, arg in enumerate(node.args):
                ctype = arg.ctype
                pointerish = bool(
                    ctype is not None and ctype.resolve().is_pointer()
                )
                out.append(
                    (callee, index, mc_is_null(arg), pointerish,
                     arg.location, name)
                )
    return out


def infer_nonnull_rules(callgraph, min_non_null=3):
    """Infer must-not-be-NULL argument positions, strongest rules first.

    A position only defines a rule when the *majority* of its non-null
    uses are pointer-typed -- otherwise a literal 0 is just the integer.
    """
    non_null = {}
    pointerish_count = {}
    null_sites = {}
    for callee, index, is_null, pointerish, location, caller in (
        collect_argument_uses(callgraph)
    ):
        key = (callee, index)
        if is_null:
            null_sites.setdefault(key, []).append((location, caller))
        else:
            non_null[key] = non_null.get(key, 0) + 1
            if pointerish:
                pointerish_count[key] = pointerish_count.get(key, 0) + 1
    rules = []
    for key in set(non_null) | set(null_sites):
        count = non_null.get(key, 0)
        if count < min_non_null:
            continue
        if pointerish_count.get(key, 0) * 2 <= count:
            continue  # not a pointer position
        rules.append(
            NullArgRule(key[0], key[1], count, null_sites.get(key, []))
        )
    rules.sort(key=lambda r: (-r.z_score, r.callee, r.index))
    return rules


def report_null_argument_sites(callgraph, min_non_null=3, min_z=1.0):
    """ErrorReport-shaped findings for NULL passed where it never is."""
    from repro.engine.errors import ErrorReport

    reports = []
    for rule in infer_nonnull_rules(callgraph, min_non_null):
        if rule.z_score < min_z or not rule.null_sites:
            continue
        for location, caller in rule.null_sites:
            reports.append(
                ErrorReport(
                    checker="nullarg",
                    message=(
                        "NULL passed as argument %d of %s() (non-null at %d "
                        "other sites, z=%.2f)"
                        % (rule.index, rule.callee, rule.non_null, rule.z_score)
                    ),
                    location=location,
                    function=caller,
                    rule_id="%s#%d" % (rule.callee, rule.index),
                )
            )
    return reports
