"""False-path pruning tests (§8): value tracking, congruence closure,
branch evaluation, loop havoc -- plus hypothesis properties of the
union-find closure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront.parser import parse_expression
from repro.engine.falsepath import PathConstraints, _Closure


def e(text):
    return parse_expression(text)


class TestAssignAndEvaluate:
    def test_constant_tracking(self):
        pc = PathConstraints()
        pc.assign(e("x"), e("10"))
        assert pc.evaluate(e("x == 10")) is True
        assert pc.evaluate(e("x == 11")) is False
        assert pc.evaluate(e("x")) is True

    def test_zero_is_false(self):
        pc = PathConstraints()
        pc.assign(e("x"), e("0"))
        assert pc.evaluate(e("x")) is False
        assert pc.evaluate(e("!x")) is True

    def test_unknown_is_none(self):
        pc = PathConstraints()
        assert pc.evaluate(e("x == 1")) is None
        assert pc.evaluate(e("x")) is None

    def test_expression_evaluation(self):
        # §8 step 2: "If we know that x is 10, then we will assign y 11."
        pc = PathConstraints()
        pc.assign(e("x"), e("10"))
        pc.assign(e("y"), e("x + 1"))
        assert pc.evaluate(e("y == 11")) is True

    def test_opaque_expression_stored(self):
        # "If we know nothing about x, we store the entire expression."
        pc = PathConstraints()
        pc.assign(e("y"), e("x + 1"))
        pc.assign(e("z"), e("x + 1"))
        assert pc.evaluate(e("y == z")) is True

    def test_renaming_on_assignment(self):
        # §8 step 1: "we assign a new name to that variable so that
        # different definitions of the variable are not confused."
        pc = PathConstraints()
        pc.assign(e("x"), e("1"))
        pc.assign(e("y"), e("x"))
        pc.assign(e("x"), e("2"))
        assert pc.evaluate(e("y == 1")) is True
        assert pc.evaluate(e("x == 2")) is True
        assert pc.evaluate(e("x == y")) is False

    def test_copy_propagation(self):
        pc = PathConstraints()
        pc.assign(e("y"), e("x"))
        assert pc.evaluate(e("y == x")) is True

    def test_compound_lvalue_versions(self):
        pc = PathConstraints()
        pc.assume(e("s->len == 4"), True)
        assert pc.evaluate(e("s->len == 4")) is True
        pc.assign(e("s->len"), e("somecall()"))
        assert pc.evaluate(e("s->len == 4")) is None


class TestAssume:
    def test_fig2_contradiction(self):
        # if(x) then-branch: x != 0; later if(!x) must be false.
        pc = PathConstraints()
        pc.assume(e("x"), True)
        assert pc.evaluate(e("!x")) is False
        assert pc.evaluate(e("x")) is True

    def test_fig2_false_branch(self):
        pc = PathConstraints()
        pc.assume(e("x"), False)
        assert pc.evaluate(e("!x")) is True

    def test_equality_assume(self):
        pc = PathConstraints()
        pc.assume(e("x == y"), True)
        pc.assign(e("z"), e("x"))
        assert pc.evaluate(e("z == y")) is True

    def test_disequality(self):
        pc = PathConstraints()
        pc.assume(e("x != y"), True)
        assert pc.evaluate(e("x == y")) is False

    def test_relational_true_branch(self):
        # "If we see the statement (x < y), we record that x < y holds
        # along the true branch and x >= y holds along the false branch."
        pc = PathConstraints()
        pc.assume(e("x < y"), True)
        assert pc.evaluate(e("x < y")) is True
        assert pc.evaluate(e("x >= y")) is False
        assert pc.evaluate(e("x == y")) is False

    def test_relational_false_branch(self):
        pc = PathConstraints()
        pc.assume(e("x < y"), False)
        assert pc.evaluate(e("x >= y")) is True
        assert pc.evaluate(e("x < y")) is False

    def test_transitivity_through_classes(self):
        # §8 step 4: "if x < y holds, then everything in x's equivalence
        # class is smaller than everything in y's equivalence class."
        pc = PathConstraints()
        pc.assume(e("a == x"), True)
        pc.assume(e("b == y"), True)
        pc.assume(e("x < y"), True)
        assert pc.evaluate(e("a < b")) is True

    def test_transitive_chain(self):
        pc = PathConstraints()
        pc.assume(e("a < b"), True)
        pc.assume(e("b < c"), True)
        assert pc.evaluate(e("a < c")) is True
        assert pc.evaluate(e("c <= a")) is False

    def test_le_then_lt(self):
        pc = PathConstraints()
        pc.assume(e("a <= b"), True)
        pc.assume(e("b < c"), True)
        assert pc.evaluate(e("a < c")) is True
        assert pc.evaluate(e("a <= c")) is True

    def test_le_only_not_strict(self):
        pc = PathConstraints()
        pc.assume(e("a <= b"), True)
        assert pc.evaluate(e("a < b")) is None
        assert pc.evaluate(e("a <= b")) is True

    def test_implicit_constant_ordering(self):
        # n > 10 and n < 5 contradict through the constants themselves.
        pc = PathConstraints()
        pc.assume(e("n > 10"), True)
        assert pc.evaluate(e("n < 5")) is False
        assert pc.evaluate(e("n > 3")) is True

    def test_constant_chain_through_variables(self):
        pc = PathConstraints()
        pc.assume(e("a < 3"), True)
        pc.assume(e("b > 7"), True)
        assert pc.evaluate(e("a < b")) is True
        assert pc.evaluate(e("b <= a")) is False

    def test_bound_does_not_overreach(self):
        pc = PathConstraints()
        pc.assume(e("n > 10"), True)
        # n vs 20 is genuinely unknown
        assert pc.evaluate(e("n < 20")) is None
        assert pc.evaluate(e("n > 20")) is None

    def test_and_decomposition(self):
        pc = PathConstraints()
        pc.assume(e("x == 1 && y == 2"), True)
        assert pc.evaluate(e("x == 1")) is True
        assert pc.evaluate(e("y == 2")) is True

    def test_or_false_decomposition(self):
        pc = PathConstraints()
        pc.assume(e("x == 1 || y == 2"), False)
        assert pc.evaluate(e("x == 1")) is False
        assert pc.evaluate(e("y == 2")) is False

    def test_contradiction_detected(self):
        pc = PathConstraints()
        pc.assume(e("x == 1"), True)
        pc.assume(e("x == 2"), True)
        assert pc.infeasible

    def test_diseq_union_contradiction(self):
        pc = PathConstraints()
        pc.assume(e("x != y"), True)
        pc.assume(e("x == y"), True)
        assert pc.infeasible


class TestHavoc:
    def test_havoc_forgets(self):
        # §8 step 3: variables defined in a loop become unknown.
        pc = PathConstraints()
        pc.assign(e("x"), e("1"))
        pc.havoc(["x"])
        assert pc.evaluate(e("x == 1")) is None

    def test_havoc_is_selective(self):
        pc = PathConstraints()
        pc.assign(e("x"), e("1"))
        pc.assign(e("y"), e("2"))
        pc.havoc(["x"])
        assert pc.evaluate(e("y == 2")) is True


class TestCopySemantics:
    def test_copies_are_independent(self):
        pc = PathConstraints()
        pc.assume(e("x == 1"), True)
        fork = pc.copy()
        fork.assume(e("y == 2"), True)
        assert pc.evaluate(e("y == 2")) is None
        assert fork.evaluate(e("x == 1")) is True

    def test_constant_folding_in_closure(self):
        pc = PathConstraints()
        pc.assign(e("x"), e("3"))
        pc.assign(e("y"), e("x * 2 + 1"))
        assert pc.evaluate(e("y == 7")) is True

    def test_commutative_canonicalization(self):
        pc = PathConstraints()
        pc.assign(e("s"), e("a + b"))
        pc.assign(e("t"), e("b + a"))
        assert pc.evaluate(e("s == t")) is True


class TestClosureProperties:
    """Hypothesis: the congruence closure is a sound union-find."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=20
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_union_find_equivalence(self, unions):
        closure = _Closure()
        keys = [("v", "x%d" % i, 0) for i in range(7)]
        for key in keys:
            closure.fresh(key)
        # Model with naive sets.
        groups = {i: {i} for i in range(7)}
        for a, b in unions:
            closure.union(keys[a], keys[b])
            ga, gb = groups[a], groups[b]
            if ga is not gb:
                merged = ga | gb
                for member in merged:
                    groups[member] = merged
        for i in range(7):
            for j in range(7):
                expected = j in groups[i]
                assert closure.are_equal(keys[i], keys[j]) == expected

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_congruence_lifts_equalities(self, unions):
        # If x == y then f(x) == f(y) for composite terms built afterwards.
        closure = _Closure()
        keys = [("v", "x%d" % i, 0) for i in range(6)]
        for key in keys:
            closure.fresh(key)
        for a, b in unions:
            closure.union(keys[a], keys[b])
        for a, b in unions:
            fa = closure.composite("f", [keys[a]])
            fb = closure.composite("f", [keys[b]])
            assert closure.are_equal(fa, fb)

    @given(st.permutations(list(range(5))), st.integers(0, 4))
    @settings(max_examples=50, deadline=None)
    def test_constants_never_merge(self, order, pivot):
        closure = _Closure()
        consts = [closure.const_key(i) for i in order]
        # Union a variable into one constant class; other constants stay
        # distinct and a second union flags infeasibility.
        var = closure.fresh(("v", "x", 0))
        closure.union(var, consts[pivot])
        other = consts[(pivot + 1) % len(consts)]
        closure.union(var, other)
        assert closure.infeasible


class TestHypothesisStraightLine:
    """Property: after a chain of constant assignments, evaluate() agrees
    with a Python interpreter of the same straight-line program."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["x", "y", "z"]),
                st.sampled_from(["const", "copy", "add"]),
                st.integers(-50, 50),
                st.sampled_from(["x", "y", "z"]),
            ),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_interpreter(self, program):
        pc = PathConstraints()
        env = {}
        for target, kind, value, source in program:
            if kind == "const":
                pc.assign(e(target), e(str(value)))
                env[target] = value
            elif kind == "copy":
                pc.assign(e(target), e(source))
                env[target] = env.get(source)
            else:
                pc.assign(e(target), parse_expression("%s + %d" % (source, value)))
                env[target] = (
                    env[source] + value if env.get(source) is not None else None
                )
        for name in ("x", "y", "z"):
            if env.get(name) is not None:
                verdict = pc.evaluate(parse_expression("%s == %d" % (name, env[name])))
                assert verdict is True
                verdict = pc.evaluate(
                    parse_expression("%s == %d" % (name, env[name] + 1))
                )
                assert verdict is False
