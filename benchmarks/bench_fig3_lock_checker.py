"""Figure 3: the lock checker -- all three warning classes plus the
path-specific trylock transition.
"""

from conftest import analyze

from repro.checkers import LOCK_CHECKER_SOURCE, lock_checker
from repro.metal import compile_metal

SCENARIOS = """
int scenario_unheld(int *l) { unlock(l); return 0; }
int scenario_double(int *l) { lock(l); lock(l); unlock(l); return 0; }
int scenario_leak(int *l, int e) {
    lock(l);
    if (e)
        return -1;
    unlock(l);
    return 0;
}
int scenario_trylock_ok(int *l) {
    if (trylock(l)) {
        unlock(l);
        return 1;
    }
    return 0;
}
int scenario_trylock_leak(int *l) {
    if (trylock(l))
        return 1;
    return 0;
}
int scenario_clean(int *l) { lock(l); unlock(l); return 0; }
"""


def test_fig3_compile(benchmark):
    ext = benchmark(compile_metal, LOCK_CHECKER_SOURCE)
    assert ext.uses_end_of_path()


def test_fig3_execute(benchmark):
    def run():
        result, __ = analyze(SCENARIOS, lock_checker(), filename="locks.c")
        return result

    result = benchmark(run)
    by_function = {}
    for report in result.reports:
        by_function.setdefault(report.function, []).append(report.message)

    print("\nFig. 3 lock checker results:")
    for fn in sorted(by_function):
        print("  %-22s %s" % (fn, by_function[fn]))

    # (1) released without being acquired
    assert by_function["scenario_unheld"] == [
        "releasing lock l without acquiring it!"
    ]
    # (2) double acquired
    assert by_function["scenario_double"] == ["double acquire of lock l!"]
    # (3) not released at all -- on the error path and the trylock path
    assert by_function["scenario_leak"] == ["lock l never released!"]
    assert by_function["scenario_trylock_leak"] == ["lock l never released!"]
    # clean scenarios stay clean (trylock false path included)
    assert "scenario_trylock_ok" not in by_function
    assert "scenario_clean" not in by_function
