"""Path-feasibility refinement tests (docs/REFINE.md).

The teeth workload is the refinement pass's whole reason to exist: the
``contradictory`` function guards a free with ``x < 5`` and the use
with ``x > 4`` -- the §8 false-path pruner reasons about ``<`` purely
symbolically, so it cannot do the integer off-by-one conversion and
the report survives pruning, while the refinement interval domain
turns the two guards into [..,4] ∩ [5,..] = ∅ and classifies the
report ``infeasible``.  On top of that one differential: the CLI modes
(annotate / demote / drop), the statistical-ranking confidence
feature, verdict caching keyed by (function fingerprint, report hash),
byte-identity across every driver path, ``--prune-runs``, and the
report-pipeline regressions fixed alongside (blank run tokens,
unresolved diff base labels, ``prune(keep=0)`` semantics).
"""

import contextlib
import functools
import json
import os
import shutil
import tempfile
import threading

import pytest

from repro import faults
from repro.driver.cli import _build_extensions, build_parser, main
from repro.driver.daemon import DaemonClient, XgccDaemon, wait_for_socket
from repro.driver.session import IncrementalSession, session_signature
from repro.driver.store import LocalStore
from repro.engine.analysis import AnalysisOptions
from repro.ranking.statistical import verdict_confidence
from repro.reports.hashing import assign_report_hashes
from repro.reports.history import RunHistory, RunHistoryError
from repro.reports.model import Report

free_checker_list = functools.partial(_build_extensions, ("free",), ())

CHECKER_ARGS = ["--checker", "free"]

#: Three single-report functions: one the pruner keeps but the interval
#: domain refutes (strict-inequality off-by-one), one genuinely
#: feasible, one feasible across a loop (exercises the widened family).
TEETH_TREE = {
    "mod.c": (
        "int contradictory(int *p, int x) {\n"
        "    if (x < 5)\n"
        "        kfree(p);\n"
        "    if (x > 4)\n"
        "        return *p;\n"
        "    return 0;\n"
        "}\n"
        "\n"
        "int feasible(int *q, int y) {\n"
        "    if (y > 0)\n"
        "        kfree(q);\n"
        "    if (y > 1)\n"
        "        return *q;\n"
        "    return 0;\n"
        "}\n"
        "\n"
        "int looped(int *r, int n) {\n"
        "    int i;\n"
        "    kfree(r);\n"
        "    for (i = 0; i < n; i++)\n"
        "        n = n - 1;\n"
        "    return *r;\n"
        "}\n"
    ),
}


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.clear()


def write_tree(dirpath, files):
    for name, text in files.items():
        with open(os.path.join(str(dirpath), name), "w") as handle:
            handle.write(text)


def c_paths(dirpath):
    return sorted(
        os.path.join(str(dirpath), name)
        for name in os.listdir(str(dirpath))
        if name.endswith(".c")
    )


def run_cli(src, capsys, *extra):
    """``(exit_code, stdout, stderr)`` of one CLI run over ``src``."""
    code = main(CHECKER_ARGS + ["-I", str(src)] + list(extra)
                + c_paths(src))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def report_json(src, capsys, *extra):
    """The ``--report-json`` document list for one run."""
    __, out, __ = run_cli(src, capsys, "--report-json", "-", *extra)
    docs, __ = json.JSONDecoder().raw_decode(out[out.index("["):])
    return docs


def verdicts_of(docs):
    """``{function: verdict}`` from report documents (None = never
    refined)."""
    out = {}
    for doc in docs:
        feasibility = (doc.get("annotations") or {}).get("feasibility")
        out[doc["function"]] = (
            feasibility.get("verdict") if feasibility else None
        )
    return out


@pytest.fixture
def teeth_tree(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    write_tree(src, TEETH_TREE)
    return src


def counters_from(path):
    with open(str(path)) as handle:
        return json.load(handle)["counters"]


class TestVerdicts:
    def test_teeth_workload_verdicts(self, teeth_tree, capsys):
        docs = report_json(teeth_tree, capsys, "--refine=annotate")
        assert verdicts_of(docs) == {
            "contradictory": "infeasible",
            "feasible": "confirmed",
            "looped": "confirmed",
        }

    def test_default_run_never_refines(self, teeth_tree, capsys):
        docs = report_json(teeth_tree, capsys)
        assert verdicts_of(docs) == {
            "contradictory": None, "feasible": None, "looped": None,
        }

    def test_annotate_mode_keeps_text_byte_identical(
        self, teeth_tree, capsys
    ):
        __, baseline, __ = run_cli(teeth_tree, capsys)
        __, annotated, __ = run_cli(teeth_tree, capsys,
                                    "--refine=annotate")
        assert annotated == baseline

    def test_bare_refine_flag_defaults_to_demote(self):
        args = build_parser().parse_args(
            ["--checker", "free", "mod.c", "--refine"]
        )
        assert args.refine == "demote"
        assert build_parser().parse_args(
            ["--checker", "free", "mod.c"]
        ).refine is None


class TestModes:
    def test_demote_sinks_the_infeasible_report(self, teeth_tree, capsys):
        docs = report_json(teeth_tree, capsys, "--refine=demote")
        assert len(docs) == 3
        assert docs[-1]["function"] == "contradictory"
        assert [d["annotations"]["rank"] for d in docs] == [1, 2, 3]
        # The demoted report is still present and annotated, not lost.
        assert docs[-1]["annotations"]["feasibility"]["verdict"] == \
            "infeasible"

    def test_drop_removes_the_infeasible_report(self, teeth_tree, capsys):
        docs = report_json(teeth_tree, capsys, "--refine=drop")
        assert verdicts_of(docs) == {
            "feasible": "confirmed", "looped": "confirmed",
        }
        # Survivor ranks renumber 1-based and gapless.
        assert [d["annotations"]["rank"] for d in docs] == [1, 2]

    def test_drop_keeps_exit_code_one_while_reports_remain(
        self, teeth_tree, capsys
    ):
        code, out, __ = run_cli(teeth_tree, capsys, "--refine=drop")
        assert code == 1
        assert "contradictory" not in out
        assert "feasible" in out and "looped" in out

    def test_demoted_text_is_reordered_not_rewritten(
        self, teeth_tree, capsys
    ):
        __, baseline, __ = run_cli(teeth_tree, capsys)
        __, demoted, __ = run_cli(teeth_tree, capsys, "--refine=demote")
        assert demoted != baseline
        assert sorted(demoted.splitlines()) == \
            sorted(baseline.splitlines())
        assert demoted.splitlines()[-1] == \
            next(line for line in baseline.splitlines()
                 if "contradictory" in line)


class TestStatisticalConfidence:
    class _Log:
        """An ErrorLog stand-in: every rule has identical counts, so
        the z-scores tie and only the confidence tiers separate."""

        def rule_counts(self, rule_id):
            return (10, 1)

    def _report(self, name, verdict=None):
        report = Report("free", "using %s after free!" % name,
                        function=name, variable=name, rule_id="r")
        if verdict is not None:
            report.annotations["feasibility"] = {"verdict": verdict}
        return report

    def test_confidence_tiers(self):
        assert verdict_confidence(self._report("a", "confirmed")) == 0
        assert verdict_confidence(self._report("b")) == 1
        assert verdict_confidence(self._report("c", "unknown")) == 1
        assert verdict_confidence(self._report("d", "infeasible")) == 2

    def test_statistical_rank_orders_by_verdict_confidence(self):
        from repro.ranking.statistical import rank_by_rule_reliability

        reports = [self._report("bad", "infeasible"),
                   self._report("plain"),
                   self._report("good", "confirmed")]
        ranked = rank_by_rule_reliability(reports, self._Log())
        assert [r.function for r in ranked] == ["good", "plain", "bad"]

    def test_unrefined_statistical_order_is_unchanged(self):
        from repro.ranking.statistical import rank_by_rule_reliability

        reports = [self._report("first"), self._report("second"),
                   self._report("third")]
        ranked = rank_by_rule_reliability(list(reports), self._Log())
        assert [r.function for r in ranked] == \
            ["first", "second", "third"]


class TestVerdictCache:
    def test_second_run_serves_every_verdict_from_cache(
        self, teeth_tree, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        cold_stats = tmp_path / "cold.json"
        warm_stats = tmp_path / "warm.json"
        run_cli(teeth_tree, capsys, "--refine=annotate", "--cache-dir",
                cache, "--stats-json", str(cold_stats))
        cold = counters_from(cold_stats)
        assert cold.get("refine_cache_hits", 0) == 0
        assert cold["refine_confirmed"] == 2
        assert cold["refine_infeasible"] == 1

        run_cli(teeth_tree, capsys, "--refine=annotate", "--cache-dir",
                cache, "--stats-json", str(warm_stats))
        warm = counters_from(warm_stats)
        refined = warm["refine_confirmed"] + warm["refine_infeasible"] \
            + warm.get("refine_unknown", 0)
        assert warm["refine_cache_hits"] == refined == 3

    def test_cached_verdicts_equal_fresh_verdicts(
        self, teeth_tree, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        fresh = report_json(teeth_tree, capsys, "--refine=annotate",
                            "--cache-dir", cache)
        cached = report_json(teeth_tree, capsys, "--refine=annotate",
                             "--cache-dir", cache)
        assert verdicts_of(cached) == verdicts_of(fresh)

    def test_function_edit_invalidates_the_cached_verdict(
        self, teeth_tree, tmp_path, capsys
    ):
        # Swap the contradictory guard for a satisfiable one: the report
        # hash is unchanged (hashes exclude bodies) but the fingerprint
        # moves, so the stale infeasible verdict must not replay.
        cache = str(tmp_path / "cache")
        before = report_json(teeth_tree, capsys, "--refine=annotate",
                             "--cache-dir", cache)
        assert verdicts_of(before)["contradictory"] == "infeasible"
        edited = TEETH_TREE["mod.c"].replace("if (x > 4)", "if (x > 3)")
        write_tree(teeth_tree, {"mod.c": edited})
        stats_json = tmp_path / "edited.json"
        docs = report_json(teeth_tree, capsys, "--refine=annotate",
                           "--cache-dir", cache, "--stats-json",
                           str(stats_json))
        assert verdicts_of(docs)["contradictory"] == "confirmed"

    def test_unknown_verdicts_are_never_cached(
        self, teeth_tree, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        with faults.injected([{"site": "refine.budget"}]):
            stats_json = tmp_path / "faulted.json"
            docs = report_json(teeth_tree, capsys, "--refine=annotate",
                               "--cache-dir", cache, "--stats-json",
                               str(stats_json))
            assert set(verdicts_of(docs).values()) == {"unknown"}
            counters = counters_from(stats_json)
            assert counters["refine_unknown"] == 3
            assert counters["refine_budget_hits"] == 3
        # The degraded verdicts were not written back: the next run
        # re-evaluates and lands the real classifications.
        docs = report_json(teeth_tree, capsys, "--refine=annotate",
                           "--cache-dir", cache)
        assert verdicts_of(docs)["contradictory"] == "infeasible"

    def test_injected_evaluator_error_degrades_to_unknown(
        self, teeth_tree, capsys
    ):
        with faults.injected(
            [{"site": "refine.error", "key": "feasible"}]
        ):
            docs = report_json(teeth_tree, capsys, "--refine=annotate")
        verdicts = verdicts_of(docs)
        assert verdicts["feasible"] == "unknown"
        assert verdicts["contradictory"] == "infeasible"


@contextlib.contextmanager
def running_daemon(src_dir, cache_dir, sock_path, refine=None,
                   run_keep=None):
    options = AnalysisOptions()
    signature = session_signature(checker_names=["free"], options=options)
    session = IncrementalSession(str(cache_dir), signature,
                                 pin_warm_state=True)
    daemon = XgccDaemon(
        watch_roots=[str(src_dir)], extension_factory=free_checker_list,
        session=session, socket_path=str(sock_path),
        include_paths=[str(src_dir)], cache_dir=str(cache_dir),
        options=options, poll_interval=30.0, refine=refine,
        run_keep=run_keep,
    )
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    assert wait_for_socket(str(sock_path), timeout=60.0)
    try:
        yield daemon
    finally:
        try:
            with DaemonClient(str(sock_path)) as client:
                client.request("shutdown")
        except Exception:
            daemon.stop()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "daemon thread wedged"


class TestDifferentialParity:
    """Refined output is byte-identical across every driver path, and
    the verdicts themselves never depend on the path that computed
    them."""

    def test_serial_jobs_cold_warm_daemon_agree(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TEETH_TREE)

        __, baseline, __ = run_cli(src, capsys, "--refine=demote")
        base_verdicts = verdicts_of(
            report_json(src, capsys, "--refine=demote")
        )
        assert base_verdicts["contradictory"] == "infeasible"

        __, jobs_out, __ = run_cli(src, capsys, "--refine=demote",
                                   "--jobs", "4")
        assert jobs_out == baseline
        assert verdicts_of(
            report_json(src, capsys, "--refine=demote", "--jobs", "4")
        ) == base_verdicts

        cache = str(tmp_path / "cache")
        __, cold_inc, __ = run_cli(src, capsys, "--refine=demote",
                                   "--incremental", "--cache-dir", cache)
        assert cold_inc == baseline
        __, warm_inc, __ = run_cli(src, capsys, "--refine=demote",
                                   "--incremental", "--cache-dir", cache)
        assert warm_inc == baseline
        assert verdicts_of(
            report_json(src, capsys, "--refine=demote", "--incremental",
                        "--cache-dir", cache)
        ) == base_verdicts

        sock_dir = tempfile.mkdtemp(prefix="xgccd-")
        try:
            sock = os.path.join(sock_dir, "d.sock")
            with running_daemon(src, tmp_path / "dcache", sock,
                                refine="demote") as daemon:
                with DaemonClient(sock) as client:
                    response = client.request("analyze")
                assert response["reports"] == baseline
                assert verdicts_of(
                    [r.to_dict() for r in daemon._last_reports]
                ) == base_verdicts
        finally:
            shutil.rmtree(sock_dir, ignore_errors=True)

    def test_daemon_warm_analyze_reuses_cached_verdicts(
        self, tmp_path, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TEETH_TREE)
        sock_dir = tempfile.mkdtemp(prefix="xgccd-")
        try:
            sock = os.path.join(sock_dir, "d.sock")
            with running_daemon(src, tmp_path / "dcache", sock,
                                refine="annotate") as daemon:
                with DaemonClient(sock) as client:
                    client.request("analyze")
                    # Force a re-analysis over the unchanged tree: the
                    # verdict cache (store summary tier) must serve all
                    # three verdicts.
                    before = daemon.stats.count("refine_cache_hits")
                    client.request("analyze", force=True)
                assert daemon.stats.count("refine_cache_hits") \
                    - before == 3
        finally:
            shutil.rmtree(sock_dir, ignore_errors=True)

    def test_recorded_runs_carry_verdicts(self, teeth_tree, tmp_path,
                                          capsys):
        cache = str(tmp_path / "cache")
        run_cli(teeth_tree, capsys, "--refine=annotate", "--record-run",
                "--cache-dir", cache)
        from repro.driver.store import open_store

        history = RunHistory(open_store(cache_dir=cache))
        docs = history.load_run(history.latest_run_id())["reports"]
        assert verdicts_of(docs)["contradictory"] == "infeasible"


class TestPruneRuns:
    def record_n_runs(self, src, capsys, cache, n):
        for __ in range(n):
            run_cli(src, capsys, "--record-run", "--cache-dir", cache)

    def history(self, cache):
        from repro.driver.store import open_store

        return RunHistory(open_store(cache_dir=cache))

    def test_standalone_prune_bounds_the_history(
        self, teeth_tree, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        self.record_n_runs(teeth_tree, capsys, cache, 3)
        assert len(self.history(cache).run_ids()) == 3
        code = main(["--prune-runs", "2", "--cache-dir", cache])
        assert code == 0
        assert "pruned 1" in capsys.readouterr().err
        assert len(self.history(cache).run_ids()) == 2

    def test_prune_zero_empties_the_history(self, teeth_tree, tmp_path,
                                            capsys):
        cache = str(tmp_path / "cache")
        self.record_n_runs(teeth_tree, capsys, cache, 2)
        code = main(["--prune-runs", "0", "--cache-dir", cache])
        assert code == 0
        assert self.history(cache).run_ids() == []

    def test_negative_prune_is_rejected(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        os.makedirs(cache)
        code = main(["--prune-runs", "-3", "--cache-dir", cache])
        assert code == 2
        assert "keep must be >= 0" in capsys.readouterr().err

    def test_inline_prune_runs_after_record_run(
        self, teeth_tree, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        self.record_n_runs(teeth_tree, capsys, cache, 3)
        run_cli(teeth_tree, capsys, "--record-run", "--prune-runs", "2",
                "--cache-dir", cache)
        # The just-recorded run survives its own prune.
        assert len(self.history(cache).run_ids()) == 2

    def test_daemon_run_keep_bounds_the_history(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TEETH_TREE)
        cache = tmp_path / "dcache"
        sock_dir = tempfile.mkdtemp(prefix="xgccd-")
        try:
            sock = os.path.join(sock_dir, "d.sock")
            with running_daemon(src, cache, sock, run_keep=2):
                with DaemonClient(sock) as client:
                    for __ in range(3):
                        client.request("analyze", force=True)
            history = RunHistory(
                IncrementalSession(
                    str(cache),
                    session_signature(checker_names=["free"],
                                      options=AnalysisOptions()),
                ).backend
            )
            assert len(history.run_ids()) == 2
        finally:
            shutil.rmtree(sock_dir, ignore_errors=True)


class TestHistoryRegressions:
    def seed(self, tmp_path):
        backend = LocalStore(str(tmp_path / "store"))
        history = RunHistory(backend)
        first = [Report("free", "using a after free!", function="f",
                        variable="a")]
        second = [Report("free", "using b after free!", function="g",
                         variable="b")]
        id1 = history.record_run(assign_report_hashes(first))
        id2 = history.record_run(assign_report_hashes(second))
        return history, id1, id2

    def test_blank_run_tokens_are_rejected(self, tmp_path):
        history, __, __ = self.seed(tmp_path)
        for token in ("", "   ", None):
            with pytest.raises(RunHistoryError, match="blank run token"):
                history.resolve_run_id(token)
        # The regression: "" used to prefix-match every stored run and,
        # with exactly one run, silently resolve to it.
        with pytest.raises(RunHistoryError):
            history.diff("", "latest")

    def test_diff_base_label_is_resolved(self, tmp_path):
        history, id1, id2 = self.seed(tmp_path)
        diff = history.diff(id1[:-4], id2[:-4])
        assert diff["base"] == id1
        assert diff["head"] == id2
        diff = history.diff("latest", None, head_reports=[])
        assert diff["base"] == id2
        assert diff["head"] == "current"

    def test_prune_zero_deletes_every_run(self, tmp_path):
        history, __, __ = self.seed(tmp_path)
        assert history.prune(keep=0) == 2
        assert history.run_ids() == []

    def test_prune_negative_keep_is_rejected(self, tmp_path):
        history, __, __ = self.seed(tmp_path)
        with pytest.raises(RunHistoryError, match=">= 0"):
            history.prune(keep=-1)
        assert len(history.run_ids()) == 2
