"""Source locations and diagnostics for the C front end."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Location:
    """A position in a source file (1-based line and column)."""

    filename: str = "<string>"
    line: int = 1
    column: int = 1

    def __str__(self):
        return "%s:%d:%d" % (self.filename, self.line, self.column)


UNKNOWN_LOCATION = Location("<unknown>", 0, 0)


class SourceError(Exception):
    """An error tied to a source location (lex, preprocess, or parse)."""

    def __init__(self, message, location=None):
        self.message = message
        self.location = location or UNKNOWN_LOCATION
        super().__init__("%s: %s" % (self.location, message))


class LexError(SourceError):
    """A tokenization failure."""


class PreprocessorError(SourceError):
    """A preprocessing failure (bad directive, unterminated conditional...)."""


class ParseError(SourceError):
    """A parse failure."""
