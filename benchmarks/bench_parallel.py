"""Parallel driver + persistent AST cache benchmarks (docs/DRIVER.md).

Three series, dumped to ``BENCH_parallel.json``:

- pass-1 wall-clock, serial vs ``jobs=2`` and ``jobs=4``, on generated
  50- and 200-file projects (speedup asserted only when the host has the
  cores to show it);
- cold vs warm cache: the warm run must do *zero* re-parses -- every
  file is a cache hit -- and beat the cold run's wall-clock;
- pass-2 wall-clock, serial vs component-parallel, same-report check.
"""

import json
import os
import time

from repro.codegen.project_gen import default_checkers, generate_project
from repro.driver.project import Project

SUMMARY_PATH = "BENCH_parallel.json"
_summary = {}


def _dump_summary():
    with open(SUMMARY_PATH, "w") as handle:
        json.dump(_summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


def materialize(tmp_path, n_files, functions_per_file=3, seed=7):
    """Write a generated ``n_files``-module project to disk."""
    generated = generate_project(
        seed=seed, n_modules=n_files,
        functions_per_module=functions_per_file, cross_calls=False,
    )
    root = tmp_path / ("proj_%d" % n_files)
    root.mkdir()
    for name, text in generated.files.items():
        (root / name).write_text(text)
    paths = sorted(
        str(root / name) for name in generated.files if name.endswith(".c")
    )
    return str(root), paths


def timed_pass1(root, paths, jobs, cache_dir=None):
    project = Project(include_paths=[root], cache_dir=cache_dir)
    start = time.perf_counter()
    project.compile_files(paths, jobs=jobs)
    return time.perf_counter() - start, project


def test_pass1_scaling(benchmark, tmp_path):
    cores = os.cpu_count() or 1
    print("\npass-1 wall-clock (serial vs parallel), %d cores:" % cores)
    rows = {}
    for n_files in (50, 200):
        root, paths = materialize(tmp_path, n_files)
        row = {}
        for jobs in (1, 2, 4):
            elapsed, project = timed_pass1(root, paths, jobs)
            assert len(project.compiled) == n_files
            row["jobs%d" % jobs] = round(elapsed, 4)
        speedup4 = row["jobs1"] / row["jobs4"]
        print("  %3d files: serial %.2fs  jobs=2 %.2fs  jobs=4 %.2fs  "
              "(x%.2f at 4)" % (n_files, row["jobs1"], row["jobs2"],
                                row["jobs4"], speedup4))
        row["speedup_jobs4"] = round(speedup4, 2)
        rows["%d_files" % n_files] = row
        if n_files == 200 and cores >= 4:
            # The fan-out claim, only meaningful with real parallelism.
            assert speedup4 >= 1.5
    _summary["pass1_scaling"] = rows
    _summary["cores"] = cores
    _dump_summary()
    root, paths = materialize(tmp_path, 10, seed=9)
    benchmark(timed_pass1, root, paths, 1)


def test_incremental_cache(benchmark, tmp_path):
    n_files = 50
    root, paths = materialize(tmp_path, n_files, seed=21)
    cache_dir = str(tmp_path / "astcache")

    cold_s, cold = timed_pass1(root, paths, 1, cache_dir=cache_dir)
    warm_s, warm = timed_pass1(root, paths, 1, cache_dir=cache_dir)

    print("\nincremental cache, %d files: cold %.2fs -> warm %.2fs (x%.1f)"
          % (n_files, cold_s, warm_s, cold_s / warm_s))
    assert cold.stats.count("parses") == n_files
    # A warm cache turns pass 1 into pure load_emitted work.
    assert warm.stats.count("parses") == 0
    assert warm.stats.count("cache_hits") == n_files
    assert warm_s < cold_s
    assert warm.total_source_bytes() == cold.total_source_bytes()
    _summary["incremental_cache"] = {
        "files": n_files,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2),
    }
    _dump_summary()
    benchmark(timed_pass1, root, paths, 1, cache_dir)


def test_pass2_components(benchmark, tmp_path):
    root, paths = materialize(tmp_path, 12, functions_per_file=5, seed=4)

    def analyze(jobs):
        project = Project(include_paths=[root])
        project.compile_files(paths)
        start = time.perf_counter()
        result = project.run(default_checkers(), jobs=jobs,
                             extension_factory=default_checkers)
        return time.perf_counter() - start, project, result

    serial_s, __, serial_result = analyze(1)
    parallel_s, parallel, parallel_result = analyze(4)
    keys = lambda result: [  # noqa: E731
        (r.message, r.location.filename, r.location.line)
        for r in result.reports
    ]
    assert keys(parallel_result) == keys(serial_result)
    assert parallel.stats.count("pass2_components") > 1

    print("\npass-2, %d components: serial %.2fs, jobs=4 %.2fs"
          % (parallel.stats.count("pass2_components"), serial_s, parallel_s))
    _summary["pass2_components"] = {
        "components": parallel.stats.count("pass2_components"),
        "serial_s": round(serial_s, 4),
        "jobs4_s": round(parallel_s, 4),
        "reports": len(serial_result.reports),
    }
    _dump_summary()
    benchmark(analyze, 1)
