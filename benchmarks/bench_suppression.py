"""§8 targeted suppression and history suppression.

* Targeted: the conservative free checker's two documented false-positive
  classes (debug printers; &v reinitializers) disappear with the
  checker-local suppression ("We added eight lines of code").
* History: reports judged false in version N stay suppressed in version
  N+1 despite edits that move every line number.

Both run on the consolidated triage path (repro.reports.triage): the
checker-local suppressions are built from the shared SM helpers, and
history suppression is a TriageStore history-kind entry (HistoryDatabase
is a façade over the same store).
"""

from conftest import analyze

from repro.checkers.free import free_checker, suppressed_free_checker
from repro.engine.history import HistoryDatabase
from repro.reports.triage import TriageStore

FP_CODE = """
int debug_path(int *p) {
    kfree(p);
    printk(p);          /* FP class 1: debug print of freed pointer */
    return 0;
}
int bsd_path(int *p) {
    kfree(p);
    reinit(&p);         /* FP class 2: address passed to reinitializer */
    return *p;
}
int real_bug(int *p) {
    kfree(p);
    return *p;          /* genuine use-after-free */
}
"""


def conservative_free():
    """A deliberately conservative variant: ANY use of a freed pointer
    (deref or argument) is an error -- the §8 starting point."""
    from repro.cfront import astnodes as ast
    from repro.metal import ANY_POINTER, Extension
    from repro.metal.patterns import Callout

    ext = Extension("free_checker")
    ext.state_var("v", ANY_POINTER)
    ext.transition("start", "{ kfree(v) }", to="v.freed")

    def any_use(context):
        obj = context.bindings.get("v")
        point = context.point
        if obj is None:
            return False
        if isinstance(point, ast.Call):
            key = ast.structural_key(obj)
            addr = ast.structural_key(ast.Unary("&", obj))
            return any(
                ast.structural_key(a) in (key, addr) for a in point.args
            )
        from repro.metal.callouts import mc_is_deref_of

        return mc_is_deref_of(point, obj)

    ext.transition(
        "v.freed", Callout(any_use, "any use"), to="v.stop",
        action=lambda ctx: ctx.err("using %s after free!", ctx.identifier("v")),
    )
    return ext


def test_targeted_suppression(benchmark):
    conservative_result, __ = analyze(FP_CODE, conservative_free())
    suppressed_result, __ = analyze(FP_CODE, suppressed_free_checker())

    conservative_fns = sorted(r.function for r in conservative_result.reports)
    suppressed_fns = sorted(r.function for r in suppressed_result.reports)

    print("\ntargeted suppression (§8):")
    print("  conservative checker flags: %s" % conservative_fns)
    print("  suppressed checker flags:   %s" % suppressed_fns)

    assert "debug_path" in conservative_fns
    assert "bsd_path" in conservative_fns
    assert suppressed_fns == ["real_bug"]

    benchmark(analyze, FP_CODE, suppressed_free_checker())


V1 = """
int f(int *p) {
    kfree(p);
    debug_dump(p);
    return 0;
}
"""

V2 = """
/* version 2: a refactor added 40 lines of new code above f */
int shiny_new_feature(int x) { return x * 2; }

int f(int *p) {
    kfree(p);
    debug_dump(p);
    return 0;
}
int g(int *q) {
    kfree(q);
    return *q;
}
"""


def test_history_suppression(benchmark):
    checker = conservative_free()
    v1_result, __ = analyze(V1, checker, filename="dev.c")
    assert len(v1_result.reports) == 1

    triage = TriageStore()
    triage.suppress_history(  # inspected: false positive
        v1_result.reports[0].history_key(), reason="debug print"
    )
    # The legacy façade reads the same store: one predicate, one format.
    assert HistoryDatabase(triage).is_suppressed(v1_result.reports[0])

    def analyze_v2():
        result, __ = analyze(V2, conservative_free(), filename="dev.c")
        return triage.filter(result.reports)

    surviving = benchmark(analyze_v2)
    print("\nhistory suppression across versions:")
    print("  v1 reports: 1 (marked FP after inspection)")
    print("  v2 raw reports: 2; after history filter: %d (%s)"
          % (len(surviving), [r.function for r in surviving]))
    assert [r.function for r in surviving] == ["g"]
