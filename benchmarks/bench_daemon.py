"""Analysis-daemon benchmarks: cold start vs warm-edit latency.

Dumped to ``BENCH_daemon.json``: on a generated multi-module project,
end-to-end request latency over the daemon's UNIX socket for

- the cold first ``analyze`` (empty caches: full pass 1 + full pass 2),
- a warm no-edit ``analyze`` (served from the cached response),
- warm ``analyze`` after each of three seeded one-function edit bursts
  (only the edited file reparses, only its cone re-analyzes),

against the *solo* dirty-cone baseline: a fresh ``xgcc --incremental``
style run over the same edited tree (warm AST + summary caches, new
process state), which is what a daemon-less workflow pays per edit.

The shape assertions are the ISSUE acceptance criteria: every
daemon-served report text is byte-identical to a cold serial run over
the same tree, and the warm-edit daemon latency is at or below the
measured solo dirty-cone analysis time.
"""

import functools
import json
import statistics
import threading
import time

from repro.codegen.project_gen import apply_function_edits, generate_project
from repro.driver.cli import _build_extensions
from repro.driver.daemon import DaemonClient, XgccDaemon, wait_for_socket
from repro.driver.project import Project
from repro.driver.session import IncrementalSession, session_signature
from repro.ranking.severity import stratify

SUMMARY_PATH = "BENCH_daemon.json"
_summary = {}

CHECKER_NAMES = ("free", "lock")
bench_checkers = functools.partial(_build_extensions, CHECKER_NAMES, ())


def _dump_summary():
    with open(SUMMARY_PATH, "w") as handle:
        json.dump(_summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


def materialize(tmp_path, generated, name):
    root = tmp_path / name
    root.mkdir(exist_ok=True)
    for filename, text in generated.files.items():
        (root / filename).write_text(text)
    return str(root), sorted(
        str(root / filename)
        for filename in generated.files if filename.endswith(".c")
    )


def cold_serial_text(root, paths):
    """The ranked report text of a cacheless, sessionless serial run --
    the byte baseline every daemon answer must reproduce."""
    project = Project(include_paths=[root])
    project.compile_files(paths)
    result = project.run(bench_checkers())
    return "".join(r.format() + "\n" for r in stratify(result.reports))


def timed_solo_edit_run(root, paths, cache_dir):
    """What a daemon-less incremental workflow pays per edit: process-
    fresh project + session over warm caches (pass-1 probe of every
    file, manifest load, dirty-cone pass 2)."""
    start = time.perf_counter()
    project = Project(include_paths=[root], cache_dir=cache_dir)
    project.compile_files(paths)
    session = IncrementalSession(
        cache_dir, session_signature(checker_names=list(CHECKER_NAMES))
    )
    project.run(bench_checkers(), incremental=session)
    return time.perf_counter() - start


def timed_request(client, op, **fields):
    start = time.perf_counter()
    reply = client.request(op, **fields)
    return time.perf_counter() - start, reply


def test_daemon_cold_start_vs_warm_edit(benchmark, tmp_path):
    generated = generate_project(
        seed=13, n_modules=5, functions_per_module=40, bug_rate=0.1
    )
    root, paths = materialize(tmp_path, generated, "proj")
    cache_dir = str(tmp_path / "cache")
    solo_cache = str(tmp_path / "solo-cache")
    sock = str(tmp_path / "d.sock")

    session = IncrementalSession(
        cache_dir,
        session_signature(checker_names=list(CHECKER_NAMES)),
        pin_warm_state=True,
    )
    daemon = XgccDaemon(
        watch_roots=[root], extension_factory=bench_checkers,
        session=session, socket_path=sock, include_paths=[root],
        cache_dir=cache_dir, poll_interval=30.0,
    )
    thread = threading.Thread(
        target=lambda: daemon.serve_forever(warm_start=False), daemon=True
    )
    thread.start()
    assert wait_for_socket(sock, timeout=60.0)

    try:
        with DaemonClient(sock) as client:
            cold_s, cold = timed_request(client, "analyze")
            assert cold["ok"]
            assert cold["reports"] == cold_serial_text(root, paths)
            warm_s, warm = timed_request(client, "analyze")
            assert warm["served_from"] == "cache"

            # Warm the solo baseline's caches with its own cold run.
            timed_solo_edit_run(root, paths, solo_cache)

            bursts = []
            for seed in (1, 2, 3):
                generated, edits = apply_function_edits(
                    generated, k=1, seed=seed
                )
                root, paths = materialize(tmp_path, generated, "proj")
                edit_s, resp = timed_request(client, "analyze")
                assert resp["ok"]
                assert resp["served_from"] == "analysis"
                assert resp["reports"] == cold_serial_text(root, paths)
                solo_s = timed_solo_edit_run(root, paths, solo_cache)
                bursts.append({
                    "daemon_s": round(edit_s, 4),
                    "daemon_internal_s": resp["latency_s"],
                    "solo_dirty_cone_s": round(solo_s, 4),
                    "files_reparsed": resp["files_reparsed"],
                    "roots_analyzed": resp["roots_analyzed"],
                    "roots_replayed": resp["roots_replayed"],
                    "byte_identical": True,
                })
            client.request("shutdown")
    finally:
        daemon.stop()
        thread.join(timeout=30.0)
    assert not thread.is_alive()

    daemon_med = statistics.median(b["daemon_s"] for b in bursts)
    solo_med = statistics.median(b["solo_dirty_cone_s"] for b in bursts)
    rows = {
        "total_files": len(paths),
        "cold_start_s": round(cold_s, 4),
        "warm_no_edit_s": round(warm_s, 4),
        "warm_edit_bursts": bursts,
        "warm_edit_median_s": round(daemon_med, 4),
        "solo_dirty_cone_median_s": round(solo_med, 4),
        "speedup_vs_cold_start": round(cold_s / max(daemon_med, 1e-9), 2),
        "speedup_vs_solo": round(solo_med / max(daemon_med, 1e-9), 2),
    }
    print("\ndaemon latency, %d files:" % len(paths))
    print("  cold start    %.3fs" % cold_s)
    print("  warm no-edit  %.4fs" % warm_s)
    print("  warm 1-edit   %.4fs median  (solo dirty-cone %.3fs, x%.1f)"
          % (daemon_med, solo_med, rows["speedup_vs_solo"]))

    # Acceptance: warm-edit daemon latency at or below the measured
    # dirty-cone analysis time of a daemon-less incremental run.
    assert daemon_med <= solo_med
    assert all(b["daemon_s"] <= b["solo_dirty_cone_s"] for b in bursts)
    assert warm_s < cold_s
    _summary["daemon"] = rows
    _dump_summary()

    # Microbenchmark: the warm no-edit request round-trip.
    with DaemonClient2(sock_dir=tmp_path) as rig:
        benchmark(rig.warm_request)


class DaemonClient2:
    """A tiny self-contained daemon rig for the pytest-benchmark timer
    (fresh socket, small project, warm cached response)."""

    def __init__(self, sock_dir):
        src = sock_dir / "micro"
        src.mkdir(exist_ok=True)
        (src / "a.c").write_text(
            "void a_fn(int *p) { kfree(p); kfree(p); }\n"
        )
        cache = str(sock_dir / "micro-cache")
        self.sock = str(sock_dir / "micro.sock")
        session = IncrementalSession(
            cache,
            session_signature(checker_names=list(CHECKER_NAMES)),
            pin_warm_state=True,
        )
        self.daemon = XgccDaemon(
            watch_roots=[str(src)], extension_factory=bench_checkers,
            session=session, socket_path=self.sock,
            include_paths=[str(src)], cache_dir=cache, poll_interval=30.0,
        )
        self.thread = threading.Thread(
            target=self.daemon.serve_forever, daemon=True
        )

    def __enter__(self):
        self.thread.start()
        assert wait_for_socket(self.sock, timeout=60.0)
        self.client = DaemonClient(self.sock)
        return self

    def warm_request(self):
        reply = self.client.request("analyze")
        assert reply["ok"]

    def __exit__(self, *exc):
        try:
            self.client.request("shutdown")
        except Exception:
            self.daemon.stop()
        finally:
            self.client.close()
        self.thread.join(timeout=30.0)
        return False
