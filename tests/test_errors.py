"""ErrorReport / ErrorLog unit tests."""

from repro.cfront.source import Location
from repro.engine.errors import ErrorLog, ErrorReport


def report(line=5, column=2, message="m", checker="c", **kw):
    return ErrorReport(checker, message, Location("f.c", line, column), **kw)


class TestErrorReport:
    def test_distance_same_file(self):
        r = report(line=30, origin_location=Location("f.c", 10, 1))
        assert r.distance == 20

    def test_distance_cross_file(self):
        r = report(line=5, origin_location=Location("other.c", 5, 1))
        assert r.distance == 1000

    def test_distance_without_origin(self):
        assert report().distance == 0

    def test_is_local(self):
        assert report(call_chain=0).is_local
        assert not report(call_chain=2).is_local

    def test_identity_includes_position(self):
        assert report(line=5).identity() != report(line=6).identity()
        assert report(column=2).identity() == report(column=2).identity()

    def test_history_key_excludes_position(self):
        a = report(line=5, function="f", variable="p")
        b = report(line=500, function="f", variable="p")
        assert a.history_key() == b.history_key()

    def test_format_contains_location_and_checker(self):
        text = report(function="fn").format()
        assert "f.c:5:2" in text
        assert "in fn" in text

    def test_why_trace(self):
        r = report(trace=[("entered state v.freed", Location("f.c", 3, 1)),
                          ("became a synonym of p", Location("f.c", 4, 1))])
        text = r.format_trace()
        assert "entered state v.freed at f.c:3:1" in text
        assert "became a synonym of p at f.c:4:1" in text

    def test_engine_populates_trace(self):
        from conftest import run_checker
        from repro.checkers import free_checker

        code = "int f(int *p) { int *q; kfree(p); q = p; return *q; }"
        result = run_checker(code, free_checker())
        trace_events = [event for event, __ in result.reports[0].trace]
        assert trace_events[0].startswith("entered state v.freed")
        assert any("synonym" in event for event in trace_events)


class TestErrorLog:
    def test_dedup(self):
        log = ErrorLog()
        assert log.add(report()) is not None
        assert log.add(report()) is None  # same identity: dropped
        assert len(log) == 1

    def test_different_lines_kept(self):
        log = ErrorLog()
        log.add(report(line=1))
        log.add(report(line=2))
        assert len(log) == 2

    def test_counters(self):
        log = ErrorLog()
        log.count_example("rule", Location("f.c", 1, 1))
        log.count_example("rule", Location("f.c", 2, 1))
        log.count_violation("rule", Location("f.c", 3, 1))
        assert log.rule_counts("rule") == (2, 1)

    def test_counters_dedup_sites(self):
        log = ErrorLog()
        site = Location("f.c", 1, 1)
        log.count_example("rule", site)
        log.count_example("rule", Location("f.c", 1, 1))
        assert log.rule_counts("rule") == (1, 0)

    def test_unknown_rule(self):
        assert ErrorLog().rule_counts("nothing") == (0, 0)

    def test_iteration(self):
        log = ErrorLog()
        log.add(report(line=1))
        log.add(report(line=2))
        assert len(list(log)) == 2
