"""Two-pass driver and CLI tests (§6)."""

import os

import pytest

from repro.driver.cli import main
from repro.driver.project import Project


MODULE_A = """
#define LOCKDEP 1
#include "shared.h"

static int module_counter;

int handler_a(struct device *dev) {
    lock(&dev->lck);
    dev->count = dev->count + 1;
    unlock(&dev->lck);
    return 0;
}
"""

MODULE_B = """
#include "shared.h"

int handler_b(struct device *dev, int err) {
    lock(&dev->lck);
    if (err)
        return -1;
    unlock(&dev->lck);
    return 0;
}
"""

SHARED_H = "struct device { int count; int lck; };\n"


@pytest.fixture
def source_tree(tmp_path):
    (tmp_path / "shared.h").write_text(SHARED_H)
    (tmp_path / "a.c").write_text(MODULE_A)
    (tmp_path / "b.c").write_text(MODULE_B)
    return tmp_path


class TestTwoPass:
    def test_pass1_emits_asts(self, source_tree, tmp_path):
        emit_dir = str(tmp_path / "emitted")
        project = Project(include_paths=[str(source_tree)], emit_dir=emit_dir)
        project.compile_file(str(source_tree / "a.c"))
        assert os.path.exists(os.path.join(emit_dir, "a.c.ast"))

    def test_emitted_files_larger_than_source(self, source_tree):
        # §6: emitted AST files "are typically four or five times larger
        # than the text representation" -- ours are at least that.
        project = Project(include_paths=[str(source_tree)])
        compiled = project.compile_file(str(source_tree / "a.c"))
        assert compiled.expansion_ratio > 2.0

    def test_pass2_reassembles(self, source_tree, tmp_path):
        emit_dir = str(tmp_path / "emitted")
        pass1 = Project(include_paths=[str(source_tree)], emit_dir=emit_dir)
        pass1.compile_file(str(source_tree / "a.c"))
        pass1.compile_file(str(source_tree / "b.c"))

        pass2 = Project()
        pass2.load_emitted(os.path.join(emit_dir, "a.c.ast"))
        pass2.load_emitted(os.path.join(emit_dir, "b.c.ast"))
        assert set(pass2.callgraph.functions) == {"handler_a", "handler_b"}

    def test_static_vars_registered(self, source_tree):
        project = Project(include_paths=[str(source_tree)])
        project.compile_file(str(source_tree / "a.c"))
        assert "module_counter" in project.static_vars

    def test_whole_project_analysis(self, source_tree):
        from repro.checkers import lock_checker

        project = Project(include_paths=[str(source_tree)])
        project.compile_file(str(source_tree / "a.c"))
        project.compile_file(str(source_tree / "b.c"))
        result = project.run(lock_checker())
        assert [r.function for r in result.reports] == ["handler_b"]

    def test_load_emitted_keeps_size_accounting(self, source_tree, tmp_path):
        emit_dir = str(tmp_path / "emitted")
        pass1 = Project(include_paths=[str(source_tree)], emit_dir=emit_dir)
        original = pass1.compile_file(str(source_tree / "a.c"))

        pass2 = Project()
        loaded = pass2.load_emitted(os.path.join(emit_dir, "a.c.ast"))
        assert loaded is pass2.compiled[0]
        assert loaded.from_cache
        assert loaded.source_bytes == original.source_bytes > 0
        assert loaded.emitted_bytes == os.path.getsize(
            os.path.join(emit_dir, "a.c.ast")
        )
        assert pass2.total_source_bytes() == original.source_bytes
        assert loaded.expansion_ratio == pytest.approx(
            original.expansion_ratio
        )

    def test_callgraph_built_once_per_batch(self, source_tree, monkeypatch):
        from repro.cfg.callgraph import CallGraph

        builds = []
        original = CallGraph.from_units.__func__

        def counting(cls, units):
            builds.append(len(list(units)))
            return original(cls, units)

        monkeypatch.setattr(CallGraph, "from_units", classmethod(counting))

        project = Project(include_paths=[str(source_tree)])
        project.compile_files(
            [str(source_tree / "a.c"), str(source_tree / "b.c")]
        )
        project.callgraph
        project.callgraph  # cached: still one build for the batch
        assert builds == [2]

        # Registering another unit invalidates the cached graph.
        project.compile_file(str(source_tree / "a.c"))
        project.callgraph
        assert builds == [2, 3]


class TestCLI:
    def test_list_checkers(self, capsys):
        assert main(["--list-checkers"]) == 0
        out = capsys.readouterr().out
        assert "free" in out and "lock" in out

    def test_run_builtin_checker(self, source_tree, capsys):
        code = main(
            [
                "--checker", "lock",
                "-I", str(source_tree),
                str(source_tree / "a.c"),
                str(source_tree / "b.c"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # errors found
        assert "never released" in out
        assert "handler_b" in out

    def test_clean_run_returns_zero(self, source_tree, capsys):
        code = main(
            ["--checker", "lock", "-I", str(source_tree), str(source_tree / "a.c")]
        )
        assert code == 0

    def test_metal_file(self, source_tree, tmp_path, capsys):
        metal = tmp_path / "leak.metal"
        metal.write_text(
            "sm leak {\n"
            " state decl any_pointer l;\n"
            " start: { lock(l) } ==> l.held ;\n"
            " l.held: { unlock(l) } ==> l.stop\n"
            '  | $end_of_path$ ==> l.stop, { err("held at exit"); } ;\n'
            "}\n"
        )
        code = main(
            [
                "--metal", str(metal),
                "-I", str(source_tree),
                str(source_tree / "b.c"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "held at exit" in out

    def test_engine_toggles(self, source_tree, capsys):
        code = main(
            [
                "--checker", "lock",
                "--no-false-path-pruning",
                "--no-synonyms",
                "--stats",
                "-I", str(source_tree),
                str(source_tree / "a.c"),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "points_visited" in err

    def test_history_suppression(self, source_tree, tmp_path, capsys):
        from repro.engine.history import HistoryDatabase

        db = HistoryDatabase()
        db.suppress_key(
            "lock_checker",
            str(source_tree / "b.c"),
            "handler_b",
            "&dev->lck",
            "lock &dev->lck never released!",
        )
        history = tmp_path / "hist.json"
        db.save(str(history))
        code = main(
            [
                "--checker", "lock",
                "--history", str(history),
                "-I", str(source_tree),
                str(source_tree / "b.c"),
            ]
        )
        assert code == 0

    def test_json_format(self, tmp_path, capsys):
        import json

        src = tmp_path / "j.c"
        src.write_text("int f(int *p) { kfree(p); return *p; }\n")
        code = main(["--checker", "free", "--format", "json", str(src)])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 1
        assert data[0]["checker"] == "free_checker"
        assert data[0]["function"] == "f"
        assert data[0]["trace"][0]["event"].startswith("entered state")

    def test_trace_format(self, tmp_path, capsys):
        src = tmp_path / "t.c"
        src.write_text(
            "int f(int *p) { int *q; kfree(p); q = p; return *q; }\n"
        )
        code = main(["--checker", "free", "--trace", str(src)])
        assert code == 1
        out = capsys.readouterr().out
        assert "entered state v.freed" in out
        assert "synonym" in out

    def test_infer_pairs_mode(self, tmp_path, capsys):
        src = tmp_path / "pairs.c"
        src.write_text(
            "int a1(int *l) { grab(l); work(); drop(l); return 0; }\n"
            "int a2(int *l) { grab(l); drop(l); return 0; }\n"
            "int a3(int *l) { grab(l); work(); drop(l); return 0; }\n"
            "int a4(int *l) { grab(l); work(); drop(l); return 0; }\n"
            "int bad(int *l) { grab(l); work(); return 0; }\n"
        )
        code = main(["--infer", "pairs", str(src)])
        captured = capsys.readouterr()
        assert code == 1
        assert "grab() called without a matching drop()" in captured.out
        assert "inferred rule" in captured.err

    def test_infer_retcheck_mode(self, tmp_path, capsys):
        src = tmp_path / "ret.c"
        src.write_text(
            "int open_dev(int n);\n"
            "int a(int n) { if (open_dev(n) < 0) return -1; return 0; }\n"
            "int b(int n) { return open_dev(n); }\n"
            "int c(int n) { int fd = open_dev(n); return fd; }\n"
            "int d(int n) { if (open_dev(n)) return 1; return 0; }\n"
            "int bad(int n) { open_dev(n); return 0; }\n"
        )
        code = main(["--infer", "retcheck", str(src)])
        captured = capsys.readouterr()
        assert code == 1
        assert "result of open_dev() ignored" in captured.out

    def test_infer_nullarg_mode(self, tmp_path, capsys):
        src = tmp_path / "na.c"
        src.write_text(
            "struct s { int x; };\n"
            "int a(struct s *p) { register_dev(p); return 0; }\n"
            "int b(struct s *p) { register_dev(p); return 0; }\n"
            "int c(struct s *p) { register_dev(p); return 0; }\n"
            "int d(struct s *p) { register_dev(p); return 0; }\n"
            "int bad(void) { register_dev(0); return 0; }\n"
        )
        code = main(["--infer", "nullarg", str(src)])
        captured = capsys.readouterr()
        assert code == 1
        assert "NULL passed as argument 0 of register_dev()" in captured.out

    def test_define_flag(self, tmp_path, capsys):
        src = tmp_path / "c.c"
        src.write_text(
            "#ifdef BUGGY\n"
            "int f(int *p) { kfree(p); return *p; }\n"
            "#else\n"
            "int f(int *p) { kfree(p); return 0; }\n"
            "#endif\n"
        )
        assert main(["--checker", "free", str(src)]) == 0
        assert main(["--checker", "free", "-D", "BUGGY", str(src)]) == 1
