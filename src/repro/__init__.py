"""metal/xgcc reproduction: system-specific static analysis (PLDI 2002).

Public API sketch::

    from repro import Analysis, compile_metal, parse_c

    checker = compile_metal(open("free.metal").read())
    result = Analysis([parse_c(open("dev.c").read(), "dev.c")]).run(checker)
    for report in result.reports:
        print(report.format())

Subpackages: :mod:`repro.cfront` (C front end), :mod:`repro.cfg` (CFGs and
call graph), :mod:`repro.metal` (the extension language), :mod:`repro.engine`
(the analysis engine), :mod:`repro.ranking`, :mod:`repro.checkers`,
:mod:`repro.driver` (two-pass build + CLI), :mod:`repro.codegen` (workload
generation).
"""

__version__ = "1.0.0"

from repro.cfront.parser import parse as parse_c
from repro.engine.analysis import Analysis, AnalysisOptions, AnalysisResult
from repro.metal.language import compile_metal
from repro.metal.sm import Extension

__all__ = [
    "__version__",
    "parse_c",
    "Analysis",
    "AnalysisOptions",
    "AnalysisResult",
    "compile_metal",
    "Extension",
]
