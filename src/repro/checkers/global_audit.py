"""A §7.1-style global checker: cross-root duplicate audit tags.

Kernel-style code marks security-relevant entry points with
``audit(TAG)`` calls; each integer tag must be claimed by exactly one
function, so the audit log stays attributable.  Verifying that is a
*global* rule: no single root can see the conflict, the checker has to
accumulate first-claimants across every root it visits (metal's global C
variables — ``ctx.globals`` here) and report a duplicate when a later
root re-uses a tag.

That makes it exactly the shape of extension the incremental session
historically refused to cache (it both reads and writes user globals on
every audited root, and its reports depend on serial root order), which
is what the annotation-delta machinery exists for — this checker is the
differential workload for it.
"""

from repro.cfront import astnodes as ast
from repro.metal import ANY_ARGUMENTS, ANY_FN_CALL, Extension
from repro.metal.patterns import AndPattern, Callout

DEFAULT_AUDIT_FUNCTION = "audit"


def audit_checker(audit_function=DEFAULT_AUDIT_FUNCTION):
    """Flag integer audit tags claimed by more than one function.

    First claimant wins (deterministic: serial root order); every later
    claim from a *different* function reports a duplicate.  Repeated
    claims inside one function are fine (loops, branches).
    """
    ext = Extension("audit_tags")
    ext.decl("fn", ANY_FN_CALL)
    ext.decl("args", ANY_ARGUMENTS)

    def is_audit_call(context):
        node = context.bindings.get("fn")
        return isinstance(node, ast.Ident) and node.name == audit_function

    def record_tag(ctx):
        args = ctx.bindings.get("args") or []
        if not args or not isinstance(args[0], ast.IntLit):
            return
        tag = args[0].value
        here = ctx.function
        owners = ctx.globals.get("tag_owners")
        if owners is None:
            owners = {}
            ctx.globals["tag_owners"] = owners
        first = owners.get(tag)
        if first is None:
            owners[tag] = here
        elif first != here:
            ctx.err(
                "audit tag %d already claimed by %s()" % (tag, first),
                severity="ERROR",
                rule_id="audit-tag-%d" % tag,
            )

    pattern = AndPattern(
        ext._compile_pattern_text("{ fn(args) }"),
        Callout(is_audit_call, "call to the audit function"),
    )
    ext.transition("start", pattern, action=record_tag)
    return ext
