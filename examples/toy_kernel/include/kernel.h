/* Shared declarations for the toy kernel modules. */
#ifndef TOY_KERNEL_H
#define TOY_KERNEL_H

#define MAX_DEVICES 16
#define RING_SIZE   64
#define EIO         5
#define EINVAL      22

#define DEV_FLAG_BUSY   1
#define DEV_FLAG_DEAD   2

struct spinlock { int raw; };

struct device {
    int id;
    int flags;
    int refcnt;
    struct spinlock lck;
    char *buf;
    struct device *next;
};

struct ring {
    int head;
    int tail;
    struct spinlock lck;
    char *slots[RING_SIZE];
};

/* primitives the checkers know about */
void lock(struct spinlock *l);
void unlock(struct spinlock *l);
int trylock(struct spinlock *l);
void *kmalloc(int n);
void kfree(void *p);
int get_user_int(int cmd);
char *get_user_ptr(int cmd);
int copy_from_user(void *dst, void *src, int n);
void panic(const char *msg);
void printk(const char *fmt, ...);

#endif
