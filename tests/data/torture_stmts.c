/* Statement torture: control flow in every shape. */

int collatz_steps(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0)
            n = n / 2;
        else
            n = 3 * n + 1;
        steps++;
        if (steps > 1000)
            break;
    }
    return steps;
}

int classify(int c) {
    switch (c) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
        return 1;
    case '0':
        return 2;
    default:
        if (c < 0)
            return -1;
        return 0;
    }
}

int nested_loops(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        for (int j = i; j < n; j++) {
            if ((i + j) % 7 == 0)
                continue;
            do {
                total += i * j;
            } while (0);
        }
        if (total > 10000)
            goto overflow;
    }
    return total;
overflow:
    return -1;
}

int ternaries(int a, int b, int c) {
    int max = a > b ? (a > c ? a : c) : (b > c ? b : c);
    int sign = max < 0 ? -1 : max > 0 ? 1 : 0;
    return sign * max;
}

int commas(int n) {
    int i, j;
    for (i = 0, j = n; i < j; i++, j--)
        ;
    return i;
}

int shortcircuit(int *p, int n) {
    if (p && *p > 0 && n / *p > 2)
        return 1;
    if (!p || n == 0)
        return -1;
    return 0;
}
