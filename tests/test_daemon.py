"""Analysis-daemon (xgccd) tests: watcher, protocol, differential
parity, fault matrix, and the cache-GC / locking fixes that ride along.

Covers: content-fingerprint watching (no mtime trust, notify hints,
removals, injected stalls), the UNIX-socket request/response protocol
(analyze / stats / gc / notify / ping / shutdown, undecodable requests),
daemon-vs-cold byte-identity across seeded edit bursts, warm-state reuse
bounds (only changed files reparse, only the dirty cone re-analyzes),
the daemon fault matrix (watcher stall, request-decode fault, mid-burst
analysis crash -- degrade, never wedge), the GC pin-race fix (a rival
manifest merge landing between scan and sweep is honoured), the
lockfile fallback where ``fcntl`` is unavailable, and warm-load mtime
touching (frames a daemon replays daily never age out).
"""

import contextlib
import functools
import json
import os
import shutil
import tempfile
import threading
import time

import pytest

from repro import faults
from repro.codegen.project_gen import apply_function_edits, generate_project
from repro.driver import cache as astcache
from repro.driver.cli import _build_extensions, main
from repro.driver.daemon import (
    DaemonClient,
    DaemonError,
    XgccDaemon,
    wait_for_socket,
)
from repro.driver.session import IncrementalSession, session_signature
from repro.driver.stats import DriverStats
from repro.driver.watch import TreeWatcher, WatcherError, fingerprint_file
from repro.engine.analysis import AnalysisOptions

#: The CLI-default extension list for ``--checker free --checker lock``
#: (top-level partial so it pickles into workers if ever needed).
cli_checkers = functools.partial(_build_extensions, ("free", "lock"), ())


def write_tree(dirpath, files):
    for name, text in files.items():
        with open(os.path.join(str(dirpath), name), "w") as handle:
            handle.write(text)


def c_paths(dirpath):
    return sorted(
        os.path.join(str(dirpath), name)
        for name in os.listdir(str(dirpath))
        if name.endswith(".c")
    )


def cold_output(dirpath, capsys):
    """What a cold, serial, cache-less ``xgcc`` run prints (the byte
    baseline daemon responses must match)."""
    main(["--checker", "free", "--checker", "lock", "-I", str(dirpath)]
         + c_paths(dirpath))
    return capsys.readouterr().out


@pytest.fixture
def sock_dir():
    # AF_UNIX socket paths are length-limited (~108 bytes); pytest
    # tmp_path can blow that, so sockets live in their own short dir.
    path = tempfile.mkdtemp(prefix="xgccd-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


@contextlib.contextmanager
def running_daemon(src_dir, cache_dir, sock_path, options=None, **kwargs):
    """A daemon serving in a background thread; always shut down."""
    options = options or AnalysisOptions()
    signature = session_signature(
        checker_names=["free", "lock"], options=options
    )
    session = IncrementalSession(str(cache_dir), signature,
                                 pin_warm_state=True)
    daemon = XgccDaemon(
        watch_roots=[str(src_dir)], extension_factory=cli_checkers,
        session=session, socket_path=str(sock_path),
        include_paths=[str(src_dir)], cache_dir=str(cache_dir),
        options=options, poll_interval=kwargs.pop("poll_interval", 30.0),
        **kwargs
    )
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    assert wait_for_socket(str(sock_path), timeout=60.0)
    try:
        yield daemon
    finally:
        try:
            with DaemonClient(str(sock_path)) as client:
                client.request("shutdown")
        except (DaemonError, OSError):
            daemon.stop()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "daemon thread wedged"


class TestTreeWatcher:
    def test_content_diff_ignores_mtime_noise(self, tmp_path):
        a = tmp_path / "a.c"
        a.write_text("int f(void) { return 1; }\n")
        watcher = TreeWatcher(roots=[str(tmp_path)])
        assert watcher.poll() == {str(a)}
        # Same bytes, new mtime: not a change.
        a.write_text("int f(void) { return 1; }\n")
        os.utime(str(a), None)
        assert watcher.poll() == set()
        # New bytes, *old* mtime: still a change (content decides).
        old = time.time() - 86400.0
        a.write_text("int f(void) { return 2; }\n")
        os.utime(str(a), (old, old))
        assert watcher.poll() == {str(a)}

    def test_removal_and_unwatched_suffixes(self, tmp_path):
        (tmp_path / "a.c").write_text("int a;\n")
        (tmp_path / "notes.txt").write_text("not watched\n")
        watcher = TreeWatcher(roots=[str(tmp_path)])
        assert watcher.poll() == {str(tmp_path / "a.c")}
        os.remove(str(tmp_path / "a.c"))
        assert watcher.poll() == {str(tmp_path / "a.c")}
        assert watcher.state == {}

    def test_notify_narrows_the_scan_and_full_poll_recovers(self, tmp_path):
        a, b = tmp_path / "a.c", tmp_path / "b.c"
        a.write_text("int a = 1;\n")
        b.write_text("int b = 1;\n")
        watcher = TreeWatcher(roots=[str(tmp_path)])
        watcher.poll()
        a.write_text("int a = 2;\n")
        b.write_text("int b = 2;\n")
        watcher.notify([str(a)])
        # Event-driven poll re-hashes only the notified path...
        assert watcher.poll(full=False) == {str(a)}
        # ...and the next authoritative poll catches what it skipped.
        assert watcher.poll() == {str(b)}

    def test_injected_stall_leaves_state_untouched(self, tmp_path):
        a = tmp_path / "a.c"
        a.write_text("int a = 1;\n")
        watcher = TreeWatcher(roots=[str(tmp_path)])
        watcher.poll()
        a.write_text("int a = 2;\n")
        with faults.injected([{"site": "daemon.watcher", "times": 1}]):
            with pytest.raises(WatcherError):
                watcher.poll()
            # The failed poll dropped nothing: the edit is still seen.
            assert watcher.poll() == {str(a)}

    def test_fingerprint_file_unreadable_is_none(self, tmp_path):
        assert fingerprint_file(str(tmp_path / "missing.c")) is None


class TestDaemonProtocol:
    @pytest.fixture
    def tree(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=7, n_modules=3,
                               functions_per_module=4, bug_rate=0.4)
        write_tree(src, gen.files)
        return {"src": src, "cache": tmp_path / "cache", "gen": gen}

    def test_ping_stats_unknown_op_and_shutdown(self, tree, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with running_daemon(tree["src"], tree["cache"], sock):
            with DaemonClient(sock) as client:
                ping = client.request("ping")
                assert ping["ok"] and ping["pid"] == os.getpid()
                stats = client.request("stats")
                assert stats["ok"]
                assert stats["stats"]["schema_version"] == 8
                assert stats["stats"]["pinned_units"] == 3
                assert stats["stats"]["pinned_frames"] > 0
                bad = client.request("frobnicate")
                assert not bad["ok"] and "unknown request" in bad["error"]
        assert not os.path.exists(sock)  # socket cleaned up on shutdown

    def test_undecodable_request_degrades_not_wedges(self, tree, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with running_daemon(tree["src"], tree["cache"], sock) as daemon:
            with DaemonClient(sock) as client:
                resp = client.send_raw(b"this is not json\n")
                assert not resp["ok"]
                assert "undecodable" in resp["error"]
                # Same connection still serves.
                assert client.request("ping")["ok"]
            assert daemon.stats.count("daemon_request_errors") >= 1


class TestDaemonDifferential:
    """The tentpole contract: daemon-served ranked reports are
    byte-identical to a cold serial run, before and after edit bursts,
    while reparsing only changed files and re-analyzing only the cone.
    """

    def test_edit_bursts_stay_byte_identical_to_cold(
        self, tmp_path, sock_dir, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=11, n_modules=4,
                               functions_per_module=5, bug_rate=0.3)
        write_tree(src, gen.files)
        sock = os.path.join(sock_dir, "d.sock")
        with running_daemon(src, tmp_path / "cache", sock) as daemon:
            with DaemonClient(sock) as client:
                first = client.request("analyze")
                assert first["ok"]
                assert first["reports"] == cold_output(src, capsys)
                # Nothing changed: the second analyze is a warm hit.
                again = client.request("analyze")
                assert again["served_from"] == "cache"
                assert again["reports"] == first["reports"]
                assert daemon.stats.count("daemon_analyze_warm_hits") >= 1

                total_pairs = first["roots_analyzed"]
                for k, seed in ((1, 3), (2, 9), (3, 27)):
                    before = dict(gen.files)
                    gen, edits = apply_function_edits(gen, k=k, seed=seed)
                    changed = [name for name in gen.files
                               if gen.files[name] != before[name]]
                    write_tree(src, gen.files)
                    resp = client.request("analyze")
                    assert resp["ok"]
                    assert resp["served_from"] == "analysis"
                    # Warm reuse bounds: only edited files reparse, and
                    # the dirty cone is a strict subset of the graph.
                    assert resp["files_reparsed"] == len(changed)
                    assert resp["files"] == 4
                    assert 0 < resp["roots_analyzed"] < total_pairs
                    assert resp["roots_replayed"] > 0
                    assert resp["reports"] == cold_output(src, capsys)

    def test_header_edit_dirties_includers_only(
        self, tmp_path, sock_dir, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, {
            "a.h": "int helper(int x);\n",
            "a.c": '#include "a.h"\n'
                   "void a_fn(int *p) { kfree(p); kfree(p); }\n",
            "b.c": "void b_fn(int *q) { kfree(q); kfree(q); }\n",
        })
        sock = os.path.join(sock_dir, "d.sock")
        with running_daemon(src, tmp_path / "cache", sock) as daemon:
            with DaemonClient(sock) as client:
                base = client.request("analyze")
                assert base["ok"] and base["report_count"] == 2
                # Editing the header reparses its includer, not b.c.
                (src / "a.h").write_text(
                    "int helper(int x);\nint helper2(int x);\n"
                )
                resp = client.request("analyze")
                assert resp["ok"]
                assert resp["files_reparsed"] == 1
                assert resp["reports"] == cold_output(src, capsys)
                # A brand-new header can change include resolution
                # anywhere: conservative full reparse.
                (src / "c.h").write_text("int fresh(void);\n")
                resp = client.request("analyze")
                assert resp["ok"]
                assert resp["files_reparsed"] == 2
                assert daemon.stats.count("daemon_full_reparses") == 1
                assert resp["reports"] == cold_output(src, capsys)

    def test_deleted_file_drops_its_reports(self, tmp_path, sock_dir,
                                            capsys):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, {
            "a.c": "void a_fn(int *p) { kfree(p); kfree(p); }\n",
            "b.c": "void b_fn(int *q) { kfree(q); kfree(q); }\n",
        })
        sock = os.path.join(sock_dir, "d.sock")
        with running_daemon(src, tmp_path / "cache", sock):
            with DaemonClient(sock) as client:
                assert client.request("analyze")["report_count"] == 2
                os.remove(str(src / "b.c"))
                resp = client.request("analyze")
                assert resp["ok"] and resp["files"] == 1
                assert resp["report_count"] == 1
                assert resp["reports"] == cold_output(src, capsys)

    def test_notify_hint_feeds_the_next_analysis(self, tmp_path, sock_dir,
                                                 capsys):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, {"a.c": "void a_fn(int *p) { kfree(p); }\n"})
        sock = os.path.join(sock_dir, "d.sock")
        with running_daemon(src, tmp_path / "cache", sock):
            with DaemonClient(sock) as client:
                assert client.request("analyze")["report_count"] == 0
                (src / "a.c").write_text(
                    "void a_fn(int *p) { kfree(p); kfree(p); }\n"
                )
                note = client.request("notify", paths=[str(src / "a.c")])
                assert note["ok"] and note["queued"] == 1
                resp = client.request("analyze")
                assert resp["report_count"] == 1
                assert resp["reports"] == cold_output(src, capsys)


class TestDaemonFaultMatrix:
    @pytest.fixture
    def served(self, tmp_path, sock_dir):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=5, n_modules=3,
                               functions_per_module=4, bug_rate=0.4)
        write_tree(src, gen.files)
        sock = os.path.join(sock_dir, "d.sock")
        return {"src": src, "cache": tmp_path / "cache", "sock": sock,
                "gen": gen}

    def test_watcher_stall_serves_last_known_state(self, served):
        with running_daemon(served["src"], served["cache"],
                            served["sock"]) as daemon:
            with DaemonClient(served["sock"]) as client:
                base = client.request("analyze")
                assert base["ok"]
                with faults.injected([{"site": "daemon.watcher",
                                       "times": 1}]):
                    stalled = client.request("analyze")
                # Degraded, answered, same reports as last-known state.
                assert stalled["ok"]
                assert stalled["reports"] == base["reports"]
                assert daemon.stats.count("daemon_watch_errors") == 1
                assert any(
                    "watcher poll failed" in entry["detail"]
                    for entry in daemon.stats.degradations
                )
                # Recovery: the next poll sees edits the stalled one
                # missed.
                gen, __ = apply_function_edits(served["gen"], k=1, seed=2)
                write_tree(served["src"], gen.files)
                resp = client.request("analyze")
                assert resp["ok"] and resp["served_from"] == "analysis"
                assert resp["files_reparsed"] >= 1

    def test_mid_burst_crash_degrades_root_and_recovers(self, served,
                                                        capsys):
        options = AnalysisOptions(root_error_policy="degrade")
        with running_daemon(served["src"], served["cache"],
                            served["sock"], options=options):
            with DaemonClient(served["sock"]) as client:
                base = client.request("analyze")
                assert base["ok"] and not base["degradations"]
                gen, __ = apply_function_edits(served["gen"], k=1, seed=4)
                write_tree(served["src"], gen.files)
                with faults.injected([{"site": "engine.budget",
                                       "times": 1}]):
                    crashed = client.request("analyze")
                # The daemon answered (no hang) with a DegradedRoot-
                # bearing report, not an error.
                assert crashed["ok"]
                assert crashed["degradations"]
                # Degraded roots are never persisted: a forced re-run
                # without the fault converges back to cold parity.
                resp = client.request("analyze", force=True)
                assert resp["ok"] and not resp["degradations"]
                assert resp["reports"] == cold_output(served["src"],
                                                      capsys)

    def test_request_decode_fault_answers_and_keeps_serving(self, served):
        with running_daemon(served["src"], served["cache"],
                            served["sock"]) as daemon:
            with DaemonClient(served["sock"]) as client:
                with faults.injected([{"site": "daemon.request",
                                       "times": 1}]):
                    resp = client.request("ping")
                assert not resp["ok"]
                assert "decode fault" in resp["error"]
                assert client.request("ping")["ok"]
            assert daemon.stats.count("daemon_request_errors") == 1

    def test_analyze_crash_invalidates_cached_response(self, served,
                                                       monkeypatch):
        # A handler that blows up mid-analysis must answer with an
        # error, drop its half-built cache, and serve the next request.
        with running_daemon(served["src"], served["cache"],
                            served["sock"]) as daemon:
            with DaemonClient(served["sock"]) as client:
                assert client.request("analyze")["ok"]

                def boom():
                    raise RuntimeError("checker bug")

                monkeypatch.setattr(daemon, "extension_factory", boom)
                daemon._dirty.add("force-a-rebuild")
                resp = client.request("analyze")
                assert not resp["ok"] and "checker bug" in resp["error"]
                assert daemon.stats.count("daemon_analyze_errors") == 1
                monkeypatch.setattr(daemon, "extension_factory",
                                    cli_checkers)
                assert client.request("analyze")["ok"]


class TestDaemonGC:
    def test_gc_op_spares_pinned_warm_state(self, tmp_path, sock_dir,
                                            capsys):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=9, n_modules=3,
                               functions_per_module=4, bug_rate=0.4)
        write_tree(src, gen.files)
        cache = tmp_path / "cache"
        sock = os.path.join(sock_dir, "d.sock")
        with running_daemon(src, cache, sock) as daemon:
            with DaemonClient(sock) as client:
                base = client.request("analyze")
                assert base["ok"]
                store = astcache.SummaryCache(str(cache / "summaries"))
                # Plant a stale orphan; age a pinned frame the same way.
                orphan = "0d" * 32
                store.store(orphan, ["junk"])
                pinned = daemon.session.pinned_frame_keys()
                assert pinned
                stamp = time.time() - 2 * 86400.0
                store.set_entry_mtime(orphan, stamp)
                store.set_entry_mtime(pinned[0], stamp)
                reply = client.request("gc", days=1.0)
                assert reply["ok"]
                assert reply["gc"]["gc_summary_frames_dropped"] == 1
                assert store.lookup(orphan) is None
                assert store.lookup(pinned[0]) is not None
                # The warm state still replays to cold-identical bytes.
                resp = client.request("analyze", force=True)
                assert resp["reports"] == cold_output(src, capsys)

    def test_warm_replay_touches_frames_past_gc(self, tmp_path, sock_dir):
        # Satellite: frames a daemon replays daily must not age out.
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, {
            "a.c": "void a_fn(int *p) { kfree(p); kfree(p); }\n",
        })
        cache = tmp_path / "cache"
        sock = os.path.join(sock_dir, "d.sock")
        with running_daemon(src, cache, sock) as daemon:
            with DaemonClient(sock) as client:
                assert client.request("analyze")["ok"]
                store = astcache.SummaryCache(str(cache / "summaries"))
                keys = daemon.session.pinned_frame_keys()
                stamp = time.time() - 10 * 86400.0
                for key in keys:
                    store.set_entry_mtime(key, stamp)
                # A warm replay (memory hits) refreshes every frame it
                # used, so a subsequent GC keeps them even without the
                # daemon's pin list.
                assert client.request("analyze", force=True)["ok"]
                for key in keys:
                    assert time.time() - store.entry_mtime(key) < 3600.0


class TestCacheGCRace:
    """Satellite: ``collect_cache_garbage`` used to read pinned keys
    outside any lock, then sweep -- a rival session's read-merge-write
    landing in between had its freshly pinned frames swept."""

    def _backdated_frame(self, store, key, days=2.0):
        store.store(key, ["artifact"])
        store.set_entry_mtime(key, time.time() - days * 86400.0)

    def test_rival_merge_between_scan_and_sweep_is_honoured(self,
                                                            tmp_path):
        cache_dir = str(tmp_path)
        store = astcache.SummaryCache(os.path.join(cache_dir,
                                                   "summaries"))
        first, second = "aa" * 32, "bb" * 32
        self._backdated_frame(store, first)
        self._backdated_frame(store, second)

        def rival_merges():
            # Two interleaved rival stores land *after* the GC's scan
            # phase: fresh manifests pinning the old frames.
            store.store_manifest("rival-one", {"f": ["l"]},
                                 frame_keys=[first])
            store.store_manifest("rival-two", {"g": ["m"]},
                                 frame_keys=[second])

        counters = astcache.collect_cache_garbage(
            cache_dir, cutoff_days=1.0, _after_scan=rival_merges
        )
        assert counters["gc_summary_frames_dropped"] == 0
        assert store.lookup(first) is not None
        assert store.lookup(second) is not None

    def test_frames_vanishing_mid_sweep_are_tolerated(self, tmp_path):
        cache_dir = str(tmp_path)
        store = astcache.SummaryCache(os.path.join(cache_dir,
                                                   "summaries"))
        doomed = "cc" * 32
        self._backdated_frame(store, doomed)

        def someone_else_evicts():
            store.evict(doomed)

        counters = astcache.collect_cache_garbage(
            cache_dir, cutoff_days=1.0, _after_scan=someone_else_evicts
        )
        assert counters["gc_summary_frames_dropped"] == 0
        assert store.lookup(doomed) is None

    def test_extra_live_keys_pin_like_manifests(self, tmp_path):
        cache_dir = str(tmp_path)
        store = astcache.SummaryCache(os.path.join(cache_dir,
                                                   "summaries"))
        held, loose = "dd" * 32, "ee" * 32
        self._backdated_frame(store, held)
        self._backdated_frame(store, loose)
        counters = astcache.collect_cache_garbage(
            cache_dir, cutoff_days=1.0, extra_live_sum=[held]
        )
        assert counters["gc_summary_frames_dropped"] == 1
        assert store.lookup(held) is not None
        assert store.lookup(loose) is None


class TestLockFallback:
    """Satellite: without ``fcntl``, ``_file_lock`` must not silently
    become a no-op -- it falls back to an O_CREAT|O_EXCL lockfile and
    counts the degraded discipline."""

    def test_fallback_counts_and_cleans_up(self, tmp_path, monkeypatch):
        monkeypatch.setattr(astcache, "fcntl", None)
        stats = DriverStats()
        lock = str(tmp_path / "manifest.json.lock")
        with astcache._file_lock(lock, stats=stats):
            assert os.path.exists(lock + ".excl")
        assert not os.path.exists(lock + ".excl")
        assert stats.count("manifest_lock_fallbacks") == 1

    def test_fallback_excludes_concurrent_holders(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(astcache, "fcntl", None)
        lock = str(tmp_path / "m.lock")
        order = []

        def hold(tag):
            with astcache._file_lock(lock):
                order.append((tag, "in"))
                time.sleep(0.05)
                order.append((tag, "out"))

        threads = [threading.Thread(target=hold, args=(t,))
                   for t in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Strict alternation: each holder exits before the next enters.
        assert [kind for __, kind in order] == ["in", "out", "in", "out"]

    def test_stale_lockfile_is_stolen(self, tmp_path, monkeypatch):
        monkeypatch.setattr(astcache, "fcntl", None)
        lock = str(tmp_path / "m.lock")
        excl = lock + ".excl"
        with open(excl, "w"):
            pass
        stamp = time.time() - 2 * astcache._LOCK_FALLBACK_STALE
        os.utime(excl, (stamp, stamp))
        start = time.monotonic()
        with astcache._file_lock(lock):
            pass
        assert time.monotonic() - start < astcache._LOCK_FALLBACK_TIMEOUT

    def test_manifest_merge_still_works_without_fcntl(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setattr(astcache, "fcntl", None)
        stats = DriverStats()
        store = astcache.SummaryCache(str(tmp_path / "summaries"))
        store.store_manifest("sig", {"f": ["a"]}, frame_keys=["k1"],
                             stats=stats)
        store.store_manifest("sig", {"g": ["b"]}, frame_keys=["k2"],
                             stats=stats)
        doc = store.load_manifest_document("sig")
        assert set(doc["fingerprints"]) == {"f", "g"}
        assert set(doc["frame_keys"]) == {"k1", "k2"}
        assert stats.count("manifest_lock_fallbacks") >= 2


class TestWarmLoadTouch:
    """Satellite: every successful warm load refreshes the frame's
    mtime, so GC's cutoff rule tracks real use, not store time."""

    def test_summary_load_refreshes_mtime(self, tmp_path):
        store = astcache.SummaryCache(str(tmp_path / "summaries"))
        key = "ab" * 32
        store.store(key, ["artifact"])
        store.set_entry_mtime(key, time.time() - 10 * 86400.0)
        assert store.load(key) is not None
        assert time.time() - store.entry_mtime(key) < 3600

    def test_ast_load_refreshes_mtime(self, tmp_path):
        from repro.driver.project import Project

        cache = astcache.AstCache(str(tmp_path))
        compiled = Project().compile_text("int x;\n", "t.c")
        payload = astcache.pack_unit(compiled.unit, compiled.source_bytes)
        key = "cd" * 32
        cache.store(key, payload)
        cache.set_entry_mtime(key, time.time() - 10 * 86400.0)
        assert cache.load(key) is not None
        assert time.time() - cache.entry_mtime(key) < 3600

    def test_touch_entry_tolerates_missing_files(self, tmp_path):
        astcache.touch_entry(str(tmp_path / "never-existed.sum"))


class TestDaemonCLI:
    def test_watch_flag_validation(self):
        with pytest.raises(SystemExit):
            main(["--checker", "free", "--watch", "src"])  # no socket
        with pytest.raises(SystemExit):
            main(["--checker", "free", "--watch", "src",
                  "--daemon-socket", "/tmp/x.sock"])  # no cache dir
        with pytest.raises(SystemExit):
            main(["--watch", "src", "--daemon-socket", "/tmp/x.sock",
                  "--cache-dir", "/tmp/c"])  # no checkers

    def test_client_request_without_daemon_fails_cleanly(self, sock_dir,
                                                         capsys):
        sock = os.path.join(sock_dir, "gone.sock")
        code = main(["--daemon-socket", sock,
                     "--daemon-request", "ping"])
        assert code == 2
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_client_analyze_prints_cold_identical_reports(
        self, tmp_path, sock_dir, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=13, n_modules=3,
                               functions_per_module=4, bug_rate=0.4)
        write_tree(src, gen.files)
        sock = os.path.join(sock_dir, "d.sock")
        cold = cold_output(src, capsys)
        with running_daemon(src, tmp_path / "cache", sock):
            code = main(["--daemon-socket", sock,
                         "--daemon-request", "analyze"])
            out = capsys.readouterr().out
            assert out == cold
            assert code == (1 if cold else 0)
            code = main(["--daemon-socket", sock,
                         "--daemon-request", "stats"])
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["stats"]["schema_version"] == 8
