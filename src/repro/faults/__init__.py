"""Deterministic, seeded fault injection for robustness testing.

Production static analysis survives hostile environments: worker
processes get OOM-killed mid-component, full disks truncate cache
entries, and pathological translation units blow every analysis budget.
The recovery machinery for all of that (docs/DRIVER.md, "Degradation
semantics") is only trustworthy if it can be exercised on demand, so this
module lets tests force those failures at instrumented points in the
engine and driver.

A fault *plan* is a list of spec dicts::

    faults.install([
        {"site": "pass2.worker.kill", "key": 0, "times": 1},
        {"site": "cache.corrupt", "mode": "garbage", "times": 1},
        {"site": "engine.budget", "key": "hot_root"},
        {"site": "pass1.parse", "key": "/src/ioctl.c", "probability": 0.5},
    ])

Instrumented sites (``key`` narrows the fault to one work item):

==========================  =============================  ==================
site                        fires where                    key
==========================  =============================  ==================
``pass1.worker.kill``       pass-1 worker entry (exits)    source path
``pass1.worker.hang``       pass-1 worker entry (sleeps)   source path
``pass1.parse``             before the parse (raises)      source path
``pass2.worker.kill``       pass-2 worker entry (exits)    component index
``pass2.worker.hang``       pass-2 worker entry (sleeps)   component index
``pass2.analysis``          before the DFS (raises)        component index
``cache.corrupt``           after a cache store (damages)  cache key
``engine.budget``           every budget check (raises)    root function
==========================  =============================  ==================

Determinism guarantees:

- ``times=N`` counters live in a shared on-disk state directory, so the
  count is global across the installing process and every worker: the
  first N matching attempts fire, wherever they happen.  A plan that
  kills the first pass-2 worker therefore kills it exactly once -- the
  retry survives -- no matter which process hosts the retry.
- ``probability=p`` is stateless: the verdict is a pure hash of
  ``(seed, site, key)``, so it is identical in every process and on
  every retry.  No ambient randomness is consulted anywhere.
- Plans propagate to worker processes through the ``XGCC_FAULTS``
  environment variable, surviving both fork and spawn start methods.

The ``*.kill`` and ``*.hang`` sites are applied through
:func:`at_worker_entry`, which is a no-op in the installing process --
an in-process fallback run can never kill or hang the driver itself.
"""

import hashlib
import json
import os
import shutil
import tempfile
import time

#: Environment variable carrying the active plan to worker processes.
ENV_VAR = "XGCC_FAULTS"

_SITES = frozenset([
    "pass1.worker.kill", "pass1.worker.hang", "pass1.parse",
    "pass2.worker.kill", "pass2.worker.hang", "pass2.analysis",
    "cache.corrupt", "engine.budget",
])


class InjectedFault(Exception):
    """Raised at ``raise``-style injection sites (``pass1.parse``,
    ``pass2.analysis``)."""


class FaultPlan:
    """An installed set of fault specs plus the shared counter state."""

    def __init__(self, specs, seed=0, state_dir=None, installer_pid=None):
        self.specs = [dict(spec) for spec in specs]
        for spec in self.specs:
            if spec.get("site") not in _SITES:
                raise ValueError("unknown fault site: %r" % spec.get("site"))
        self.seed = seed
        self.state_dir = state_dir
        self.installer_pid = installer_pid if installer_pid else os.getpid()
        self._local_counts = {}

    def to_json(self):
        return json.dumps({
            "specs": self.specs,
            "seed": self.seed,
            "state_dir": self.state_dir,
            "installer_pid": self.installer_pid,
        })

    @classmethod
    def from_json(cls, blob):
        data = json.loads(blob)
        return cls(data["specs"], data["seed"], data["state_dir"],
                   data["installer_pid"])


_PLAN = None


def install(specs, seed=0):
    """Install a plan process-wide and export it to worker processes."""
    global _PLAN
    state_dir = tempfile.mkdtemp(prefix="xgcc-faults-")
    _PLAN = FaultPlan(specs, seed=seed, state_dir=state_dir)
    os.environ[ENV_VAR] = _PLAN.to_json()
    return _PLAN


def clear():
    """Remove the active plan (and its shared counter state)."""
    global _PLAN
    plan = _plan()
    _PLAN = None
    os.environ.pop(ENV_VAR, None)
    if plan is not None and plan.state_dir and plan.installer_pid == os.getpid():
        shutil.rmtree(plan.state_dir, ignore_errors=True)


class injected:
    """``with faults.injected([...]):`` -- install, then always clear."""

    def __init__(self, specs, seed=0):
        self.specs = specs
        self.seed = seed

    def __enter__(self):
        return install(self.specs, seed=self.seed)

    def __exit__(self, *exc):
        clear()
        return False


def _plan():
    """The active plan: installed locally, or adopted from the env (the
    path a worker process takes on its first check)."""
    global _PLAN
    if _PLAN is not None:
        return _PLAN
    blob = os.environ.get(ENV_VAR)
    if blob:
        _PLAN = FaultPlan.from_json(blob)
        return _PLAN
    return None


def active():
    """Is any fault plan installed?  (Cheap gate for hot paths.)"""
    return _plan() is not None


def in_worker():
    """Is this process a worker (not the plan's installing process)?"""
    plan = _plan()
    return plan is not None and os.getpid() != plan.installer_pid


def fires(site, key=None):
    """The matching spec dict if a fault fires here, else None.

    Every call against a ``times``-limited spec counts as one attempt in
    the plan's shared (cross-process) counter.
    """
    plan = _plan()
    if plan is None:
        return None
    for index, spec in enumerate(plan.specs):
        if spec.get("site") != site:
            continue
        want = spec.get("key")
        if want is not None and (key is None or str(want) != str(key)):
            continue
        probability = spec.get("probability")
        if probability is not None:
            if _stable_fraction(plan.seed, site, key) < probability:
                return spec
            continue
        times = spec.get("times")
        if times is None or _bump(plan, index) <= times:
            return spec
    return None


def check(site, key=None):
    """Raise :class:`InjectedFault` if a fault fires at this site."""
    spec = fires(site, key=key)
    if spec is not None:
        raise InjectedFault(
            "injected fault at %s (key=%r)" % (site, key)
        )


def at_worker_entry(site_prefix, key=None):
    """Apply kill/hang faults at a worker function's entry point.

    No-op in the installing process, so the in-process fallback path can
    never take the driver down with it.
    """
    if not in_worker():
        return
    spec = fires(site_prefix + ".kill", key=key)
    if spec is not None:
        os._exit(int(spec.get("exit_code", 87)))
    spec = fires(site_prefix + ".hang", key=key)
    if spec is not None:
        time.sleep(float(spec.get("seconds", 3600.0)))


def _stable_fraction(seed, site, key):
    """A deterministic [0, 1) value from (seed, site, key) -- the same in
    every process, so probabilistic plans reproduce exactly."""
    text = "%s|%s|%s" % (seed, site, key)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _bump(plan, index):
    """Increment spec ``index``'s shared attempt counter; returns the
    count *including* this attempt.

    The counter is a file in the plan's state directory opened with
    ``O_APPEND``: the kernel serializes the writes, and ``lseek`` after
    our own write reports exactly how many attempts preceded us -- an
    atomic cross-process counter with no locking.
    """
    if not plan.state_dir or not os.path.isdir(plan.state_dir):
        count = plan._local_counts.get(index, 0) + 1
        plan._local_counts[index] = count
        return count
    path = os.path.join(plan.state_dir, "spec-%d" % index)
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, b".")
        return os.lseek(fd, 0, os.SEEK_CUR)
    finally:
        os.close(fd)
