"""Cross-version false-positive suppression (§8, "History").

"A simple alternative is to just remember false positives from past
versions and suppress them in future versions.  We match error reports
across versions by comparing file name, function name, variable names
involved in the analysis, and the actual error itself as stated by the
checker.  These fields are relatively invariant under edits (unlike, for
example, line numbers)."
"""

import json


class HistoryDatabase:
    """Remembered false positives from earlier versions of a code base."""

    def __init__(self):
        self._suppressed = set()

    def suppress(self, report):
        """Mark a report (inspected and judged a false positive) for
        suppression in future versions."""
        self._suppressed.add(report.history_key())

    def suppress_key(self, checker, filename, function, variable, message):
        self._suppressed.add((checker, filename, function, variable, message))

    def is_suppressed(self, report):
        return report.history_key() in self._suppressed

    def filter(self, reports):
        """Drop reports matching a remembered false positive."""
        return [r for r in reports if not self.is_suppressed(r)]

    def __len__(self):
        return len(self._suppressed)

    # -- persistence ------------------------------------------------------------

    def save(self, path):
        rows = [list(key) for key in sorted(self._suppressed, key=repr)]
        with open(path, "w") as handle:
            json.dump(rows, handle, indent=2)

    @classmethod
    def load(cls, path):
        db = cls()
        with open(path) as handle:
            for row in json.load(handle):
                db._suppressed.add(tuple(row))
        return db
