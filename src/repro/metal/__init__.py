"""The metal extension language (§2-§4).

Checkers can be written two ways:

* in the textual metal DSL of Figures 1 and 3, compiled by
  :func:`repro.metal.language.compile_metal`;
* directly against the Python API (:class:`repro.metal.sm.Extension`),
  which plays the role of metal's escapes to general-purpose C code.
"""

from repro.metal.metatypes import (
    ANY_ARGUMENTS,
    ANY_EXPR,
    ANY_FN_CALL,
    ANY_POINTER,
    ANY_SCALAR,
    MetaType,
)
from repro.metal.patterns import (
    AndPattern,
    BasePattern,
    Callout,
    EndOfPath,
    MatchContext,
    OrPattern,
    Pattern,
    compile_pattern,
)
from repro.metal.sm import (
    GLOBAL,
    STOP,
    Extension,
    PathSplit,
    Transition,
)
from repro.metal.language import compile_metal
from repro.metal.validate import validate as validate_extension

__all__ = [
    "ANY_ARGUMENTS",
    "ANY_EXPR",
    "ANY_FN_CALL",
    "ANY_POINTER",
    "ANY_SCALAR",
    "MetaType",
    "Pattern",
    "BasePattern",
    "AndPattern",
    "OrPattern",
    "Callout",
    "EndOfPath",
    "MatchContext",
    "compile_pattern",
    "Extension",
    "Transition",
    "PathSplit",
    "GLOBAL",
    "STOP",
    "compile_metal",
    "validate_extension",
]
