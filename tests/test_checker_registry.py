"""Every registered checker must compile and satisfy basic invariants."""

import pytest

from repro.checkers import ALL_CHECKERS
from repro.metal.sm import Extension, StateRef, STOP


@pytest.mark.parametrize("name", sorted(ALL_CHECKERS))
class TestRegistry:
    def test_compiles(self, name):
        ext = ALL_CHECKERS[name]()
        assert isinstance(ext, Extension)
        assert ext.transitions

    def test_fresh_instances(self, name):
        # factories must not share mutable state between calls
        a = ALL_CHECKERS[name]()
        b = ALL_CHECKERS[name]()
        assert a is not b
        assert a.transitions is not b.transitions

    def test_initial_global_state_defined(self, name):
        ext = ALL_CHECKERS[name]()
        assert ext.initial_global

    def test_state_references_resolve(self, name):
        ext = ALL_CHECKERS[name]()
        declared_vars = set(ext.specific_vars)
        for rule in ext.transitions:
            refs = [rule.source]
            target = rule.target
            if target is not None:
                if hasattr(target, "true_state"):
                    refs.extend([target.true_state, target.false_state])
                else:
                    refs.append(target)
            for ref in refs:
                if ref is None or not isinstance(ref, StateRef):
                    continue
                if not ref.is_global:
                    assert ref.var in declared_vars, (name, ref)

    def test_sources_have_transitions_or_actions(self, name):
        ext = ALL_CHECKERS[name]()
        assert any(
            rule.target is not None or rule.action is not None
            for rule in ext.transitions
        )

    def test_runs_on_trivial_program(self, name):
        from conftest import run_checker

        result = run_checker("int f(int x) { return x; }", ALL_CHECKERS[name]())
        assert result.reports == []
