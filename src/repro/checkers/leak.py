"""Memory-leak (ownership) checker.

The rule: memory obtained from an allocator must, on every path, be
released, returned to the caller, or published through a pointer store
before the path ends.  A classic of the MC checker family -- and a good
showcase for ``$end_of_path$`` plus callout-based ownership transfer.
"""

from repro.cfront import astnodes as ast
from repro.metal import ANY_ARGUMENTS, ANY_POINTER, Extension
from repro.metal.patterns import Callout


def leak_checker(
    allocators=("kmalloc", "malloc"),
    releasers=("kfree", "free"),
    publishers=("register_buf", "list_add"),
):
    ext = Extension("leak_checker")
    ext.state_var("v", ANY_POINTER)
    ext.decl("args", ANY_ARGUMENTS)
    ext.default_severity = "ERROR"

    for fn in allocators:
        ext.transition("start", "{ v = %s(args) }" % fn, to="v.owned",
                       action=_remember(fn))

    for fn in releasers:
        ext.transition("v.owned", "{ %s(v) }" % fn, to="v.stop",
                       action=lambda ctx: ctx.count_example(
                           ctx.get_data("alloc"), ctx.instance.origin_location))

    # Returning the pointer transfers ownership to the caller.
    ext.transition("v.owned", "{ return v; }", to="v.stop",
                   action=lambda ctx: ctx.count_example(
                       ctx.get_data("alloc"), ctx.instance.origin_location))

    # Publishing it (storing into a non-local structure or passing it to a
    # registration function) also transfers ownership.
    ext.transition("v.owned", Callout(_published(publishers), "ownership transfer"),
                   to="v.stop",
                   action=lambda ctx: ctx.count_example(
                       ctx.get_data("alloc"), ctx.instance.origin_location))

    ext.transition(
        "v.owned",
        "$end_of_path$",
        to="v.stop",
        action=lambda ctx: ctx.err(
            "%s allocated with %s is leaked on this path",
            ctx.identifier("v"),
            ctx.get_data("alloc", "an allocator"),
            rule_id=ctx.get_data("alloc"),
        ),
    )
    return ext


def _remember(fn):
    def action(ctx):
        ctx.set_data("alloc", fn)

    return action


def _published(publishers):
    publisher_set = frozenset(publishers)

    def check(context):
        point = context.point
        obj = context.bindings.get("v")
        if obj is None:
            return False
        key = ast.structural_key(obj)
        # passed to a publisher function
        if isinstance(point, ast.Call) and point.callee_name() in publisher_set:
            return any(ast.structural_key(a) == key for a in point.args)
        # stored through a pointer or into a structure: x->f = v, *x = v,
        # a[i] = v (the engine's synonym machinery watches plain x = v)
        if isinstance(point, ast.Assign) and point.op == "=":
            if ast.structural_key(point.value) != key:
                return False
            target = point.target
            return isinstance(target, (ast.Member, ast.Index)) or (
                isinstance(target, ast.Unary) and target.op == "*"
            )
        return False

    return check
