"""Tests for the textual metal DSL compiler (Figures 1 and 3)."""

import pytest

from repro.cfront.parser import parse_expression
from repro.checkers import FREE_CHECKER_SOURCE, LOCK_CHECKER_SOURCE
from repro.metal import GLOBAL, PathSplit, compile_metal
from repro.metal.language import MetalError
from repro.metal.patterns import EndOfPath, match
from repro.metal.sm import StateRef


class TestFigure1:
    def test_compiles(self):
        ext = compile_metal(FREE_CHECKER_SOURCE)
        assert ext.name == "free_checker"
        assert ext.specific_var[0] == "v"
        assert ext.global_states == ["start"]
        assert ext.specific_states == ["freed"]

    def test_transitions(self):
        ext = compile_metal(FREE_CHECKER_SOURCE)
        assert len(ext.transitions) == 3
        start_rules = ext.global_transitions("start")
        assert len(start_rules) == 1
        assert start_rules[0].creates_instance
        freed_rules = ext.specific_transitions("freed")
        assert len(freed_rules) == 2
        assert all(r.target.value == "stop" for r in freed_rules)

    def test_size_claim(self):
        # §1: "extensions are small -- usually between 10 and 200 lines"
        n_lines = len([l for l in FREE_CHECKER_SOURCE.splitlines() if l.strip()])
        assert 5 <= n_lines <= 200


class TestFigure3:
    def test_compiles(self):
        ext = compile_metal(LOCK_CHECKER_SOURCE)
        assert ext.name == "lock_checker"
        assert ext.uses_end_of_path()

    def test_path_specific_transition(self):
        ext = compile_metal(LOCK_CHECKER_SOURCE)
        trylock_rule = ext.global_transitions("start")[0]
        assert isinstance(trylock_rule.target, PathSplit)
        assert trylock_rule.target.true_state.value == "locked"
        assert trylock_rule.target.false_state.value == "stop"

    def test_end_of_path_rule(self):
        ext = compile_metal(LOCK_CHECKER_SOURCE)
        eop = [
            r
            for r in ext.specific_transitions("locked")
            if isinstance(r.pattern, EndOfPath)
        ]
        assert len(eop) == 1


class TestDeclSyntax:
    def test_spaced_metatype(self):
        ext = compile_metal(
            "sm x { state decl any pointer v; start: { f(v) } ==> v.s ; }"
        )
        assert ext.specific_var[1].name == "any_pointer"

    def test_concrete_type_decl(self):
        ext = compile_metal(
            "sm x { state decl int v; start: { f(v) } ==> v.s ; }"
        )
        assert ext.specific_var[1].name == "int"

    def test_plain_decl_hole(self):
        ext = compile_metal(
            "sm x { decl any_fn_call fn; decl any_arguments args;"
            " start: { fn(args) } ==> start ; }"
        )
        assert set(ext.extra_holes()) == {"fn", "args"}

    def test_multiple_state_vars_allowed(self):
        # §3.1: "the actual implementation of metal allows the extension to
        # define tuples with additional components."
        ext = compile_metal(
            "sm x { state decl any_pointer v; state decl any_pointer w;"
            " start: { f(v) } ==> v.s | { g(w) } ==> w.t ; }"
        )
        assert set(ext.specific_vars) == {"v", "w"}

    def test_duplicate_state_var_rejected(self):
        with pytest.raises(ValueError):
            compile_metal(
                "sm x { state decl any_pointer v; state decl any_pointer v;"
                " start: { f(v) } ==> v.s ; }"
            )

    def test_unknown_type_rejected(self):
        with pytest.raises(MetalError):
            compile_metal("sm x { state decl any nonsense v; start: {f(v)} ==> v.s; }")


class TestRuleSyntax:
    def test_alternatives(self):
        ext = compile_metal(
            "sm x { state decl any_pointer v;"
            " start: { a(v) } ==> v.s | { b(v) } ==> v.s ; }"
        )
        assert len(ext.global_transitions("start")) == 2

    def test_action_only_rule(self):
        ext = compile_metal(
            'sm x { start: { f() } , { err("saw f"); } ; }'
        )
        rule = ext.global_transitions("start")[0]
        assert rule.target is None
        assert rule.action is not None

    def test_or_pattern(self):
        ext = compile_metal(
            "sm x { state decl any_pointer v;"
            " start: { kfree(v) } || { vfree(v) } ==> v.s ; }"
        )
        rule = ext.transitions[0]
        assert match(rule.pattern, parse_expression("vfree(p)")) is not None

    def test_callout_conjunct(self):
        ext = compile_metal(
            "sm x { decl any_fn_call fn; decl any_arguments args;\n"
            ' start: { fn(args) } && ${ mc_is_call_to(fn, "gets") } ,\n'
            '   { err("gets!"); } ; }'
        )
        rule = ext.transitions[0]
        assert match(rule.pattern, parse_expression("gets(b)")) is not None
        assert match(rule.pattern, parse_expression("fgets(b)")) is None

    def test_end_of_path_spelled_out(self):
        ext = compile_metal(
            "sm x { state decl any_pointer v;"
            " start: { f(v) } ==> v.s ;"
            " v.s: $end of path$ ==> v.stop ; }"
        )
        assert ext.uses_end_of_path()

    def test_global_state_machine(self):
        ext = compile_metal(
            "sm intr { enabled: { cli() } ==> disabled ;"
            " disabled: { sti() } ==> enabled ; }"
        )
        assert ext.initial_global == "enabled"
        assert ext.specific_var is None

    def test_unterminated_rejected(self):
        with pytest.raises(MetalError):
            compile_metal("sm x { start: { f() } ==> start ")


class TestActions:
    def make_ctx(self, **bindings):
        class Ctx:
            def __init__(self):
                self.errors = []
                self.bindings = {
                    name: parse_expression(text) for name, text in bindings.items()
                }
                self.globals = {}

            def err(self, fmt, *args):
                self.errors.append(fmt % args if args else fmt)

        return Ctx()

    def test_err_formatting(self):
        ext = compile_metal(
            "sm x { state decl any_pointer v;\n"
            ' start: { kfree(v) } ==> v.s, { err("freed %s!", mc_identifier(v)); } ; }'
        )
        ctx = self.make_ctx(v="dev->ptr")
        ext.transitions[0].action(ctx)
        assert ctx.errors == ["freed dev->ptr!"]

    def test_action_conditionals(self):
        ext = compile_metal(
            "sm x { decl any_expr e;\n"
            " start: { f(e) } ,\n"
            '  { if (mc_is_constant(e)) err("constant"); else err("dynamic"); } ; }'
        )
        ctx = self.make_ctx(e="5")
        ext.transitions[0].action(ctx)
        assert ctx.errors == ["constant"]
        ctx = self.make_ctx(e="x + 1")
        ext.transitions[0].action(ctx)
        assert ctx.errors == ["dynamic"]

    def test_action_user_globals(self):
        ext = compile_metal(
            "sm x { start: { f() } , { count = count + 1; } ; }"
        )
        ctx = self.make_ctx()
        ctx.globals["count"] = 0
        ext.transitions[0].action(ctx)
        ext.transitions[0].action(ctx)
        assert ctx.globals["count"] == 2
