"""Shared test helpers."""

import pytest

from repro.cfront.parser import parse
from repro.engine.analysis import Analysis, AnalysisOptions


def run_checker(code, extension, filename="test.c", options=None, roots=None):
    """Parse C text and run one extension; returns the AnalysisResult."""
    unit = parse(code, filename)
    analysis = Analysis([unit], options=options or AnalysisOptions())
    return analysis.run(extension, roots=roots)


def messages(result):
    """The report messages, sorted for stable assertions."""
    return sorted(r.message for r in result.reports)


def lines(result):
    """The report line numbers, sorted."""
    return sorted(r.location.line for r in result.reports)


@pytest.fixture
def fig2_code():
    """The paper's Figure 2 example, verbatim (same line numbers)."""
    return (
        "int contrived(int *p, int *w, int x) {\n"  # line 1, as in the paper
        "    int *q;\n"
        "\n"
        "    if(x)\n"
        "    {\n"
        "        kfree(w);\n"
        "        q = p;\n"
        "        p = 0;\n"
        "    }\n"
        "    if(!x)\n"
        "        return *w;\n"
        "    return *q;\n"
        "}\n"
        "int contrived_caller(int *w, int x, int *p) {\n"
        "    kfree(p);\n"
        "    contrived(p, w, x);\n"
        "    return *w;\n"
        "}\n"
    )
