"""Table-driven matcher compilation (docs/MATCHER.md).

The engine applies every extension's patterns at every (point, state)
visit; interpreting the pattern tree there (``Pattern.match`` walking
``_unify``'s isinstance chain, with a ``dict(bindings)`` copy per
attempt) dominates cold runs and daemon bursts.  This module compiles
each :class:`~repro.metal.sm.Extension` once, at registration time, into

* **dispatch tables** -- per source state, candidate transitions indexed
  by the class of the program point, so states whose rules cannot match
  an ``Assign`` never even see one (the common miss costs one dict
  probe); and
* **flat matcher programs** -- each base pattern becomes a precomputed
  instruction sequence run by a tight loop over an explicit node stack,
  with hole bindings in a flat slot array (saved/restored by list copy,
  never a dict copy); ``&&``/``||``/``!`` composition becomes
  short-circuit jump blocks around the base programs, and callouts stay
  callable Python escapes.

The tree-walking interpreter in :mod:`repro.metal.patterns` remains the
semantic oracle: any pattern shape the compiler does not cover compiles
to a *fallback* rule the engine matches with ``Pattern.match`` (counted
in ``matcher_fallbacks``), and the whole compiled layer is bypassed
under ``--matcher=interp``.  The differential tests in
``tests/test_matcher.py`` hold the two paths byte-identical.
"""

from repro.cfront import astnodes as ast
from repro.cfront.astnodes import structurally_equal
from repro.cfg.blocks import ReturnMarker
from repro.metal.metatypes import ANY_ARGUMENTS, ANY_FN_CALL
from repro.metal.patterns import (
    AndPattern,
    BasePattern,
    Callout,
    EndOfPath,
    MatchContext,
    NotPattern,
    OrPattern,
)


class _CannotCompile(Exception):
    """Raised during compilation for pattern shapes the instruction set
    does not cover; the rule then falls back to the interpreter."""


# ---------------------------------------------------------------------------
# Base-pattern programs
#
# A program is a tuple of instructions, each of which pops exactly one
# node from the work stack.  Structural instructions push their child
# nodes in reverse so the next instruction pops the leftmost child:
# execution order is exactly ``_unify``'s preorder, so repeated holes
# bind and check in the same order as the interpreter.
# ---------------------------------------------------------------------------

OP_NODE = 0  # (OP_NODE, cls, ((attr, value), ...), (child_attr, ...))
OP_HOLE = 1  # (OP_HOLE, slot, metatype)
OP_CALL = 2  # (OP_CALL, func_mode, func_slot, args_mode, args_arg)
OP_RETURN = 3  # (OP_RETURN, has_expr)
OP_INITLIST = 4  # (OP_INITLIST, n_items)

FUNC_SUB = 0  # callee matched by the following sub-program
FUNC_HOLE = 1  # any_fn_call hole in callee position binds node.func
ARGS_LIST = 0  # fixed arity, each argument matched by a sub-program
ARGS_HOLE = 2  # single any_arguments hole swallows the whole list

#: Non-node fields compared by equality, per pattern class -- mirrors the
#: atom checks in :func:`repro.metal.patterns._unify`.
_ATOM_FIELDS = {
    ast.Ident: ("name",),
    ast.IntLit: ("value",),
    ast.CharLit: ("value",),
    ast.FloatLit: ("value",),
    ast.StringLit: ("value",),
    ast.Unary: ("op", "postfix"),
    ast.Binary: ("op",),
    ast.Assign: ("op",),
    ast.Conditional: (),
    ast.Member: ("name", "arrow"),
    ast.Index: (),
    ast.Cast: ("to_type",),
    ast.SizeofExpr: (),
    ast.SizeofType: ("of_type",),
    ast.Comma: (),
}

#: Node-valued fields, in the order ``_unify`` recurses into them.
_CHILD_FIELDS = {
    ast.Ident: (),
    ast.IntLit: (),
    ast.CharLit: (),
    ast.FloatLit: (),
    ast.StringLit: (),
    ast.Unary: ("operand",),
    ast.Binary: ("left", "right"),
    ast.Assign: ("target", "value"),
    ast.Conditional: ("cond", "then", "otherwise"),
    ast.Member: ("obj",),
    ast.Index: ("array", "index"),
    ast.Cast: ("operand",),
    ast.SizeofExpr: ("operand",),
    ast.SizeofType: (),
    ast.Comma: ("left", "right"),
}


def _emit_base(pattern, code, slot_of):
    """Append the program for one pattern-AST node (preorder)."""
    if pattern is None:
        # ``_unify(None, x)`` is always False; not worth an opcode.
        raise _CannotCompile("None pattern child")
    if isinstance(pattern, ast.Hole):
        code.append((OP_HOLE, slot_of[pattern.name], pattern.metatype))
        return
    if isinstance(pattern, ast.Return):
        expr = pattern.expr
        code.append((OP_RETURN, expr is not None))
        if expr is not None:
            _emit_base(expr, code, slot_of)
        return
    cls = type(pattern)
    if cls is ast.Call:
        func = pattern.func
        args = pattern.args
        if isinstance(func, ast.Hole) and func.metatype is ANY_FN_CALL:
            func_mode, func_arg = FUNC_HOLE, slot_of[func.name]
        else:
            func_mode, func_arg = FUNC_SUB, 0
        if (
            len(args) == 1
            and isinstance(args[0], ast.Hole)
            and args[0].metatype is ANY_ARGUMENTS
        ):
            args_mode, args_arg = ARGS_HOLE, slot_of[args[0].name]
        else:
            args_mode, args_arg = ARGS_LIST, len(args)
        code.append((OP_CALL, func_mode, func_arg, args_mode, args_arg))
        if func_mode == FUNC_SUB:
            _emit_base(func, code, slot_of)
        if args_mode == ARGS_LIST:
            for arg in args:
                _emit_base(arg, code, slot_of)
        return
    if cls is ast.InitList:
        code.append((OP_INITLIST, len(pattern.items)))
        for item in pattern.items:
            _emit_base(item, code, slot_of)
        return
    atoms = _ATOM_FIELDS.get(cls)
    if atoms is None:
        raise _CannotCompile("unsupported pattern node %s" % cls.__name__)
    checks = tuple((attr, getattr(pattern, attr)) for attr in atoms)
    children = _CHILD_FIELDS[cls]
    code.append((OP_NODE, cls, checks, children))
    for attr in children:
        _emit_base(getattr(pattern, attr), code, slot_of)


def _run_program(program, node, slots):
    """Run a base-pattern program against ``node``.

    Returns True and fills ``slots`` on success; on failure ``slots``
    may hold partial bindings (the caller snapshots around it).
    """
    stack = [node]
    for ins in program:
        node = stack.pop()
        op = ins[0]
        if op == OP_NODE:
            if node.__class__ is not ins[1]:
                return False
            for attr, value in ins[2]:
                if value != getattr(node, attr):
                    return False
            children = ins[3]
            if children:
                if len(children) == 1:
                    stack.append(getattr(node, children[0]))
                else:
                    for attr in reversed(children):
                        stack.append(getattr(node, attr))
        elif op == OP_HOLE:
            if isinstance(node, ReturnMarker):
                return False
            if not ins[2].matches(node):
                return False
            slot = ins[1]
            previous = slots[slot]
            if previous is not None:
                if previous is not node and not structurally_equal(previous, node):
                    return False
            else:
                slots[slot] = node
        elif op == OP_CALL:
            if node.__class__ is not ast.Call:
                return False
            if ins[1] == FUNC_HOLE:
                func = node.func
                slot = ins[2]
                previous = slots[slot]
                if previous is not None and not (
                    previous is func or structurally_equal(previous, func)
                ):
                    return False
                slots[slot] = func
            args = node.args
            if ins[3] == ARGS_HOLE:
                slot = ins[4]
                previous = slots[slot]
                if previous is not None:
                    if len(previous) != len(args):
                        return False
                    for bound, arg in zip(previous, args):
                        if not structurally_equal(bound, arg):
                            return False
                else:
                    slots[slot] = list(args)
            else:
                if len(args) != ins[4]:
                    return False
                if args:
                    stack.extend(reversed(args))
            if ins[1] == FUNC_SUB:
                stack.append(node.func)
        elif op == OP_RETURN:
            if node.__class__ is not ReturnMarker:
                return False
            if ins[1]:
                if node.expr is None:
                    return False
                stack.append(node.expr)
            elif node.expr is not None:
                return False
        else:  # OP_INITLIST
            if node.__class__ is not ast.InitList:
                return False
            items = node.items
            if len(items) != ins[1]:
                return False
            if items:
                stack.extend(reversed(items))
    return True


# ---------------------------------------------------------------------------
# Composition blocks
#
# ``&&``/``||``/``!`` compile to a flat op list with explicit jumps; the
# snapshot stack (plain list copies of the slot array) replaces the
# interpreter's trial-dict copies.
# ---------------------------------------------------------------------------

C_BASE = 0  # (C_BASE, program): ok = run program at the point
C_CALLOUT = 1  # (C_CALLOUT, fn): ok = fn(MatchContext)
C_EOP = 2  # (C_EOP,): ok = end_of_path
C_JF = 3  # (C_JF, target): jump if not ok
C_JT = 4  # (C_JT, target): jump if ok
C_JMP = 5  # (C_JMP, target)
C_SNAP = 6  # push a copy of the slot array
C_POP = 7  # drop the top snapshot (commit)
C_RESTORE = 8  # restore + drop the top snapshot (roll back)
C_NOTEND = 9  # restore + drop snapshot, invert ok


def _emit_pattern(pattern, ops, slot_of):
    if isinstance(pattern, BasePattern):
        code = []
        _emit_base(pattern.pattern_ast, code, slot_of)
        ops.append((C_BASE, tuple(code)))
    elif isinstance(pattern, Callout):
        ops.append((C_CALLOUT, pattern.fn))
    elif isinstance(pattern, EndOfPath):
        ops.append((C_EOP,))
    elif isinstance(pattern, AndPattern):
        ops.append((C_SNAP,))
        _emit_pattern(pattern.left, ops, slot_of)
        jf_left = len(ops)
        ops.append(None)
        _emit_pattern(pattern.right, ops, slot_of)
        jf_right = len(ops)
        ops.append(None)
        ops.append((C_POP,))
        jmp_end = len(ops)
        ops.append(None)
        fail = len(ops)
        ops.append((C_RESTORE,))
        end = len(ops)
        ops[jf_left] = (C_JF, fail)
        ops[jf_right] = (C_JF, fail)
        ops[jmp_end] = (C_JMP, end)
    elif isinstance(pattern, OrPattern):
        ops.append((C_SNAP,))
        _emit_pattern(pattern.left, ops, slot_of)
        jt_left = len(ops)
        ops.append(None)
        ops.append((C_RESTORE,))
        ops.append((C_SNAP,))
        _emit_pattern(pattern.right, ops, slot_of)
        jt_right = len(ops)
        ops.append(None)
        ops.append((C_RESTORE,))
        jmp_end = len(ops)
        ops.append(None)
        succeed = len(ops)
        ops.append((C_POP,))
        end = len(ops)
        ops[jt_left] = (C_JT, succeed)
        ops[jt_right] = (C_JT, succeed)
        ops[jmp_end] = (C_JMP, end)
    elif isinstance(pattern, NotPattern):
        ops.append((C_SNAP,))
        _emit_pattern(pattern.inner, ops, slot_of)
        ops.append((C_NOTEND,))
    else:
        raise _CannotCompile(
            "unsupported pattern class %s" % type(pattern).__name__
        )


def _run_ops(matcher, point, slots, engine, end_of_path):
    ops = matcher.ops
    names = matcher.names
    n = len(ops)
    i = 0
    ok = False
    saves = []
    while i < n:
        ins = ops[i]
        code = ins[0]
        if code == C_BASE:
            ok = _run_program(ins[1], point, slots)
        elif code == C_CALLOUT:
            # Callouts see (and may extend) the bindings of earlier
            # conjuncts; materialize a dict only here, at the escape
            # hatch, and sync declared holes back on success.
            bindings = {}
            for name, slot in names:
                value = slots[slot]
                if value is not None:
                    bindings[name] = value
            ok = bool(ins[1](MatchContext(point, bindings, engine, end_of_path)))
            if ok:
                for name, slot in names:
                    value = bindings.get(name)
                    if value is not None:
                        slots[slot] = value
        elif code == C_EOP:
            ok = end_of_path
        elif code == C_JF:
            if not ok:
                i = ins[1]
                continue
        elif code == C_JT:
            if ok:
                i = ins[1]
                continue
        elif code == C_JMP:
            i = ins[1]
            continue
        elif code == C_SNAP:
            saves.append(slots[:])
        elif code == C_POP:
            saves.pop()
        elif code == C_RESTORE:
            slots[:] = saves.pop()
        else:  # C_NOTEND
            slots[:] = saves.pop()
            ok = not ok
        i += 1
    return ok


# ---------------------------------------------------------------------------
# Root-kind analysis (dispatch-table keys)
#
# ``kinds`` is (match_any, match_any_expr, classes): a rule is a
# candidate at a point iff match_any, or match_any_expr and the point is
# an Expr, or the point's exact class is in ``classes``.  Rules carry
# one kinds value for normal points and one for end-of-path points
# ($end_of_path$ contributes nothing to the former, everything to the
# latter).
# ---------------------------------------------------------------------------

_K_ALL = (True, False, frozenset())
_K_NONE = (False, False, frozenset())


def _k_union(a, b):
    if a[0] or b[0]:
        return _K_ALL
    return (False, a[1] or b[1], a[2] | b[2])


def _k_intersect(a, b):
    if a[0]:
        return b
    if b[0]:
        return a
    classes = set(a[2] & b[2])
    if a[1]:
        classes.update(c for c in b[2] if issubclass(c, ast.Expr))
    if b[1]:
        classes.update(c for c in a[2] if issubclass(c, ast.Expr))
    return (False, a[1] and b[1], frozenset(classes))


def _admits(kinds, cls):
    if kinds[0]:
        return True
    if kinds[1] and issubclass(cls, ast.Expr):
        return True
    return cls in kinds[2]


def _root_kinds(root):
    if root is None:
        return _K_NONE
    if isinstance(root, ast.Hole):
        # Holes only ever unify with Expr nodes (never ReturnMarker,
        # never the end-of-path point).
        return (False, True, frozenset())
    if isinstance(root, ast.Return):
        return (False, False, frozenset((ReturnMarker,)))
    # Exact-class dispatch mirrors _unify's ``type(pattern) is
    # type(node)``; unknown pattern classes simply never match any
    # point class, which the table encodes for free.
    return (False, False, frozenset((type(root),)))


def _analyze(pattern):
    """Return (kinds_normal, kinds_eop) for a composed pattern."""
    if isinstance(pattern, BasePattern):
        kinds = _root_kinds(pattern.pattern_ast)
        return kinds, kinds
    if isinstance(pattern, EndOfPath):
        return _K_NONE, _K_ALL
    if isinstance(pattern, AndPattern):
        left = _analyze(pattern.left)
        right = _analyze(pattern.right)
        return (
            _k_intersect(left[0], right[0]),
            _k_intersect(left[1], right[1]),
        )
    if isinstance(pattern, OrPattern):
        left = _analyze(pattern.left)
        right = _analyze(pattern.right)
        return _k_union(left[0], right[0]), _k_union(left[1], right[1])
    # Callout, NotPattern, and anything exotic: no static pruning.
    return _K_ALL, _K_ALL


def _pattern_holes(pattern, found):
    """Collect hole names appearing anywhere in a composed pattern."""
    if isinstance(pattern, BasePattern):
        root = pattern.pattern_ast
        if root is not None:
            for node in root.walk():
                if isinstance(node, ast.Hole) and node.name not in found:
                    found.append(node.name)
    elif isinstance(pattern, (AndPattern, OrPattern)):
        _pattern_holes(pattern.left, found)
        _pattern_holes(pattern.right, found)
    elif isinstance(pattern, NotPattern):
        _pattern_holes(pattern.inner, found)
    return found


# ---------------------------------------------------------------------------
# Compiled rules, state tables, and the per-extension container
# ---------------------------------------------------------------------------


class _Matcher:
    """One rule's compiled match program."""

    __slots__ = ("ops", "names", "slot_of", "n_slots", "single")

    def __init__(self, ops, names, slot_of):
        self.ops = tuple(ops)
        self.names = tuple(sorted(slot_of.items(), key=lambda kv: kv[1]))
        self.slot_of = slot_of
        self.n_slots = len(slot_of)
        # Fast path: the overwhelmingly common single-base-pattern rule
        # skips the op loop (and all snapshotting) entirely.
        if len(self.ops) == 1 and self.ops[0][0] == C_BASE:
            self.single = self.ops[0][1]
        else:
            self.single = None
        _ = names  # names order is slot order; parameter kept for clarity


class CompiledRule:
    """A transition plus its compiled matcher (or None: interpreter
    fallback) and dispatch metadata."""

    __slots__ = ("rule", "index", "matcher", "kinds_normal", "kinds_eop",
                 "mentions_eop")

    def __init__(self, rule, index, matcher, kinds_normal, kinds_eop):
        self.rule = rule
        self.index = index
        self.matcher = matcher
        self.kinds_normal = kinds_normal
        self.kinds_eop = kinds_eop
        self.mentions_eop = rule.pattern.mentions_end_of_path()

    def match(self, point, engine, end_of_path=False, seed_name=None,
              seed_obj=None):
        """Run the compiled matcher; return the bindings dict (content-
        identical to the interpreter's) on success, None on failure."""
        matcher = self.matcher
        slots = [None] * matcher.n_slots
        if seed_name is not None:
            slots[matcher.slot_of[seed_name]] = seed_obj
        single = matcher.single
        if single is not None:
            ok = _run_program(single, point, slots)
        else:
            ok = _run_ops(matcher, point, slots, engine, end_of_path)
        if not ok:
            return None
        bindings = {}
        for name, slot in matcher.names:
            value = slots[slot]
            if value is not None:
                bindings[name] = value
        return bindings


class _StateTable:
    """Candidate transitions out of one source state, indexed by point
    class.  The per-class tuples are built lazily and cached; an empty
    cached tuple *is* the miss memo -- re-probing costs one dict get."""

    __slots__ = ("rules", "eop_mentions", "_normal", "_eop")

    def __init__(self, rules):
        self.rules = tuple(rules)
        #: Rules whose pattern mentions $end_of_path$, declared order
        #: (drives the engine's scope-exit matching).
        self.eop_mentions = tuple(r for r in self.rules if r.mentions_eop)
        self._normal = {}
        self._eop = {}

    def candidates(self, cls, end_of_path=False):
        cache = self._eop if end_of_path else self._normal
        cands = cache.get(cls)
        if cands is None:
            if end_of_path:
                cands = tuple(
                    r for r in self.rules if _admits(r.kinds_eop, cls)
                )
            else:
                cands = tuple(
                    r for r in self.rules if _admits(r.kinds_normal, cls)
                )
            cache[cls] = cands
        return cands


class CompiledExtension:
    """All of one extension's transitions, compiled.

    ``specific[(var, value)]`` and ``globals_[value]`` map source states
    to :class:`_StateTable`; states with no outgoing transitions have no
    entry at all, so the engine's common "nothing to do here" case is a
    single failed dict probe.
    """

    def __init__(self, extension):
        self.extension = extension
        self.n_rules = 0
        self.n_fallback = 0
        specific = {}
        globals_ = {}
        declared = list(extension.hole_types)
        for index, rule in enumerate(extension.transitions):
            crule = self._compile_rule(rule, index, declared)
            source = rule.source
            if source.is_global:
                globals_.setdefault(source.value, []).append(crule)
            else:
                specific.setdefault((source.var, source.value), []).append(crule)
        self.specific = {
            key: _StateTable(rules) for key, rules in specific.items()
        }
        self.globals_ = {
            key: _StateTable(rules) for key, rules in globals_.items()
        }
        self._any_memo = {}

    def _compile_rule(self, rule, index, declared):
        self.n_rules += 1
        kinds_normal, kinds_eop = _analyze(rule.pattern)
        names = list(declared)
        for extra in _pattern_holes(rule.pattern, []):
            if extra not in names:
                names.append(extra)
        slot_of = {name: i for i, name in enumerate(names)}
        try:
            ops = []
            _emit_pattern(rule.pattern, ops, slot_of)
            matcher = _Matcher(ops, names, slot_of)
        except _CannotCompile:
            matcher = None
            self.n_fallback += 1
        return CompiledRule(rule, index, matcher, kinds_normal, kinds_eop)

    # -- engine queries ----------------------------------------------------

    def any_candidates(self, cls, end_of_path):
        """True when *some* state table admits this node class.

        The extension-wide "no candidates" memo: after the first probe for
        a class the answer is one dict hit, letting the engine skip the
        whole per-instance loop for node kinds no rule can match (kinds
        are analyzed even for fallback rules, so this is sound).
        """
        key = (cls, end_of_path)
        memo = self._any_memo
        cached = memo.get(key)
        if cached is None:
            cached = any(
                table.candidates(cls, end_of_path)
                for table in self.specific.values()
            ) or any(
                table.candidates(cls, end_of_path)
                for table in self.globals_.values()
            )
            memo[key] = cached
        return cached

    def specific_table(self, var_name, value):
        return self.specific.get((var_name, value))

    def global_table(self, value):
        return self.globals_.get(value)

    def all_rules(self):
        for table in self.specific.values():
            for crule in table.rules:
                yield crule
        for table in self.globals_.values():
            for crule in table.rules:
                yield crule


def compile_matcher(pattern, extra_names=()):
    """Compile one composed pattern standalone (tests, tooling).

    Slots are allocated from ``extra_names`` followed by the holes found
    in the pattern; returns a :class:`CompiledRule`-like single matcher
    wrapper with a ``match(point, engine=None, end_of_path=False)``
    convenience, or raises :class:`_CannotCompile`.
    """
    names = list(extra_names)
    for name in _pattern_holes(pattern, []):
        if name not in names:
            names.append(name)
    slot_of = {name: i for i, name in enumerate(names)}
    ops = []
    _emit_pattern(pattern, ops, slot_of)
    return _Matcher(ops, names, slot_of)


def run_matcher(matcher, point, engine=None, end_of_path=False, seed=None):
    """Run a standalone matcher; returns the bindings dict or None."""
    slots = [None] * matcher.n_slots
    if seed:
        for name, value in seed.items():
            slots[matcher.slot_of[name]] = value
    if matcher.single is not None:
        ok = _run_program(matcher.single, point, slots)
    else:
        ok = _run_ops(matcher, point, slots, engine, end_of_path)
    if not ok:
        return None
    return {
        name: slots[slot]
        for name, slot in matcher.names
        if slots[slot] is not None
    }
