"""The free checker (Figure 1): use-after-free and double-free.

``FREE_CHECKER_SOURCE`` is the Figure 1 metal text, verbatim modulo the
DSL's underscored spelling of ``any pointer``.  :func:`free_checker`
compiles it; :func:`free_checker_ranked` is the production variant whose
reports carry a ``rule_id`` (the freeing function) so statistical ranking
can group and score them (§9), and which also counts "pointer passed to
kfree and never touched again" as rule examples.
"""

from repro.metal import ANY_POINTER, Extension, compile_metal

FREE_CHECKER_SOURCE = """
sm free_checker {
 state decl any_pointer v;

 start: { kfree(v) } ==> v.freed ;

 v.freed: { *v } ==> v.stop,
    { err("using %s after free!", mc_identifier(v)); }
  | { kfree(v) } ==> v.stop,
    { err("double free of %s!", mc_identifier(v)); }
  ;
}
"""


def free_checker(free_functions=None):
    """The Figure 1 checker.

    Called with no arguments this compiles the figure's metal text
    verbatim; passing deallocator names (``("kfree", "vfree")``) builds the
    production variant: one start rule per deallocator, all dereference
    forms, rule_id tagging and example counting for statistical ranking.
    """
    if free_functions is None:
        return compile_metal(FREE_CHECKER_SOURCE)
    ext = Extension("free_checker")
    ext.state_var("v", ANY_POINTER)
    for fn in free_functions:
        ext.transition("start", "{ %s(v) }" % fn, to="v.freed",
                       action=_remember_freer(fn))
    # The production variant widens Figure 1's "{*v}" to every dereference
    # form: *v, v->field, v[i].
    from repro.metal.patterns import Callout

    def derefs_v(context):
        from repro.metal.callouts import mc_is_deref_of

        return mc_is_deref_of(context.point, context.bindings.get("v"))

    ext.transition(
        "v.freed",
        Callout(derefs_v, "mc_is_deref_of(mc_stmt, v)"),
        to="v.stop",
        action=lambda ctx: ctx.err(
            "using %s after free!", ctx.identifier("v"),
            rule_id=ctx.get_data("freer"), severity="ERROR",
        ),
    )
    for fn in free_functions:
        ext.transition(
            "v.freed",
            "{ %s(v) }" % fn,
            to="v.stop",
            action=lambda ctx: ctx.err(
                "double free of %s!", ctx.identifier("v"),
                rule_id=ctx.get_data("freer"), severity="ERROR",
            ),
        )
    # A freed pointer that is never touched again is an example of the
    # freeing function's rule being followed (statistical ranking, §9).
    ext.transition(
        "v.freed",
        "$end_of_path$",
        to="v.stop",
        action=lambda ctx: ctx.count_example(
            ctx.get_data("freer"), ctx.instance.origin_location
        ),
    )
    return ext


def _remember_freer(fn):
    def action(ctx):
        ctx.set_data("freer", fn)

    return action


def suppressed_free_checker(free_functions=("kfree",),
                            debug_functions=("printk", "dprintf")):
    """The §8 "targeted suppression" variant.

    The conservative checker's false positives came from (1) passing freed
    pointers to debugging print functions and (2) passing their addresses
    to reinitializers.  The paper fixed both with eight added lines; here
    the suppression is two transitions built from the shared helpers in
    :mod:`repro.reports.triage`.
    """
    from repro.reports.triage import (
        address_of_suppression,
        insert_suppressions,
        pattern_suppression,
    )

    ext = free_checker(free_functions)
    # Passing a freed pointer to a debug printer is fine: stay freed.
    insert_suppressions(ext, [
        pattern_suppression(ext, "v.freed", "{ %s(v) }" % fn)
        for fn in debug_functions
    ])
    # Passing &v to any function redefines v (the BSD idiom): drop state.
    ext.decl("fn", _any_fn_call())
    ext.decl("rest", _any_arguments())
    insert_suppressions(ext, [
        address_of_suppression(ext, "v.freed", "v", to="v.stop"),
    ])
    return ext


def _any_fn_call():
    from repro.metal import ANY_FN_CALL

    return ANY_FN_CALL


def _any_arguments():
    from repro.metal import ANY_ARGUMENTS

    return ANY_ARGUMENTS
