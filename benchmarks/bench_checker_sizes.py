"""§1 claim: "extensions are small -- usually between 10 and 200 lines of
code, depending mostly on the amount of error reporting that they do."

We count the effective source lines of every shipped checker (metal text
for the DSL checkers, Python body for the API checkers).
"""

import inspect

from repro.checkers import (
    ALL_CHECKERS,
    FREE_CHECKER_SOURCE,
    LOCK_CHECKER_SOURCE,
)


def _loc(text):
    return len(
        [
            line
            for line in text.splitlines()
            if line.strip() and not line.strip().startswith(("#", "//", "/*", "*"))
        ]
    )


def collect_sizes():
    sizes = {}
    sizes["free (metal, Fig. 1)"] = _loc(FREE_CHECKER_SOURCE)
    sizes["lock (metal, Fig. 3)"] = _loc(LOCK_CHECKER_SOURCE)
    for name, factory in sorted(ALL_CHECKERS.items()):
        sizes["%s (python)" % name] = _loc(inspect.getsource(factory))
    return sizes


def test_checker_sizes(benchmark):
    sizes = benchmark(collect_sizes)
    print("\nchecker sizes (paper: 10-200 lines each):")
    for name, loc in sorted(sizes.items(), key=lambda kv: kv[1]):
        print("  %-26s %3d lines" % (name, loc))
    for name, loc in sizes.items():
        assert 5 <= loc <= 200, name
