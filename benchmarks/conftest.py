"""Shared benchmark helpers.

Every benchmark prints the rows/series it regenerates (run with ``-s`` to
see them) and asserts the *shape* the paper reports; absolute timings are
whatever pytest-benchmark measures on the host.
"""

import pytest

from repro.cfront.parser import parse
from repro.engine.analysis import Analysis, AnalysisOptions


def analyze(code, extension, options=None, filename="bench.c", roots=None):
    unit = parse(code, filename)
    analysis = Analysis([unit], options=options or AnalysisOptions())
    result = analysis.run(extension, roots=roots)
    return result, analysis


@pytest.fixture
def fig2_code():
    return (
        "int contrived(int *p, int *w, int x) {\n"
        "    int *q;\n"
        "\n"
        "    if(x)\n"
        "    {\n"
        "        kfree(w);\n"
        "        q = p;\n"
        "        p = 0;\n"
        "    }\n"
        "    if(!x)\n"
        "        return *w;\n"
        "    return *q;\n"
        "}\n"
        "int contrived_caller(int *w, int x, int *p) {\n"
        "    kfree(p);\n"
        "    contrived(p, w, x);\n"
        "    return *w;\n"
        "}\n"
    )
