"""Killing variables and expressions (§8).

"Whenever a variable is defined, xgcc iterates through the list of program
objects with attached state and determines if the defined variable is used
within any of these objects.  If so, the object is transitioned to the
stop state ...  an expression (e.g., a[i]) with attached state is
transitioned to the stop state when a component of that expression (e.g.,
i) is redefined.  This analysis runs transparently unless a checker
requests otherwise, and it is the single most important technique for
suppressing false positives."
"""

from repro.cfront import astnodes as ast


def definition_target(point):
    """The lvalue defined at this program point, or None.

    Assignments and ``++``/``--`` define their targets.  Taking a
    variable's address is deliberately *not* a definition (the BSD
    debugging-function false positives of §8 are handled by checker-
    specific suppression instead).
    """
    if isinstance(point, ast.Assign):
        return point.target
    if isinstance(point, ast.Unary) and point.op in ("++", "--"):
        return point.operand
    return None


def kill_for_definition(sm, target, keep=()):
    """Stop every instance whose object uses the defined lvalue.

    Returns the list of killed instances.  ``keep`` lists instances exempt
    from this kill (the freshly created synonym of the assignment).
    """
    killed = []
    if isinstance(target, ast.Ident):
        name = target.name
        for inst in list(sm.active_vars):
            if inst in keep:
                continue
            if ast.contains_identifier(inst.obj, name):
                killed.append(inst)
                sm.remove(inst)
    else:
        target_key = ast.structural_key(target)
        for inst in list(sm.active_vars):
            if inst in keep:
                continue
            if _contains_subtree(inst.obj, target_key):
                killed.append(inst)
                sm.remove(inst)
    return killed


def kill_for_declaration(sm, name):
    """A fresh declaration shadows any stale state attached to the name."""
    killed = []
    for inst in list(sm.active_vars):
        if ast.contains_identifier(inst.obj, name):
            killed.append(inst)
            sm.remove(inst)
    return killed


def _contains_subtree(tree, target_key):
    return any(ast.structural_key(node) == target_key for node in tree.walk())
