"""Data values (§3.1) interacting with the cache: instances with
different data are different state tuples, so the analysis explores both
-- the mechanism behind the recursive-lock checker."""

from conftest import messages, run_checker

from repro.checkers.lock import counting_lock_checker
from repro.metal import ANY_POINTER, Extension


class TestDataValueCaching:
    def test_different_depths_not_conflated(self):
        # The same join block is reached with depth 1 and depth 2; both
        # must be explored (they are distinct tuples).
        code = (
            "int f(int *l, int c) {\n"
            "    lock(l);\n"
            "    if (c)\n"
            "        lock(l);\n"
            "    done();\n"
            "    if (c)\n"
            "        unlock(l);\n"
            "    unlock(l);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, counting_lock_checker())
        # both branches balance out: pruning correlates the two ifs
        assert messages(result) == []

    def test_depth_mismatch_found(self):
        code = (
            "int f(int *l, int c) {\n"
            "    lock(l);\n"
            "    if (c)\n"
            "        lock(l);\n"
            "    unlock(l);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, counting_lock_checker())
        assert any("still held 1 deep" in m for m in messages(result))

    def test_data_tuple_key(self):
        from repro.cfront.parser import parse_expression
        from repro.engine.state import VarInstance

        a = VarInstance("l", parse_expression("m"), "held", {"depth": 1})
        b = VarInstance("l", parse_expression("m"), "held", {"depth": 2})
        c = VarInstance("l", parse_expression("m"), "held", {"depth": 1})
        assert a.tuple_key("s") != b.tuple_key("s")
        assert a.tuple_key("s") == c.tuple_key("s")

    def test_data_survives_interprocedural_transfer(self):
        code = (
            "void grab_twice(int *l) { lock(l); lock(l); }\n"
            "int root(int *l) {\n"
            "    grab_twice(l);\n"
            "    unlock(l);\n"
            "    return 0;\n"  # still held 1 deep
            "}\n"
        )
        result = run_checker(code, counting_lock_checker())
        assert any("still held 1 deep" in m for m in messages(result))


class TestUserGlobalsVsPathData:
    def test_user_globals_accumulate_across_paths(self):
        ext = Extension("counter")
        ext.state_var("v", ANY_POINTER)

        def bump(ctx):
            ctx.globals["count"] = ctx.globals.get("count", 0) + 1

        ext.transition("start", "{ mark(v) }", to="v.seen", action=bump)
        code = (
            "int f(int *a, int *b, int c) {\n"
            "    if (c)\n"
            "        mark(a);\n"
            "    else\n"
            "        mark(b);\n"
            "    return 0;\n"
            "}\n"
        )
        from repro.cfront.parser import parse
        from repro.engine.analysis import Analysis

        analysis = Analysis([parse(code)])
        analysis.run(ext)
        # both branch paths bumped the persistent counter
        assert analysis.user_globals(ext)["count"] == 2

    def test_path_data_reverts_on_backtrack(self):
        ext = Extension("pathlocal")
        ext.state_var("v", ANY_POINTER)
        observed = []

        def record(ctx):
            observed.append(ctx.path_data.get("tag"))

        def tag(ctx):
            ctx.path_data["tag"] = "tagged"

        ext.transition("start", "{ mark(v) }", to="v.seen", action=tag)
        ext.transition("start", "{ probe() }", action=record)
        code = (
            "int f(int *a, int c) {\n"
            "    if (c)\n"
            "        mark(a);\n"
            "    probe();\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, ext)
        # probe() sees the tag only on the path that ran mark(a)
        assert sorted(observed, key=str) == [None, "tagged"]


class TestResultConveniences:
    def test_reports_for_filters_by_checker(self):
        from repro.cfront.parser import parse
        from repro.engine.analysis import Analysis
        from repro.checkers import free_checker, lock_checker

        code = "int f(int *p) { kfree(p); lock(p); return *p; }"
        result = Analysis([parse(code)]).run([free_checker(), lock_checker()])
        frees = result.reports_for("free_checker")
        locks = result.reports_for("lock_checker")
        assert all(r.checker == "free_checker" for r in frees)
        assert all(r.checker == "lock_checker" for r in locks)
        assert len(frees) + len(locks) == len(result.reports)

    def test_run_on_function(self):
        from repro.cfront.parser import parse
        from repro.engine.analysis import Analysis
        from repro.checkers import free_checker

        code = (
            "int a(int *p) { kfree(p); return *p; }\n"
            "int b(int *p) { kfree(p); return *p; }\n"
        )
        analysis = Analysis([parse(code)])
        result = analysis.run_on_function(free_checker(), "a")
        assert [r.function for r in result.reports] == ["a"]
