"""C front end: lexer, preprocessor, parser, AST, types, unparser.

This package is the substrate that replaces the GCC front end used by the
original xgcc.  It parses a practical subset of C into ASTs that the rest of
the system (CFG construction, metal pattern matching, the analysis engine)
consumes.
"""

from repro.cfront.source import Location, SourceError
from repro.cfront.lexer import Lexer, Token, TokenKind, tokenize
from repro.cfront.parser import Parser, parse, parse_expression, parse_statement
from repro.cfront.unparse import unparse

__all__ = [
    "Location",
    "SourceError",
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "parse",
    "parse_expression",
    "parse_statement",
    "unparse",
]
