"""Figure 1: the free checker -- compile the metal text and execute it.

Regenerates: the checker of Fig. 1 compiled from its printed source, and
the two errors its execution over Fig. 2 must find.
"""

from conftest import analyze, fig2_code  # noqa: F401

from repro.checkers import FREE_CHECKER_SOURCE
from repro.metal import compile_metal


def test_fig1_compile(benchmark):
    ext = benchmark(compile_metal, FREE_CHECKER_SOURCE)
    assert ext.name == "free_checker"
    assert len(ext.transitions) == 3
    print("\nFig. 1 checker: %d transitions, states %s / v.%s" % (
        len(ext.transitions), ext.global_states, ext.specific_states))


def test_fig1_execute(benchmark, fig2_code):
    ext = compile_metal(FREE_CHECKER_SOURCE)

    def run():
        result, __ = analyze(fig2_code, ext, filename="fig2.c")
        return result

    result = benchmark(run)
    lines = sorted(r.location.line for r in result.reports)
    print("\nFig. 1 on Fig. 2 -> errors at lines %s (paper: 12 and 17)" % lines)
    assert lines == [12, 17]
