"""Checker validation: lint an :class:`Extension` before running it.

The original system compiled metal to C and got some of this from the C
compiler; here the engine is dynamically typed, so a dedicated validator
catches checker-writing mistakes early:

* transitions out of states that nothing ever enters (unreachable);
* states that are entered but define no transitions (dead ends -- often
  a typo in a state name);
* creation rules whose pattern never binds the state variable (the
  instance could never attach to an object);
* path-specific targets mixing global and variable-bound arms;
* rules that can never fire because an earlier rule in the same state
  has a strictly more general pattern (shadowing; heuristic);
* extensions with no error reporting at all (usually a mistake).
"""

from repro.cfront import astnodes as ast
from repro.metal.patterns import (
    AndPattern,
    BasePattern,
    Callout,
    EndOfPath,
    OrPattern,
)
from repro.metal.sm import GLOBAL, PathSplit, StateRef, STOP


class Finding:
    """One validator diagnostic."""

    LEVELS = ("error", "warning")

    def __init__(self, level, code, message):
        assert level in self.LEVELS
        self.level = level
        self.code = code
        self.message = message

    def __repr__(self):
        return "[%s] %s: %s" % (self.level, self.code, self.message)


def validate(extension):
    """Validate an extension; returns a list of :class:`Finding`."""
    findings = []
    findings.extend(_check_reachability(extension))
    findings.extend(_check_creation_bindings(extension))
    findings.extend(_check_split_arms(extension))
    findings.extend(_check_shadowing(extension))
    findings.extend(_check_reporting(extension))
    return findings


def errors(extension):
    """Only the error-level findings."""
    return [f for f in validate(extension) if f.level == "error"]


# ---------------------------------------------------------------------------


def _targets_of(rule):
    if isinstance(rule.target, PathSplit):
        return [rule.target.true_state, rule.target.false_state]
    if isinstance(rule.target, StateRef):
        return [rule.target]
    return []


def _check_reachability(extension):
    findings = []
    entered = {StateRef(GLOBAL, extension.initial_global)}
    for rule in extension.transitions:
        for target in _targets_of(rule):
            if target is not None and target.value != STOP:
                entered.add(target)

    sources = {rule.source for rule in extension.transitions}
    for source in sorted(sources, key=repr):
        if source not in entered:
            findings.append(
                Finding(
                    "warning",
                    "unreachable-state",
                    "state %r has transitions but is never entered" % source,
                )
            )
    for target in sorted(entered, key=repr):
        if target not in sources and target.value != STOP:
            # Entering a state with no outgoing rules is legal (it just
            # parks the instance) but frequently a typo.
            findings.append(
                Finding(
                    "warning",
                    "dead-end-state",
                    "state %r is entered but defines no transitions" % target,
                )
            )
    return findings


def _pattern_holes(pattern):
    """Names of holes a pattern can bind (over-approximate for callouts)."""
    if isinstance(pattern, BasePattern):
        return {
            node.name
            for node in pattern.pattern_ast.walk()
            if isinstance(node, ast.Hole)
        }
    if isinstance(pattern, (AndPattern, OrPattern)):
        return _pattern_holes(pattern.left) | _pattern_holes(pattern.right)
    return set()


def _check_creation_bindings(extension):
    findings = []
    for rule in extension.transitions:
        if not rule.creates_instance:
            continue
        target = rule.target
        if isinstance(target, PathSplit):
            target = target.true_state
        var = target.var
        holes = _pattern_holes(rule.pattern)
        if var not in holes and not _has_callout(rule.pattern):
            findings.append(
                Finding(
                    "error",
                    "unbound-state-variable",
                    "rule %r creates an instance of %r but its pattern "
                    "never binds that hole" % (rule, var),
                )
            )
    return findings


def _has_callout(pattern):
    if isinstance(pattern, Callout):
        return True
    if isinstance(pattern, (AndPattern, OrPattern)):
        return _has_callout(pattern.left) or _has_callout(pattern.right)
    return False


def _check_split_arms(extension):
    findings = []
    for rule in extension.transitions:
        if not isinstance(rule.target, PathSplit):
            continue
        true_state, false_state = rule.target.true_state, rule.target.false_state
        if true_state is None or false_state is None:
            findings.append(
                Finding("error", "half-split",
                        "path-specific rule %r is missing an arm" % rule)
            )
            continue
        if true_state.is_global != false_state.is_global:
            findings.append(
                Finding(
                    "error",
                    "mixed-split",
                    "path-specific rule %r mixes a global arm with a "
                    "variable-bound arm" % rule,
                )
            )
    return findings


def _check_shadowing(extension):
    """Heuristic: within one state's rule list, a later base pattern that
    is structurally identical to an earlier one never fires."""
    findings = []
    by_source = {}
    for rule in extension.transitions:
        by_source.setdefault(rule.source, []).append(rule)
    for source, rules in by_source.items():
        seen = []
        for rule in rules:
            key = _pattern_key(rule.pattern)
            if key is not None and key in seen:
                findings.append(
                    Finding(
                        "warning",
                        "shadowed-rule",
                        "rule %r can never fire: an earlier rule in state "
                        "%r has an identical pattern" % (rule, source),
                    )
                )
            seen.append(key)
    return findings


def _pattern_key(pattern):
    if isinstance(pattern, BasePattern):
        return ("base", ast.structural_key(pattern.pattern_ast))
    if isinstance(pattern, EndOfPath):
        return ("eop",)
    return None  # callouts/compositions: opaque


def _check_reporting(extension):
    has_action = any(rule.action is not None for rule in extension.transitions)
    if not has_action:
        return [
            Finding(
                "warning",
                "no-actions",
                "extension %r has no actions at all -- it can transition "
                "but never report anything" % extension.name,
            )
        ]
    return []
