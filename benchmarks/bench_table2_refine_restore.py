"""Table 2: refine/restore semantics across a function call.

Each row becomes two micro-programs: one where the state flows *into* the
callee through the argument (refine) and one where the callee's effect
flows *back* (restore).  The by-value/by-reference choice of row 1 is the
engine option the table's last column describes.
"""

from conftest import analyze

from repro.checkers import free_checker
from repro.engine.analysis import AnalysisOptions

ROWS = [
    (
        "xa / xf / state on xa (by reference)",
        "void callee(int *xf) { kfree(xf); }\n"
        "int caller(int *xa) { callee(xa); return *xa; }\n",
        ["using xa after free!"],
        None,
    ),
    (
        "xa / xf / state on xa (by value)",
        "void callee(int *xf) { kfree(xf); }\n"
        "int caller(int *xa) { callee(xa); return *xa; }\n",
        [],
        AnalysisOptions(by_value_params=True),
    ),
    (
        "&xa / xf / state on xa",
        "void callee(int **xf) { kfree(*xf); }\n"
        "int caller(int *xa) { callee(&xa); return *xa; }\n",
        ["using xa after free!"],
        None,
    ),
    (
        "xa / xf / state on xa.field",
        "struct s { int *field; };\n"
        "void callee(struct s xf) { kfree(xf.field); }\n"
        "int caller(struct s xa) { callee(xa); return *xa.field; }\n",
        ["using xa.field after free!"],
        None,
    ),
    (
        "xa / xf / state on xa->field",
        "struct s { int *field; };\n"
        "void callee(struct s *xf) { kfree(xf->field); }\n"
        "int caller(struct s *xa) { callee(xa); return *xa->field; }\n",
        ["using xa->field after free!"],
        None,
    ),
    (
        "xa / xf / state on *xa",
        "void callee(int **xf) { kfree(*xf); }\n"
        "int caller(int **xa) { callee(xa); return **xa; }\n",
        ["using *xa after free!"],
        None,
    ),
    (
        "all levels of indirection (**p)",
        "void callee(int ***xf) { kfree(**xf); }\n"
        "int caller(int ***xa) { callee(xa); return ***xa; }\n",
        ["using **xa after free!"],
        None,
    ),
    (
        "refine direction: state into the callee",
        "int callee(int *xf) { return *xf; }\n"
        "int caller(int *xa) { kfree(xa); return callee(xa); }\n",
        ["using xf after free!"],
        None,
    ),
]


def run_all_rows():
    outcomes = []
    for label, code, expected, options in ROWS:
        result, __ = analyze(code, free_checker(), options=options)
        outcomes.append((label, sorted(r.message for r in result.reports), expected))
    return outcomes


def test_table2_rows(benchmark):
    outcomes = benchmark(run_all_rows)
    print("\nTable 2 reproduction (refine/restore across calls):")
    for label, got, expected in outcomes:
        status = "ok" if got == sorted(expected) else "MISMATCH"
        print("  [%-8s] %-42s -> %s" % (status, label, got or "(clean)"))
    for label, got, expected in outcomes:
        assert got == sorted(expected), label
