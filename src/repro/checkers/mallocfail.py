"""Unchecked-allocation checker.

Flags a dereference of a freshly allocated pointer that happens before
*any* test of the pointer -- the classic "kernel code must check kmalloc"
rule.  The null checker (:mod:`repro.checkers.null`) is the path-sensitive
sibling; this one is deliberately simpler and demonstrates how little
metal a useful rule needs.

The paper ranks this class of error low ("easier to diagnose with
testing, such as memory allocation failures", §9), so its default
severity is MINOR.
"""

from repro.metal import ANY_ARGUMENTS, ANY_POINTER, Extension
from repro.metal.patterns import Callout


def malloc_fail_checker(alloc_functions=("kmalloc", "malloc")):
    ext = Extension("malloc_fail_checker")
    ext.state_var("v", ANY_POINTER)
    ext.decl("args", ANY_ARGUMENTS)
    ext.default_severity = "MINOR"

    for fn in alloc_functions:
        ext.transition("start", "{ v = %s(args) }" % fn, to="v.unchecked",
                       action=_remember(fn))

    # Any mention of v in a branch condition counts as a check.
    checked = Callout(_is_checked, "v compared in a branch condition")
    ext.transition("v.unchecked", checked, to="v.stop",
                   action=lambda ctx: ctx.count_example(
                       ctx.get_data("alloc"), ctx.instance.origin_location))

    deref = Callout(_derefs_v, "mc_is_deref_of(mc_stmt, v)")
    ext.transition(
        "v.unchecked",
        deref,
        to="v.stop",
        action=lambda ctx: ctx.err(
            "%s from %s used without a NULL check",
            ctx.identifier("v"),
            ctx.get_data("alloc", "allocator"),
            rule_id=ctx.get_data("alloc"),
        ),
    )
    return ext


def _remember(fn):
    def action(ctx):
        ctx.set_data("alloc", fn)

    return action


def _is_checked(context):
    from repro.cfront import astnodes as ast

    engine = context.engine
    if engine is None:
        return False
    if not engine.point_is_branch_condition(context.point):
        return False
    obj = context.bindings.get("v")
    if obj is None:
        return False
    key = ast.structural_key(obj)
    return any(ast.structural_key(node) == key for node in context.point.walk())


def _derefs_v(context):
    from repro.metal.callouts import mc_is_deref_of

    return mc_is_deref_of(context.point, context.bindings.get("v"))
