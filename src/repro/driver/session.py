"""Incremental analysis sessions: re-analyze only the dirty cone.

A session ties one project + extension set + option configuration to a
persistent tier-2 summary store (:class:`repro.driver.cache.SummaryCache`)
and schedules pass 2 around *function fingerprints*
(:mod:`repro.cfg.fingerprint`):

1. Fingerprint every function.  The fingerprint is a Merkle hash over
   the function's emitted body tokens, its definition location, and its
   direct callees' fingerprints -- so a root's fingerprint covers its
   entire transitive callee cone.
2. Diff against the manifest the previous run left behind.  A root whose
   fingerprint is unchanged produced, by construction, the same
   analysis outcome; everything else is the *dirty cone* (edited
   functions plus their transitive callers).
3. Re-analyze only the dirty roots (serial or parallel -- the component
   scheduler skips untouched components entirely), capturing one
   independent :class:`repro.engine.summaries.RootArtifact` per
   (extension, root).
4. Replay cached artifacts for the clean roots and freshly captured
   ones for the dirty roots, in serial (extension, root) order, through
   a fresh log -- reproducing a cold run's ranked report byte for byte.

Safety valves (all recorded in the driver stats, never silent):

- ``restrict_partial_hits`` makes caching change reports; the session
  refuses and runs non-incrementally.
- Extensions that leave cross-root state behind (AST annotations,
  user globals) make per-root outcomes non-independent; detected after
  the restricted run, triggering a full non-incremental re-run and no
  persistence.
- Truncated runs (global step budget) skip roots order-dependently;
  same fallback.
- Degraded roots (per-root budget blown, recovered error) are never
  persisted, so they are re-analyzed on every run until they pass.
- A corrupt summary frame is evicted and its root re-analyzed (same
  self-heal contract as the tier-1 AST cache).
"""

import copy
import hashlib
import os

from repro.cfg.fingerprint import fingerprint_tables
from repro.driver import cache as astcache
from repro.engine.analysis import AnalysisOptions, AnalysisResult
from repro.engine.errors import ErrorLog
from repro.engine.summaries import SUMMARY_VERSION

#: AnalysisOptions fields excluded from the session signature:
#: capture_root_artifacts is the session's own machinery, not a semantic
#: switch of the run being cached.
_NON_SEMANTIC_OPTIONS = frozenset(["capture_root_artifacts"])


def session_signature(checker_names=(), metal_texts=(), options=None,
                      extra=""):
    """A stable identity for one analysis configuration.

    Everything that changes what a run reports must land here: the
    built-in checker names (in order), the full text of every metal
    extension, every semantic analysis option, and the parser / summary
    format versions.  Two runs share cached summaries only when their
    signatures match.
    """
    digest = hashlib.sha256()
    digest.update(astcache.PARSER_VERSION.encode())
    digest.update(b"\x00")
    digest.update(SUMMARY_VERSION.encode())
    digest.update(b"\x00")
    for name in checker_names:
        digest.update(str(name).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for text in metal_texts:
        digest.update(str(text).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for name, value in sorted(vars(options or AnalysisOptions()).items()):
        if name in _NON_SEMANTIC_OPTIONS:
            continue
        digest.update(("%s=%r" % (name, value)).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    digest.update(str(extra).encode())
    return digest.hexdigest()


def summary_key(signature, ext_index, ext_name, root, fingerprint):
    """The tier-2 store key for one (extension, root) artifact."""
    digest = hashlib.sha256()
    for part in (signature, str(ext_index), str(ext_name), str(root),
                 str(fingerprint)):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


class IncrementalSession:
    """Summary-persistent incremental scheduling for one configuration.

    Construct with the project's cache directory and a
    :func:`session_signature`; pass as ``Project.run(...,
    incremental=session)``.  Reusable across runs (the manifest and
    frames live on disk, not in the object).
    """

    def __init__(self, cache_dir, signature, stats=None):
        self.store = astcache.SummaryCache(
            os.path.join(cache_dir, "summaries")
        )
        self.signature = signature
        #: Optional DriverStats override; defaults to the project's.
        self.stats = stats

    # -- scheduling --------------------------------------------------------

    def run(self, project, extensions, options=None, jobs=1,
            extension_factory=None, worker_timeout=None):
        """Incremental pass 2: fingerprint, diff, re-analyze dirty roots,
        replay the rest.  Returns an :class:`AnalysisResult` whose
        reports (and ranking inputs) match a cold run byte for byte."""
        if not isinstance(extensions, (list, tuple)):
            extensions = [extensions]
        options = options or AnalysisOptions()
        stats = self.stats or project.stats

        if options.restrict_partial_hits:
            return self._fallback(
                project, extensions, options, jobs, extension_factory,
                worker_timeout, stats,
                "restrict_partial_hits changes reports under caching",
            )

        graph = project.callgraph
        local, fingerprints = fingerprint_tables(graph)
        all_roots = (
            graph.roots() if options.interprocedural
            else sorted(graph.functions)
        )

        manifest = self.store.load_manifest(self.signature)
        if manifest is None:
            stats.add("incremental_cold_runs")
            edited = set(fingerprints)
            cone = set(fingerprints)
        else:
            edited = {
                name for name, token_hash in local.items()
                if (manifest.get(name) or (None, None))[0] != token_hash
            }
            cone = {
                name for name, fingerprint in fingerprints.items()
                if (manifest.get(name) or (None, None))[1] != fingerprint
            }
        stats.add("incremental_dirty_functions", len(edited))
        stats.add("incremental_dirty_cone", len(cone))

        reanalyze = set(root for root in all_roots if root in cone)
        cached = self._load_clean_artifacts(
            extensions, (root for root in all_roots if root not in cone),
            fingerprints, reanalyze, stats,
        )

        analyze_roots = sorted(reanalyze)
        stats.add("incremental_roots_analyzed", len(analyze_roots))
        stats.add(
            "incremental_roots_replayed",
            len(all_roots) - len(analyze_roots),
        )
        run_options = copy.copy(options)
        run_options.capture_root_artifacts = True
        fresh = project.run(
            extensions, run_options, jobs=jobs,
            extension_factory=extension_factory,
            worker_timeout=worker_timeout, roots=analyze_roots,
        )

        if fresh.coupled:
            return self._fallback(
                project, extensions, options, jobs, extension_factory,
                worker_timeout, stats,
                "extensions left cross-root state (annotations or user "
                "globals); per-root artifacts are not independent",
            )
        if fresh.truncated:
            return self._fallback(
                project, extensions, options, jobs, extension_factory,
                worker_timeout, stats,
                "global step budget exhausted; root skipping is "
                "order-dependent",
            )

        result = self._merge(extensions, all_roots, fresh, cached)
        self._persist(fresh, fingerprints, local, stats)
        return result

    # -- pieces ------------------------------------------------------------

    def _fallback(self, project, extensions, options, jobs,
                  extension_factory, worker_timeout, stats, why):
        """Run non-incrementally (and persist nothing), loudly."""
        stats.add("incremental_fallbacks")
        stats.record_degradation(
            "incremental", "%s; re-ran non-incrementally" % why
        )
        return project.run(
            extensions, options, jobs=jobs,
            extension_factory=extension_factory,
            worker_timeout=worker_timeout,
        )

    def _load_clean_artifacts(self, extensions, clean_roots, fingerprints,
                              reanalyze, stats):
        """``{(ext_index, root): RootArtifact}`` for every clean root all
        of whose frames load; roots with any missing or corrupt frame are
        moved into ``reanalyze`` instead."""
        cached = {}
        for root in clean_roots:
            loaded = []
            for ext_index, ext in enumerate(extensions):
                name = getattr(ext, "name", repr(ext))
                key = summary_key(
                    self.signature, ext_index, name, root,
                    fingerprints[root],
                )
                try:
                    if self.store.lookup(key) is None:
                        stats.add("summary_misses")
                        loaded = None
                        break
                    loaded.append((ext_index, self.store.load(key)))
                except (OSError, astcache.CacheCorruption) as err:
                    stats.add("summary_evictions")
                    stats.record_degradation(
                        "summary-cache",
                        "%s/%s: corrupt summary frame (%s); evicted and "
                        "re-analyzed" % (name, root, err),
                    )
                    self.store.evict(key)
                    loaded = None
                    break
            if loaded is None:
                reanalyze.add(root)
            else:
                stats.add("summary_hits", len(loaded))
                for ext_index, artifact in loaded:
                    cached[(ext_index, root)] = artifact
        return cached

    def _merge(self, extensions, all_roots, fresh, cached):
        """Replay fresh + cached artifacts in serial (extension, root)
        order through one log: global dedup re-applies at exactly the
        points a cold serial run would apply it."""
        produced = {
            (artifact.ext_index, artifact.root): artifact
            for artifact in fresh.root_artifacts
        }
        log = ErrorLog()
        degraded = []
        for ext_index in range(len(extensions)):
            for root in all_roots:
                artifact = produced.get((ext_index, root))
                if artifact is None:
                    artifact = cached.get((ext_index, root))
                if artifact is None:
                    continue
                artifact.replay_into(log)
                degraded.extend(artifact.degraded)
        merged_stats = dict(fresh.stats)
        merged_stats["errors"] = len(log)
        return AnalysisResult(
            log, fresh.tables, merged_stats, truncated=False,
            degraded=degraded,
        )

    def _persist(self, fresh, fingerprints, local, stats):
        """Store every clean fresh artifact plus the new manifest."""
        for artifact in fresh.root_artifacts:
            if not artifact.clean:
                continue
            fingerprint = fingerprints.get(artifact.root)
            if fingerprint is None:
                continue
            if artifact.summary is not None:
                artifact.summary.fingerprint = fingerprint
            key = summary_key(
                self.signature, artifact.ext_index, artifact.extension,
                artifact.root, fingerprint,
            )
            self.store.store(key, artifact)
            stats.add("summary_stores")
        self.store.store_manifest(
            self.signature,
            {
                name: [local[name], fingerprints[name]]
                for name in fingerprints
            },
        )
