"""Content-addressed function fingerprints over the call graph.

The incremental driver (docs/DRIVER.md, "Incremental re-analysis") keys
persistent per-root analysis artifacts by a *function fingerprint*: a
hash of everything that can change what analyzing the function from a
root produces.  Fingerprints form a Merkle DAG over
:class:`repro.cfg.callgraph.CallGraph` -- a function's fingerprint folds
in the fingerprints of its direct callees, so a root's fingerprint
covers its entire transitive callee cone and "did anything under this
root change?" is a single hash comparison.

Each function's *local* hash covers:

- its canonically emitted token stream (the :func:`repro.cfront.unparse`
  rendering of the whole declaration -- whitespace- and
  comment-insensitive, but sensitive to every real token including the
  name and parameter list);
- its definition location (file + line + column).  Locations are part of
  every report, so a function that merely *moved* must be re-analyzed to
  keep incremental reports byte-identical to a cold run;
- the sorted names of callees with no definition in the project (defined
  callees contribute their full fingerprints instead).

Recursive call cycles are hashed per strongly-connected component: every
member of an SCC folds in a group hash over all members' local hashes
plus the fingerprints of the SCC's external callees, so the Merkle
construction terminates and any edit inside a cycle invalidates the
whole cycle (and its callers) deterministically.
"""

import hashlib

from repro.cfront.unparse import unparse


def function_token_hash(decl):
    """The local content hash of one function definition."""
    digest = hashlib.sha256()
    location = getattr(decl, "location", None)
    if location is not None:
        digest.update(
            ("%s:%s:%s" % (location.filename, location.line,
                           getattr(location, "column", 0))).encode()
        )
    digest.update(b"\x00")
    digest.update(unparse(decl).encode())
    return digest.hexdigest()


def strongly_connected_components(graph):
    """Tarjan's SCCs over the defined-call edges, iteratively (generated
    call chains nest thousands deep).  Returns a list of sorted name
    lists in reverse-topological order: callees before callers."""
    index_of = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for start in sorted(graph.functions):
        if start in index_of:
            continue
        # Each work entry is (name, iterator over defined callees).
        work = [(start, None)]
        while work:
            name, edges = work.pop()
            if edges is None:
                index_of[name] = lowlink[name] = counter[0]
                counter[0] += 1
                stack.append(name)
                on_stack.add(name)
                edges = iter(sorted(
                    callee
                    for callee in graph.callees.get(name, ())
                    if callee in graph.functions
                ))
            advanced = False
            for callee in edges:
                if callee not in index_of:
                    work.append((name, edges))
                    work.append((callee, None))
                    advanced = True
                    break
                if callee in on_stack:
                    lowlink[name] = min(lowlink[name], index_of[callee])
            if advanced:
                continue
            if lowlink[name] == index_of[name]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == name:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[name])
    return sccs


def compute_fingerprints(graph, salt=""):
    """``{function name: fingerprint hexdigest}`` for a call graph.

    ``salt`` folds session-constant context (extension set, engine
    version, analysis options) into every fingerprint; leave it empty to
    fingerprint source content alone.
    """
    return fingerprint_tables(graph, salt)[1]


def fingerprint_tables(graph, salt=""):
    """``(local_hashes, fingerprints)`` for a call graph.

    ``local_hashes`` covers each function's own content only (which
    functions were *edited*); ``fingerprints`` is the Merkle construction
    over callees (which functions are in the *dirty cone*).
    """
    fingerprints = {}
    local = {name: function_token_hash(decl)
             for name, decl in graph.functions.items()}
    for component in strongly_connected_components(graph):
        members = set(component)
        digest = hashlib.sha256()
        digest.update(str(salt).encode())
        digest.update(b"\x00")
        for name in component:
            digest.update(name.encode())
            digest.update(b"\x1f")
            digest.update(local[name].encode())
            digest.update(b"\x1e")
        digest.update(b"\x00")
        external = set()
        for name in component:
            for callee in graph.callees.get(name, ()):
                if callee in members:
                    continue
                if callee in graph.functions:
                    # SCCs arrive callees-first, so this is always ready.
                    external.add(("fp", callee, fingerprints[callee]))
                else:
                    external.add(("undef", callee, ""))
        for kind, callee, value in sorted(external):
            digest.update(("%s:%s:%s" % (kind, callee, value)).encode())
            digest.update(b"\x1d")
        group_hash = digest.hexdigest()
        for name in component:
            member = hashlib.sha256()
            member.update(local[name].encode())
            member.update(b"\x00")
            member.update(group_hash.encode())
            fingerprints[name] = member.hexdigest()
    return local, fingerprints


def dirty_cone(graph, dirty_functions):
    """The dirty functions plus every transitive caller of one.

    This is the set of functions whose fingerprint changes when exactly
    ``dirty_functions`` changed content -- the re-analysis cone the
    incremental scheduler must cover (callees are *not* in the cone:
    their summaries are still valid).
    """
    cone = set()
    stack = [name for name in dirty_functions if name in graph.functions]
    while stack:
        name = stack.pop()
        if name in cone:
            continue
        cone.add(name)
        stack.extend(graph.callers.get(name, ()))
    return cone
