"""Refinement benchmarks: demotion teeth and the warm verdict cache.

Dumped to ``BENCH_refine.json``: over a seeded teeth workload -- pairs
of functions whose guards the §8 syntactic pruner cannot refute (the
strict-inequality off-by-one pattern, ``x < c`` then ``x > c-1``) next
to genuinely feasible twins --

- the cold pass evaluates every report (slice + bounded enumeration +
  interval domain) and must classify every seeded contradiction
  ``infeasible`` and every twin ``confirmed`` (the demotion-rate
  tripwire: refinement that stops demoting the seeded false paths
  fails here, not in production),
- the warm pass re-refines the same tree against the same artifact
  store and must serve *every* verdict from the (function fingerprint,
  report hash) cache -- ``refine_cache_hits == reports refined`` --
  at least 5x faster than the cold evaluating pass (the cache
  tripwire).
"""

import functools
import json
import time

from repro.cfg.fingerprint import fingerprint_tables
from repro.driver.cli import _build_extensions
from repro.driver.project import Project
from repro.driver.stats import DriverStats
from repro.driver.store import LocalStore
from repro.ranking import rank_reports
from repro.refine import demote_infeasible, refine_reports, verdict_of

SUMMARY_PATH = "BENCH_refine.json"

bench_checkers = functools.partial(_build_extensions, ("free",), ())

#: Seeded (contradictory, feasible) function pairs.
N_PAIRS = 8

_CONTRADICTORY = (
    "int bad_%(i)d(int *p, int x) {\n"
    "    if (x < %(hi)d)\n"
    "        kfree(p);\n"
    "    if (x > %(lo)d)\n"
    "        return *p;\n"
    "    return 0;\n"
    "}\n"
)

_FEASIBLE = (
    "int ok_%(i)d(int *q, int y) {\n"
    "    if (y > 0)\n"
    "        kfree(q);\n"
    "    if (y > 1)\n"
    "        return *q;\n"
    "    return 0;\n"
    "}\n"
)


def teeth_module():
    parts = []
    for i in range(N_PAIRS):
        hi = 5 + i
        parts.append(_CONTRADICTORY % {"i": i, "hi": hi, "lo": hi - 1})
        parts.append(_FEASIBLE % {"i": i})
    return "\n".join(parts)


def analyzed_reports(root, path):
    project = Project(include_paths=[root])
    project.compile_files([path])
    result = project.run(bench_checkers())
    reports = rank_reports(list(result.reports), "severity", result.log)
    return project, reports


def timed_refine(reports, callgraph, backend, fingerprints):
    stats = DriverStats()
    start = time.perf_counter()
    refine_reports(reports, callgraph, stats=stats, backend=backend,
                   fingerprints=fingerprints)
    return time.perf_counter() - start, stats


def test_refine_demotes_seeded_false_paths_and_caches(tmp_path):
    root = tmp_path / "src"
    root.mkdir()
    path = root / "teeth.c"
    path.write_text(teeth_module())

    project, cold_reports = analyzed_reports(str(root), str(path))
    assert len(cold_reports) == 2 * N_PAIRS, [r.function
                                              for r in cold_reports]
    __, fingerprints = fingerprint_tables(project.callgraph)
    backend = LocalStore(str(tmp_path / "store"))

    cold_s, cold_stats = timed_refine(cold_reports, project.callgraph,
                                      backend, fingerprints)
    verdicts = {r.function: verdict_of(r) for r in cold_reports}
    for i in range(N_PAIRS):
        assert verdicts["bad_%d" % i] == "infeasible", verdicts
        assert verdicts["ok_%d" % i] == "confirmed", verdicts
    demoted = demote_infeasible(list(cold_reports))
    assert [r.function.startswith("ok_") for r in demoted] == \
        [True] * N_PAIRS + [False] * N_PAIRS
    demotion_rate = sum(
        1 for r in cold_reports if verdict_of(r) == "infeasible"
    ) / len(cold_reports)
    assert demotion_rate >= N_PAIRS / (2 * N_PAIRS)
    assert cold_stats.count("refine_cache_hits") == 0

    # The warm pass: a fresh analysis of the unchanged tree against the
    # same store must replay every verdict instead of re-enumerating.
    warm_project, warm_reports = analyzed_reports(str(root), str(path))
    __, warm_fps = fingerprint_tables(warm_project.callgraph)
    warm_s, warm_stats = timed_refine(warm_reports,
                                      warm_project.callgraph,
                                      backend, warm_fps)
    assert {r.function: verdict_of(r) for r in warm_reports} == verdicts
    warm_hits = warm_stats.count("refine_cache_hits")
    assert warm_hits == len(warm_reports), warm_stats.counters
    speedup = cold_s / warm_s if warm_s else float("inf")
    assert speedup >= 5.0, (cold_s, warm_s)

    summary = {
        "refine": {
            "reports": len(cold_reports),
            "confirmed": sum(1 for v in verdicts.values()
                             if v == "confirmed"),
            "infeasible": sum(1 for v in verdicts.values()
                              if v == "infeasible"),
            "demotion_rate": demotion_rate,
            "cold_refine_s": round(cold_s, 6),
            "warm_refine_s": round(warm_s, 6),
            "warm_speedup": round(speedup, 2),
            "warm_cache_hits": warm_hits,
        }
    }
    with open(SUMMARY_PATH, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(summary, indent=2, sort_keys=True))
