"""Control-flow graphs, the call graph, and the supergraph (§5-§6)."""

from repro.cfg.blocks import BasicBlock, CFG, Edge
from repro.cfg.builder import build_cfg
from repro.cfg.callgraph import CallGraph
from repro.cfg.supergraph import Supergraph, build_supergraph

__all__ = [
    "BasicBlock",
    "CFG",
    "Edge",
    "build_cfg",
    "CallGraph",
    "Supergraph",
    "build_supergraph",
]
