"""C type representations.

Types matter to the reproduction in two places: metal hole typing (Table 1:
``any pointer``, ``any scalar``, concrete C types) and the refine/restore
rules at call boundaries (Table 2).  The representation is deliberately
structural: two ``int *`` types compare equal wherever they were spelled.
"""


class CType:
    """Base class for C types."""

    def is_pointer(self):
        return False

    def is_scalar(self):
        """True for arithmetic and pointer types (usable in conditions)."""
        return False

    def is_arithmetic(self):
        return False

    def is_integer(self):
        return False

    def is_void(self):
        return False

    def is_function(self):
        return False

    def resolve(self):
        """Strip typedef indirections."""
        return self

    def __ne__(self, other):
        return not self.__eq__(other)


class BasicType(CType):
    """A builtin type such as ``int``, ``unsigned long`` or ``void``.

    ``name`` is the canonical spelling with specifiers in a fixed order.
    """

    _INTEGER_NAMES = frozenset(
        [
            "char",
            "signed char",
            "unsigned char",
            "short",
            "unsigned short",
            "int",
            "unsigned int",
            "long",
            "unsigned long",
            "long long",
            "unsigned long long",
            "_Bool",
        ]
    )
    _FLOAT_NAMES = frozenset(["float", "double", "long double"])

    def __init__(self, name):
        self.name = name

    def is_scalar(self):
        return not self.is_void()

    def is_arithmetic(self):
        return not self.is_void()

    def is_integer(self):
        return self.name in self._INTEGER_NAMES

    def is_float(self):
        return self.name in self._FLOAT_NAMES

    def is_void(self):
        return self.name == "void"

    def __eq__(self, other):
        return isinstance(other, BasicType) and other.name == self.name

    def __hash__(self):
        return hash(("basic", self.name))

    def __repr__(self):
        return "BasicType(%r)" % self.name

    def __str__(self):
        return self.name


class PointerType(CType):
    """``T *`` (qualifiers are tracked but ignored by equality)."""

    def __init__(self, target, qualifiers=()):
        self.target = target
        self.qualifiers = frozenset(qualifiers)

    def is_pointer(self):
        return True

    def is_scalar(self):
        return True

    def __eq__(self, other):
        return isinstance(other, PointerType) and other.target == self.target

    def __hash__(self):
        return hash(("ptr", self.target))

    def __repr__(self):
        return "PointerType(%r)" % self.target

    def __str__(self):
        return "%s *" % self.target


class ArrayType(CType):
    """``T[n]``; ``size`` is an AST expression or None for ``T[]``."""

    def __init__(self, element, size=None):
        self.element = element
        self.size = size

    def is_scalar(self):
        return False

    def decay(self):
        """Array-to-pointer decay."""
        return PointerType(self.element)

    def __eq__(self, other):
        return isinstance(other, ArrayType) and other.element == self.element

    def __hash__(self):
        return hash(("array", self.element))

    def __repr__(self):
        return "ArrayType(%r)" % self.element

    def __str__(self):
        return "%s[]" % self.element


class FunctionType(CType):
    """A function type: return type plus parameter types."""

    def __init__(self, return_type, parameters=(), varargs=False):
        self.return_type = return_type
        self.parameters = tuple(parameters)
        self.varargs = varargs

    def is_function(self):
        return True

    def __eq__(self, other):
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.parameters == self.parameters
            and other.varargs == self.varargs
        )

    def __hash__(self):
        return hash(("fn", self.return_type, self.parameters, self.varargs))

    def __repr__(self):
        return "FunctionType(%r, %r)" % (self.return_type, self.parameters)

    def __str__(self):
        params = ", ".join(str(p) for p in self.parameters)
        if self.varargs:
            params = params + ", ..." if params else "..."
        return "%s (*)(%s)" % (self.return_type, params)


class RecordType(CType):
    """A struct or union.  Equality is by tag (nominal), like C."""

    def __init__(self, kind, tag, fields=None):
        assert kind in ("struct", "union")
        self.kind = kind
        self.tag = tag  # may be None for anonymous records
        self.fields = fields  # list of (name, CType) or None if incomplete

    def field_type(self, name):
        for field_name, field_type in self.fields or ():
            if field_name == name:
                return field_type
        return None

    def __eq__(self, other):
        if not isinstance(other, RecordType) or other.kind != self.kind:
            return False
        if self.tag is not None or other.tag is not None:
            return other.tag == self.tag
        return self is other

    def __hash__(self):
        return hash((self.kind, self.tag))

    def __repr__(self):
        return "RecordType(%r, %r)" % (self.kind, self.tag)

    def __str__(self):
        return "%s %s" % (self.kind, self.tag or "<anon>")


class EnumType(CType):
    """An enum; behaves as an integer."""

    def __init__(self, tag, enumerators=()):
        self.tag = tag
        self.enumerators = tuple(enumerators)  # (name, value-or-None)

    def is_scalar(self):
        return True

    def is_arithmetic(self):
        return True

    def is_integer(self):
        return True

    def __eq__(self, other):
        if not isinstance(other, EnumType):
            return False
        if self.tag is not None or other.tag is not None:
            return other.tag == self.tag
        return self is other

    def __hash__(self):
        return hash(("enum", self.tag))

    def __repr__(self):
        return "EnumType(%r)" % self.tag

    def __str__(self):
        return "enum %s" % (self.tag or "<anon>")


class TypedefType(CType):
    """A typedef name; delegates classification to the underlying type."""

    def __init__(self, name, actual):
        self.name = name
        self.actual = actual

    def resolve(self):
        return self.actual.resolve()

    def is_pointer(self):
        return self.resolve().is_pointer()

    def is_scalar(self):
        return self.resolve().is_scalar()

    def is_arithmetic(self):
        return self.resolve().is_arithmetic()

    def is_integer(self):
        return self.resolve().is_integer()

    def is_void(self):
        return self.resolve().is_void()

    def is_function(self):
        return self.resolve().is_function()

    def __eq__(self, other):
        if isinstance(other, TypedefType):
            return self.resolve() == other.resolve()
        return self.resolve() == other

    def __hash__(self):
        return hash(self.resolve())

    def __repr__(self):
        return "TypedefType(%r)" % self.name

    def __str__(self):
        return self.name


# Commonly used singletons.
VOID = BasicType("void")
INT = BasicType("int")
UNSIGNED_INT = BasicType("unsigned int")
CHAR = BasicType("char")
LONG = BasicType("long")
UNSIGNED_LONG = BasicType("unsigned long")
FLOAT = BasicType("float")
DOUBLE = BasicType("double")
BOOL = BasicType("_Bool")

VOID_PTR = PointerType(VOID)
CHAR_PTR = PointerType(CHAR)
INT_PTR = PointerType(INT)
