"""Callout library tests (§4)."""

from repro.cfront.parser import parse_expression
from repro.metal.callouts import (
    LIBRARY,
    mc_arg,
    mc_callee_name,
    mc_constant_value,
    mc_contains,
    mc_identifier,
    mc_is_call_to,
    mc_is_constant,
    mc_is_deref_of,
    mc_is_ident,
    mc_is_null,
    mc_num_args,
)


def e(text):
    return parse_expression(text)


class TestCalloutLibrary:
    def test_mc_identifier(self):
        assert mc_identifier(e("dev->ptr")) == "dev->ptr"
        assert mc_identifier([e("a"), e("b")]) == "a, b"
        assert mc_identifier(None) == "<none>"

    def test_mc_is_call_to(self):
        assert mc_is_call_to(e("gets(buf)"), "gets")
        assert not mc_is_call_to(e("fgets(buf)"), "gets")
        # also accepts bare callee idents (fn-hole-in-callee-position)
        assert mc_is_call_to(e("gets"), "gets")

    def test_mc_callee_name(self):
        assert mc_callee_name(e("f(1)")) == "f"
        assert mc_callee_name(e("(*fp)(1)")) == ""

    def test_mc_is_ident_and_name(self):
        assert mc_is_ident(e("x"))
        assert not mc_is_ident(e("x + 1"))

    def test_mc_is_constant(self):
        assert mc_is_constant(e("42"))
        assert mc_is_constant(e('"str"'))
        assert not mc_is_constant(e("x"))
        assert mc_constant_value(e("42")) == 42
        assert mc_constant_value(e("x")) is None

    def test_mc_is_null(self):
        assert mc_is_null(e("0"))
        assert mc_is_null(e("(char *)0"))
        assert not mc_is_null(e("1"))
        assert not mc_is_null(e("p"))

    def test_mc_args(self):
        call = e("f(a, b, c)")
        assert mc_num_args(call) == 3
        assert mc_identifier(mc_arg(call, 1)) == "b"
        assert mc_arg(call, 9) is None

    def test_mc_contains(self):
        assert mc_contains(e("a[i] + f(j)"), "j")
        assert not mc_contains(e("a[i]"), "j")
        assert mc_contains([e("x"), e("y")], "y")

    def test_mc_is_deref_of(self):
        p = e("p")
        assert mc_is_deref_of(e("*p"), p)
        assert mc_is_deref_of(e("p->len"), p)
        assert mc_is_deref_of(e("p[2]"), p)
        assert not mc_is_deref_of(e("p + 1"), p)
        assert not mc_is_deref_of(e("*q"), p)
        assert not mc_is_deref_of(e("p.len"), p)  # dot is not a deref

    def test_library_complete(self):
        for name in (
            "mc_identifier",
            "mc_is_call_to",
            "mc_stmt",
            "mc_is_branch",
            "mc_is_deref_of",
            "mc_annotation",
        ):
            assert name in LIBRARY
