#!/usr/bin/env python
"""Audit the toy kernel under examples/toy_kernel/ with the full checker
suite -- the closest thing in this repository to the paper's "run fifty
checkers over the kernel" workflow, complete with preprocessor includes,
multiple translation units, file-scope statics, and severity ranking.

Run:  python examples/toy_kernel_audit.py
"""

import glob
import os

from repro.checkers import (
    free_checker,
    lock_checker,
    malloc_fail_checker,
    range_check_checker,
    user_pointer_checker,
)
from repro.driver.project import Project
from repro.ranking import stratify

HERE = os.path.dirname(os.path.abspath(__file__))
TREE = os.path.join(HERE, "toy_kernel")

#: the bugs seeded in the tree (see the file headers)
GROUND_TRUTH = {
    ("ring_push_noalloc", "malloc_fail_checker"),
    ("ring_reset", "lock_checker"),
    ("dev_destroy_twice", "free_checker"),
    ("dev_replace_buf", "free_checker"),
    ("ioctl_set_slot", "range_check_checker"),
    ("ioctl_raw_write", "user_pointer_checker"),
}


def main():
    project = Project(include_paths=[os.path.join(TREE, "include")])
    for path in sorted(glob.glob(os.path.join(TREE, "*.c"))):
        compiled = project.compile_text(open(path).read(), os.path.basename(path))
        print("pass 1: %-12s %5d bytes -> %6d bytes AST (%.1fx)" % (
            compiled.filename, compiled.source_bytes,
            compiled.emitted_bytes, compiled.expansion_ratio))

    result = project.run(
        [
            free_checker(("kfree",)),
            lock_checker(),
            malloc_fail_checker(),
            range_check_checker(),
            user_pointer_checker(),
        ]
    )

    print("\n== ranked audit (severity classes, then difficulty) ==")
    for index, report in enumerate(stratify(result.reports), 1):
        print("%2d. [%-8s] %s" % (index, report.severity or "plain",
                                  report.format()))

    found = {(r.function, r.checker) for r in result.reports}
    missing = GROUND_TRUTH - found
    extra = {f for f in found if f not in GROUND_TRUTH}
    print("\nground truth: %d/%d seeded bugs found, %d unexpected reports"
          % (len(GROUND_TRUTH) - len(missing), len(GROUND_TRUTH), len(extra)))
    if missing:
        print("  missed:", sorted(missing))
    if extra:
        print("  extra:", sorted(extra))
    assert not missing, "audit must find every seeded bug"
    assert not extra, "audit must not report clean functions"
    print("clean audit: every seeded bug found, nothing else flagged.")


if __name__ == "__main__":
    main()
