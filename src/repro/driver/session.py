"""Incremental analysis sessions: re-analyze only the dirty cone.

A session ties one project + extension set + option configuration to a
persistent tier-2 summary store (:class:`repro.driver.cache.SummaryCache`)
and schedules pass 2 around *function fingerprints*
(:mod:`repro.cfg.fingerprint`):

1. Fingerprint every function.  The fingerprint is a Merkle hash over
   the function's emitted body tokens, its definition location, and its
   direct callees' fingerprints -- so a root's fingerprint covers its
   entire transitive callee cone.
2. Diff against the manifest the previous run left behind.  A root whose
   fingerprint is unchanged produced, by construction, the same
   analysis outcome; everything else is the *dirty cone* (edited
   functions plus their transitive callers).
3. Re-analyze only the dirty roots (serial or parallel -- the component
   scheduler skips untouched components entirely), capturing one
   independent :class:`repro.engine.summaries.RootArtifact` per
   (extension, root).
4. Replay cached artifacts for the clean roots and freshly captured
   ones for the dirty roots, in serial (extension, root) order, through
   a fresh log -- reproducing a cold run's ranked report byte for byte.

Coupled (global) extensions -- the paper's §7.1 cross-root checkers,
which communicate through AST annotations and user globals -- are
scheduled through *annotation deltas* instead of falling back: each
artifact records the net cross-root state its (extension, root) pair
wrote plus a coarse read set (:mod:`repro.engine.deltas`).  On a warm
run the session replays clean roots' deltas at their serial positions
(so dirty roots observe the environment a cold serial run would have
built) and demotes any clean root whose read set intersects a changed
delta into the dirty cone -- the soundness condition that replaced the
blanket coupled fallback.  Annotation reads always target nodes inside
functions the reader traverses, so their intersection test is
call-graph reachability: a clean root re-enters the cone when a changed
annotation write lives in a function it can reach.  User-global reads
are recorded per (extension, variable), with a wildcard for iteration.
After the run, freshly produced deltas are diffed against the previous
run's; a replayed root whose inputs turn out stale is demoted and the
run repeated (bounded, loudly counted) -- unknown previous deltas count
as changed, so missing history degrades to re-analysis, never to a
stale replay.

Safety valves (all recorded in the driver stats, never silent):

- ``restrict_partial_hits`` makes caching change reports; the session
  refuses and runs non-incrementally.
- Coupled runs force serial scheduling (parallel workers build
  per-component annotation environments, which are not the serial
  ones); a parallel fast-path run that unexpectedly turns out coupled
  is re-run serially with delta capture, counted as
  ``annotation_delta_serial_reruns``.
- Truncated runs (global step budget) skip roots order-dependently;
  non-incremental fallback.
- Degraded roots (per-root budget blown, recovered error) and roots
  whose cross-root state does not pickle (``delta.opaque``) are never
  persisted, so they are re-analyzed on every run until they pass.
- A corrupt summary frame is evicted and its root re-analyzed (same
  self-heal contract as the tier-1 AST cache).
"""

import copy
import hashlib

from repro.cfg.fingerprint import fingerprint_tables
from repro.driver import cache as astcache
from repro.driver import store as storemod
from repro.engine import deltas as deltamod
from repro.engine.analysis import AnalysisOptions, AnalysisResult
from repro.engine.errors import ErrorLog
from repro.engine.summaries import SUMMARY_VERSION

#: AnalysisOptions fields excluded from the session signature:
#: capture_root_artifacts is the session's own machinery, not a semantic
#: switch of the run being cached; the matcher backend produces
#: byte-identical results in both modes (docs/MATCHER.md), so compiled
#: and interpreted runs share incremental caches.
_NON_SEMANTIC_OPTIONS = frozenset(["capture_root_artifacts", "matcher"])


def session_signature(checker_names=(), metal_texts=(), options=None,
                      extra=""):
    """A stable identity for one analysis configuration.

    Everything that changes what a run reports must land here: the
    built-in checker names (in order), the full text of every metal
    extension, every semantic analysis option, and the parser / summary
    format versions.  Two runs share cached summaries only when their
    signatures match.
    """
    digest = hashlib.sha256()
    digest.update(astcache.PARSER_VERSION.encode())
    digest.update(b"\x00")
    digest.update(SUMMARY_VERSION.encode())
    digest.update(b"\x00")
    for name in checker_names:
        digest.update(str(name).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for text in metal_texts:
        digest.update(str(text).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for name, value in sorted(vars(options or AnalysisOptions()).items()):
        if name in _NON_SEMANTIC_OPTIONS:
            continue
        digest.update(("%s=%r" % (name, value)).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    digest.update(str(extra).encode())
    return digest.hexdigest()


def summary_key(signature, ext_index, ext_name, root, fingerprint):
    """The tier-2 store key for one (extension, root) artifact."""
    digest = hashlib.sha256()
    for part in (signature, str(ext_index), str(ext_name), str(root),
                 str(fingerprint)):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


class IncrementalSession:
    """Summary-persistent incremental scheduling for one configuration.

    Construct with the project's cache directory and a
    :func:`session_signature`; pass as ``Project.run(...,
    incremental=session)``.  Reusable across runs (the manifest and
    frames live on disk, not in the object).
    """

    #: In-memory frame-pin cap (pinned sessions only).  Content-addressed
    #: keys accrete as fingerprints churn; beyond the cap the oldest pins
    #: fall out (the disk store still has them).
    PIN_CAP = 8192

    def __init__(self, cache_dir, signature, stats=None,
                 pin_warm_state=False, store_url=None, backend=None):
        if backend is None:
            backend = storemod.open_store(
                cache_dir=cache_dir, store_url=store_url
            )
        #: The artifact-store backend (local, remote, or tiered); shared
        #: with the project's AST cache when the daemon builds both.
        self.backend = backend
        self.store = astcache.SummaryCache(backend=backend)
        self.signature = signature
        #: Optional DriverStats override; defaults to the project's.
        self.stats = stats
        #: Long-lived (daemon) mode: keep the manifest and replayed
        #: artifact frames pinned in memory, so a warm run pays neither
        #: a manifest JSON load nor per-frame disk reads.  Coherent with
        #: rival sessions by stat-invalidation (any on-disk manifest
        #: change reloads it) and with cache GC by touching the on-disk
        #: frame on every in-memory hit.
        self.pin_warm_state = pin_warm_state
        self._pinned_manifest = None
        self._pinned_manifest_stat = None
        self._pinned_frames = {}

    # -- pinned warm state -------------------------------------------------

    def _manifest_stat(self):
        """The stored manifest's version identity (None when absent):
        a stat tuple on local backends, the ETag on remote ones -- any
        rival merge changes it either way."""
        try:
            return self.backend.manifest_version(self.signature)
        except storemod.StoreError:
            return None

    def _load_manifest(self, stats):
        """The manifest fingerprints, through the in-memory pin when
        ``pin_warm_state`` is set and the on-disk file is unchanged (a
        rival session's merge shows up as a stat change and reloads)."""
        if not self.pin_warm_state:
            return self.store.load_manifest(self.signature)
        stat = self._manifest_stat()
        if stat is not None and stat == self._pinned_manifest_stat:
            stats.add("manifest_pin_hits")
            return self._pinned_manifest
        manifest = self.store.load_manifest(self.signature)
        self._pinned_manifest = manifest
        self._pinned_manifest_stat = stat if manifest is not None else None
        return manifest

    def _repin_manifest(self):
        """Re-pin the manifest after this session wrote it (one JSON
        read per analyzed burst; warm requests then hit the pin)."""
        if not self.pin_warm_state:
            return
        self._pinned_manifest = self.store.load_manifest(self.signature)
        self._pinned_manifest_stat = (
            self._manifest_stat() if self._pinned_manifest is not None
            else None
        )

    def _pin_frame(self, key, artifact):
        if not self.pin_warm_state:
            return
        self._pinned_frames[key] = artifact
        while len(self._pinned_frames) > self.PIN_CAP:
            self._pinned_frames.pop(next(iter(self._pinned_frames)))

    def _unpin_frame(self, key):
        self._pinned_frames.pop(key, None)

    def pinned_frame_keys(self):
        """Keys the in-memory pin currently holds (a daemon's `gc`
        request passes them to :func:`repro.driver.cache.
        collect_cache_garbage` as extra live keys, so on-disk GC never
        collects what this process still replays)."""
        return sorted(self._pinned_frames)

    # -- scheduling --------------------------------------------------------

    def run(self, project, extensions, options=None, jobs=1,
            extension_factory=None, worker_timeout=None):
        """Incremental pass 2: fingerprint, diff, re-analyze dirty roots,
        replay the rest.  Returns an :class:`AnalysisResult` whose
        reports (and ranking inputs) match a cold run byte for byte."""
        if not isinstance(extensions, (list, tuple)):
            extensions = [extensions]
        options = options or AnalysisOptions()
        stats = self.stats or project.stats
        self.backend.bind_stats(stats)

        if options.restrict_partial_hits:
            return self._fallback(
                project, extensions, options, jobs, extension_factory,
                worker_timeout, stats,
                "restrict_partial_hits changes reports under caching",
            )

        graph = project.callgraph
        local, fingerprints = fingerprint_tables(graph)
        all_roots = (
            graph.roots() if options.interprocedural
            else sorted(graph.functions)
        )

        manifest = self._load_manifest(stats)
        if manifest is None:
            stats.add("incremental_cold_runs")
            edited = set(fingerprints)
            cone = set(fingerprints)
        else:
            edited = {
                name for name, token_hash in local.items()
                if (manifest.get(name) or (None, None))[0] != token_hash
            }
            cone = {
                name for name, fingerprint in fingerprints.items()
                if (manifest.get(name) or (None, None))[1] != fingerprint
            }
        stats.add("incremental_dirty_functions", len(edited))
        stats.add("incremental_dirty_cone", len(cone))

        used_keys = set()
        reanalyze = set(root for root in all_roots if root in cone)
        cached = self._load_clean_artifacts(
            extensions, (root for root in all_roots if root not in cone),
            fingerprints, reanalyze, stats, used_keys,
        )

        run_options = copy.copy(options)
        run_options.capture_root_artifacts = True

        # Known-coupled configuration (some cached artifact wrote
        # cross-root state): schedule with delta replay from the start.
        if any(
            artifact.delta is not None and artifact.delta.has_writes()
            for artifact in cached.values()
        ):
            return self._run_coupled(
                project, extensions, options, run_options, jobs,
                extension_factory, worker_timeout, stats, graph, all_roots,
                fingerprints, local, manifest, cached, reanalyze, used_keys,
            )

        analyze_roots = sorted(reanalyze)
        fresh = project.run(
            extensions, run_options, jobs=jobs,
            extension_factory=extension_factory,
            worker_timeout=worker_timeout, roots=analyze_roots,
        )

        if fresh.coupled:
            # The run discovered cross-root state we had no record of.
            # A full serial run already *is* the serial environment, so
            # its deltas are valid as captured; anything partial (or
            # parallel, where workers build per-component environments)
            # must be redone serially with delta replay.
            full_serial = (
                jobs <= 1 and not cached
                and set(analyze_roots) == set(all_roots)
            )
            if not full_serial:
                stats.add("annotation_delta_serial_reruns")
                stats.record_degradation(
                    "incremental",
                    "extensions left cross-root state mid-session; re-ran "
                    "serially with annotation-delta replay",
                )
                return self._run_coupled(
                    project, extensions, options, run_options, jobs,
                    extension_factory, worker_timeout, stats, graph,
                    all_roots, fingerprints, local, manifest, cached,
                    reanalyze, used_keys,
                )
        if fresh.truncated:
            return self._fallback(
                project, extensions, options, jobs, extension_factory,
                worker_timeout, stats,
                "global step budget exhausted; root skipping is "
                "order-dependent",
            )

        stats.add("incremental_roots_analyzed", len(analyze_roots))
        stats.add(
            "incremental_roots_replayed",
            len(all_roots) - len(analyze_roots),
        )
        result = self._merge(extensions, all_roots, fresh, cached)
        self._persist(fresh, fingerprints, local, stats, project, used_keys)
        return result

    # -- coupled (global-checker) scheduling -------------------------------

    def _run_coupled(self, project, extensions, options, run_options, jobs,
                     extension_factory, worker_timeout, stats, graph,
                     all_roots, fingerprints, local, manifest, cached,
                     reanalyze, used_keys):
        """Incremental scheduling for extensions with cross-root state.

        Serial by construction: replayed deltas and analyzed roots must
        interleave in the order a cold serial run would produce, so the
        per-component parallel scheduler does not apply.  The sequence:

        1. *Pre-run demotion*: every dirty root's previous delta names
           the writes that may change; clean roots whose read set (or
           annotation reachability cone) intersects them are demoted to
           a fixpoint.
        2. *Resolve + run*: clean roots' deltas are bound to the current
           tree's nodes (unresolvable ones demote their root) and
           applied at their serial positions while the dirty roots are
           re-analyzed.
        3. *Post-run validation*: fresh deltas are diffed against the
           previous run's; a replayed root whose inputs actually changed
           is demoted and the run repeated.  Unknown previous deltas
           count as fully changed, so the loop converges (each round
           strictly shrinks the replayed set) and missing history can
           only cause extra analysis, never a stale replay.
        """
        stats.add("incremental_coupled_runs")
        if jobs > 1:
            stats.add("annotation_delta_serial_forced")

        old_deltas = {}

        def old_delta(ext_index, root):
            """The delta this (extension, root) produced last run, or
            None when unknown (no manifest entry, missing/corrupt frame:
            treated as fully changed)."""
            pair = (ext_index, root)
            if pair in old_deltas:
                return old_deltas[pair]
            delta = None
            artifact = cached.get(pair)
            if artifact is not None:
                delta = artifact.delta
            elif manifest and root in manifest:
                old_fp = (manifest.get(root) or (None, None))[1]
                if old_fp:
                    ext = extensions[ext_index]
                    name = getattr(ext, "name", repr(ext))
                    key = summary_key(
                        self.signature, ext_index, name, root, old_fp)
                    pinned = self._pinned_frames.get(key)
                    try:
                        if pinned is not None:
                            delta = pinned.delta
                        else:
                            artifact = self.store.get(key)
                            if artifact is not None:
                                delta = artifact.delta
                    except (OSError, astcache.CacheCorruption,
                            storemod.StoreError):
                        delta = None
            old_deltas[pair] = delta
            return delta

        reach_memo = {}

        def reach(root):
            """Functions reachable from ``root`` through the call graph
            (the functions whose nodes this root's traversal can read)."""
            seen = reach_memo.get(root)
            if seen is None:
                seen = set()
                stack = [root]
                while stack:
                    fn = stack.pop()
                    if fn in seen or fn not in graph.functions:
                        continue
                    seen.add(fn)
                    stack.extend(graph.callees.get(fn, ()))
                reach_memo[root] = seen
            return seen

        changed_fns = set()   # functions containing changed annotation writes
        changed_glob = set()  # ("glob", ext, var) keys whose value changed

        def seed_changes(root):
            """Mark a root's previous writes as potentially changed."""
            for ext_index in range(len(extensions)):
                old = old_delta(ext_index, root)
                if old is None:
                    continue
                changed_fns.update(old.write_functions())
                changed_glob.update(old.glob_write_keys())

        def impacted(root):
            """Does this clean root read anything that changed?"""
            if changed_fns and reach(root) & changed_fns:
                return True
            for ext_index in range(len(extensions)):
                artifact = cached.get((ext_index, root))
                if artifact is None:
                    continue
                delta = artifact.delta
                if delta is None:
                    return True  # unknown read set: never replay blind
                for read in delta.reads:
                    if read[0] == "glob" and read in changed_glob:
                        return True
                    if read == ("ann*",) and changed_fns:
                        return True
                    if read[0] == "glob*" and any(
                        key[1] == read[1] for key in changed_glob
                    ):
                        return True
            return False

        def demote(root, counter):
            stats.add(counter)
            seed_changes(root)  # its own writes will be re-derived
            for ext_index in range(len(extensions)):
                cached.pop((ext_index, root), None)
            reanalyze.add(root)

        def settle(counter):
            """Demote impacted clean roots to a fixpoint."""
            pending = True
            while pending:
                pending = False
                for root in sorted({r for (_, r) in cached}):
                    if root not in reanalyze and impacted(root):
                        demote(root, counter)
                        pending = True

        for root in sorted(reanalyze):
            seed_changes(root)
        settle("annotation_delta_read_demotions")

        rounds = 0
        max_rounds = len(all_roots) + 2
        while True:
            rounds += 1
            if rounds > max_rounds:
                return self._fallback(
                    project, extensions, options, jobs, extension_factory,
                    worker_timeout, stats,
                    "annotation-delta scheduling did not converge",
                )
            analysis = project.analysis(run_options)
            resolver = deltamod.DeltaResolver(graph, analysis._cfg)
            replay_map = {}
            unresolved = set()
            for (ext_index, root), artifact in sorted(cached.items()):
                if root in unresolved:
                    continue
                try:
                    replay_map[(ext_index, root)] = resolver.resolve(
                        artifact.delta)
                except deltamod.UnresolvedDelta:
                    unresolved.add(root)
            if unresolved:
                for root in sorted(unresolved):
                    demote(root, "annotation_delta_unresolved")
                settle("annotation_delta_read_demotions")
                continue

            analyze_roots = sorted(reanalyze)
            fresh = analysis.run(
                extensions, roots=all_roots, replay=replay_map)
            if fresh.truncated:
                return self._fallback(
                    project, extensions, options, jobs, extension_factory,
                    worker_timeout, stats,
                    "global step budget exhausted; root skipping is "
                    "order-dependent",
                )

            # Post-run validation: what actually changed?
            new_deltas = {
                (a.ext_index, a.root): a.delta for a in fresh.root_artifacts
            }
            for root in analyze_roots:
                for ext_index in range(len(extensions)):
                    fns, globs = deltamod.delta_changes(
                        old_delta(ext_index, root),
                        new_deltas.get((ext_index, root)),
                    )
                    changed_fns.update(fns)
                    changed_glob.update(globs)
            stale = [
                root for root in sorted({r for (_, r) in cached})
                if impacted(root)
            ]
            if stale:
                for root in stale:
                    demote(root, "annotation_delta_stale_demotions")
                settle("annotation_delta_read_demotions")
                continue
            break

        stats.add("annotation_delta_rounds", rounds)
        stats.add("annotation_delta_replays", sum(
            1 for artifact in cached.values()
            if artifact.delta is not None and artifact.delta.has_writes()
        ))
        stats.add("incremental_roots_analyzed", len(analyze_roots))
        stats.add(
            "incremental_roots_replayed",
            len(all_roots) - len(analyze_roots),
        )
        result = self._merge(extensions, all_roots, fresh, cached)
        self._persist(fresh, fingerprints, local, stats, project, used_keys)
        return result

    # -- pieces ------------------------------------------------------------

    def _fallback(self, project, extensions, options, jobs,
                  extension_factory, worker_timeout, stats, why):
        """Run non-incrementally (and persist nothing), loudly."""
        stats.add("incremental_fallbacks")
        stats.record_degradation(
            "incremental", "%s; re-ran non-incrementally" % why
        )
        return project.run(
            extensions, options, jobs=jobs,
            extension_factory=extension_factory,
            worker_timeout=worker_timeout,
        )

    def _load_clean_artifacts(self, extensions, clean_roots, fingerprints,
                              reanalyze, stats, used_keys=None):
        """``{(ext_index, root): RootArtifact}`` for every clean root all
        of whose frames load; roots with any missing or corrupt frame are
        moved into ``reanalyze`` instead.  Hit keys are recorded into
        ``used_keys`` (manifest liveness for cache GC)."""
        cached = {}
        clean_roots = list(clean_roots)
        keymap = {
            (ext_index, root): (
                getattr(ext, "name", repr(ext)),
                summary_key(
                    self.signature, ext_index,
                    getattr(ext, "name", repr(ext)), root,
                    fingerprints[root],
                ),
            )
            for root in clean_roots
            for ext_index, ext in enumerate(extensions)
        }
        if getattr(self.backend, "prefers_batch", False):
            # Remote-backed session: one batched round trip fetches every
            # frame this warm run could replay, instead of a network
            # round trip per (extension, root) pair.
            self.store.prefetch(
                key for (_, key) in keymap.values()
                if key not in self._pinned_frames
            )
        for root in clean_roots:
            loaded = []
            for ext_index, ext in enumerate(extensions):
                name, key = keymap[(ext_index, root)]
                pinned = self._pinned_frames.get(key)
                if pinned is not None:
                    # In-memory warm hit: no disk read, but refresh the
                    # stored frame's mtime so GC still sees it in use.
                    stats.add("summary_memory_hits")
                    self.store.touch(key)
                    loaded.append((ext_index, key, pinned))
                    continue
                try:
                    try:
                        artifact = self.store.get(key)
                    except storemod.StoreError:
                        artifact = None
                    if artifact is None:
                        stats.add("summary_misses")
                        loaded = None
                        break
                    self._pin_frame(key, artifact)
                    loaded.append((ext_index, key, artifact))
                except (OSError, astcache.CacheCorruption) as err:
                    stats.add("summary_evictions")
                    stats.record_degradation(
                        "summary-cache",
                        "%s/%s: corrupt summary frame (%s); evicted and "
                        "re-analyzed" % (name, root, err),
                    )
                    self.store.evict(key)
                    self._unpin_frame(key)
                    loaded = None
                    break
            if loaded is None:
                reanalyze.add(root)
            else:
                stats.add("summary_hits", len(loaded))
                for ext_index, key, artifact in loaded:
                    cached[(ext_index, root)] = artifact
                    if used_keys is not None:
                        used_keys.add(key)
        return cached

    def _merge(self, extensions, all_roots, fresh, cached):
        """Replay fresh + cached artifacts in serial (extension, root)
        order through one log: global dedup re-applies at exactly the
        points a cold serial run would apply it."""
        produced = {
            (artifact.ext_index, artifact.root): artifact
            for artifact in fresh.root_artifacts
        }
        log = ErrorLog()
        degraded = []
        for ext_index in range(len(extensions)):
            for root in all_roots:
                artifact = produced.get((ext_index, root))
                if artifact is None:
                    artifact = cached.get((ext_index, root))
                if artifact is None:
                    continue
                artifact.replay_into(log)
                degraded.extend(artifact.degraded)
        merged_stats = dict(fresh.stats)
        merged_stats["errors"] = len(log)
        # Provenance (docs/DRIVER.md, "Stats schema"): the traversal
        # counters above (points_visited, paths_completed, ...) cover
        # only the analyzed dirty cone -- replayed roots contribute
        # reports without traversal work.  Mark the split explicitly so
        # a warm run's counters are never mistaken for a cold run's.
        merged_stats["incremental_analyzed_pairs"] = len(produced)
        merged_stats["incremental_replayed_pairs"] = len(cached)
        merged_stats["stats_coverage"] = "analyzed-roots-only"
        return AnalysisResult(
            log, fresh.tables, merged_stats, truncated=False,
            degraded=degraded,
        )

    def _persist(self, fresh, fingerprints, local, stats, project=None,
                 used_keys=None):
        """Store every clean fresh artifact plus the new manifest."""
        used = set(used_keys or ())
        to_store = {}
        for artifact in fresh.root_artifacts:
            if not artifact.clean:
                continue
            if artifact.delta is not None and artifact.delta.opaque:
                # Cross-root state that does not pickle cannot be
                # replayed; never persist it -- the root simply
                # re-analyzes every run, loudly.
                stats.add("annotation_delta_opaque_roots")
                continue
            fingerprint = fingerprints.get(artifact.root)
            if fingerprint is None:
                continue
            if artifact.summary is not None:
                artifact.summary.fingerprint = fingerprint
            key = summary_key(
                self.signature, artifact.ext_index, artifact.extension,
                artifact.root, fingerprint,
            )
            to_store[key] = artifact
            self._pin_frame(key, artifact)
            used.add(key)
            stats.add("summary_stores")
        if to_store:
            # One batched put: a remote-backed session ships every fresh
            # frame in a single round trip.
            self.store.store_many(to_store)
        ast_keys = ()
        if project is not None:
            ast_keys = sorted(set(project.ast_keys_used))
        self.store.store_manifest(
            self.signature,
            {
                name: [local[name], fingerprints[name]]
                for name in fingerprints
            },
            frame_keys=sorted(used),
            ast_keys=ast_keys,
            stats=stats,
        )
        self._repin_manifest()
