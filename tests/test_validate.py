"""Checker validator tests."""

from repro.checkers import ALL_CHECKERS
from repro.metal import ANY_POINTER, Extension, compile_metal
from repro.metal.validate import errors, validate


def codes(findings):
    return sorted(f.code for f in findings)


class TestCleanCheckers:
    def test_shipped_checkers_have_no_errors(self):
        for name, factory in ALL_CHECKERS.items():
            assert errors(factory()) == [], name

    def test_figure1_clean(self):
        from repro.checkers import FREE_CHECKER_SOURCE

        assert errors(compile_metal(FREE_CHECKER_SOURCE)) == []


class TestUnreachable:
    def test_unreachable_state(self):
        ext = Extension("x")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ f(v) }", to="v.a")
        # v.b is never entered, but defines a rule:
        ext.transition("v.b", "{ g(v) }", to="v.stop")
        assert "unreachable-state" in codes(validate(ext))

    def test_dead_end_state(self):
        ext = Extension("x")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ f(v) }", to="v.parked")
        assert "dead-end-state" in codes(validate(ext))

    def test_stop_is_not_a_dead_end(self):
        ext = Extension("x")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ f(v) }", to="v.stop")
        assert "dead-end-state" not in codes(validate(ext))


class TestCreationBinding:
    def test_unbound_state_variable(self):
        ext = Extension("x")
        ext.state_var("v", ANY_POINTER)
        # pattern mentions no hole at all: the instance can't attach
        ext.transition("start", "{ f() }", to="v.tracked")
        ext.transition("v.tracked", "{ g(v) }", to="v.stop",
                       action=lambda ctx: ctx.err("boom"))
        assert "unbound-state-variable" in codes(validate(ext))

    def test_bound_is_fine(self):
        ext = Extension("x")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ f(v) }", to="v.tracked",
                       action=lambda ctx: None)
        ext.transition("v.tracked", "{ g(v) }", to="v.stop")
        assert "unbound-state-variable" not in codes(validate(ext))


class TestSplitsAndShadowing:
    def test_mixed_split(self):
        ext = Extension("x")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ f(v) }", true_to="v.a", false_to="other")
        assert "mixed-split" in codes(validate(ext))

    def test_shadowed_rule(self):
        ext = Extension("x")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ f(v) }", to="v.a", action=lambda c: None)
        ext.transition("v.a", "{ g(v) }", to="v.stop")
        ext.transition("v.a", "{ g(v) }", to="v.a")  # never fires
        assert "shadowed-rule" in codes(validate(ext))

    def test_different_patterns_not_shadowed(self):
        ext = Extension("x")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ f(v) }", to="v.a", action=lambda c: None)
        ext.transition("v.a", "{ g(v) }", to="v.stop")
        ext.transition("v.a", "{ h(v) }", to="v.stop")
        assert "shadowed-rule" not in codes(validate(ext))


class TestCLIValidation:
    def test_invalid_metal_rejected_by_cli(self, tmp_path, capsys):
        from repro.driver.cli import main

        bad = tmp_path / "bad.metal"
        bad.write_text(
            "sm bad {\n"
            " state decl any_pointer v;\n"
            " start: { f() } ==> v.tracked ;\n"  # never binds v
            ' v.tracked: { g(v) } ==> v.stop, { err("x"); } ;\n'
            "}\n"
        )
        src = tmp_path / "ok.c"
        src.write_text("int f(void) { return 0; }\n")
        code = main(["--metal", str(bad), str(src)])
        assert code == 2
        assert "unbound-state-variable" in capsys.readouterr().err


class TestReporting:
    def test_actionless_extension_flagged(self):
        ext = Extension("x")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ f(v) }", to="v.a")
        ext.transition("v.a", "{ g(v) }", to="v.stop")
        assert "no-actions" in codes(validate(ext))
