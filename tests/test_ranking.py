"""Ranking tests (§9): generic criteria, severity stratification, the
z-statistic, statistical rule ranking, and code ranking."""

import math

from repro.cfront.source import Location
from repro.engine.errors import ErrorLog, ErrorReport
from repro.ranking import (
    generic_rank,
    rank_by_rule_reliability,
    rank_functions_by_code,
    stratify,
    z_statistic,
)
from repro.ranking.generic import CONDITIONAL_WEIGHT, difficulty_score
from repro.ranking.severity import group_by_rule, suppress_rule
from repro.ranking.statistical import rule_reliability_table, rule_z_score


def report(message="m", line=10, origin_line=None, conditionals=0,
           synonym_chain=0, call_chain=0, severity=None, rule_id=None,
           checker="c"):
    return ErrorReport(
        checker=checker,
        message=message,
        location=Location("f.c", line, 1),
        function="fn",
        origin_location=Location("f.c", origin_line, 1)
        if origin_line is not None
        else None,
        conditionals=conditionals,
        synonym_chain=synonym_chain,
        call_chain=call_chain,
        severity=severity,
        rule_id=rule_id,
    )


class TestGenericRanking:
    def test_distance(self):
        near = report("near", line=10, origin_line=9)
        far = report("far", line=300, origin_line=10)
        assert generic_rank([far, near]) == [near, far]

    def test_conditionals_weighted_ten_lines(self):
        # "Each conditional is arbitrarily weighted as ten lines."
        assert difficulty_score(report(origin_line=10, line=10, conditionals=3)) == (
            3 * CONDITIONAL_WEIGHT
        )
        few_conds = report("a", line=10, origin_line=10, conditionals=1)
        much_distance = report("b", line=21, origin_line=10, conditionals=0)
        # 1 conditional (10) < 11 lines distance
        assert generic_rank([much_distance, few_conds]) == [few_conds, much_distance]

    def test_synonyms_rank_below(self):
        direct = report("direct", line=100, origin_line=0)
        synonym = report("syn", line=10, origin_line=9, synonym_chain=1)
        assert generic_rank([synonym, direct]) == [direct, synonym]

    def test_synonym_chain_length_orders(self):
        short = report("short", synonym_chain=1)
        long = report("long", synonym_chain=3)
        assert generic_rank([long, short]) == [short, long]

    def test_local_over_interprocedural(self):
        local = report("local", line=500, origin_line=0, conditionals=9)
        inter = report("inter", line=10, origin_line=9, call_chain=1)
        assert generic_rank([inter, local]) == [local, inter]

    def test_call_chain_length_orders(self):
        shallow = report("shallow", call_chain=1)
        deep = report("deep", call_chain=4)
        assert generic_rank([deep, shallow]) == [shallow, deep]


class TestSeverity:
    def test_stratification_order(self):
        security = report("s", severity="SECURITY", line=999, origin_line=0)
        error = report("e", severity="ERROR")
        plain = report("p")
        minor = report("m2", severity="MINOR")
        ranked = stratify([minor, plain, error, security])
        assert [r.message for r in ranked] == ["s", "e", "p", "m2"]

    def test_group_by_rule(self):
        a1 = report("a1", rule_id="kfree")
        a2 = report("a2", rule_id="kfree")
        b = report("b", rule_id="vfree")
        groups = group_by_rule([a1, a2, b])
        assert len(groups["kfree"]) == 2
        assert len(groups["vfree"]) == 1

    def test_suppress_rule(self):
        a = report("a", rule_id="bad_rule")
        b = report("b", rule_id="good_rule")
        assert suppress_rule([a, b], "bad_rule") == [b]


class TestZStatistic:
    def test_formula(self):
        # z(n, e) = (e/n - p0) / sqrt(p0 (1-p0) / n)
        n, e, p0 = 100, 90, 0.5
        expected = (e / n - p0) / math.sqrt(p0 * (1 - p0) / n)
        assert abs(z_statistic(n, e) - expected) < 1e-12

    def test_zero_n(self):
        assert z_statistic(0, 0) == 0.0

    def test_always_followed_is_high(self):
        assert z_statistic(100, 99) > z_statistic(100, 60)

    def test_random_rule_is_zero(self):
        assert abs(z_statistic(100, 50)) < 1e-12

    def test_more_evidence_is_stronger(self):
        assert z_statistic(1000, 900) > z_statistic(10, 9)

    def test_rule_z_score(self):
        assert rule_z_score(9, 1) == z_statistic(10, 9)


class TestStatisticalRanking:
    def test_reliable_rules_float_up(self):
        # The §9 anecdote: functions the analysis mishandles violate "their"
        # rule ~half the time; real rules are followed almost always.
        log = ErrorLog()
        for i in range(95):
            log.count_example("real_rule", ("f.c", i, 0))
        for i in range(5):
            log.count_violation("real_rule", ("f.c", 1000 + i, 0))
        for i in range(50):
            log.count_example("broken_rule", ("g.c", i, 0))
        for i in range(50):
            log.count_violation("broken_rule", ("g.c", 1000 + i, 0))

        real = report("real", rule_id="real_rule")
        noise = report("noise", rule_id="broken_rule")
        ranked = rank_by_rule_reliability([noise, real], log)
        assert ranked[0] is real

    def test_reliability_table_sorted(self):
        log = ErrorLog()
        log.count_example("good", ("a", 1, 0))
        log.count_example("good", ("a", 2, 0))
        log.count_example("good", ("a", 3, 0))
        log.count_violation("good", ("a", 4, 0))
        log.count_example("bad", ("b", 1, 0))
        log.count_violation("bad", ("b", 2, 0))
        rows = rule_reliability_table(log)
        assert rows[0][0] == "good"
        assert rows[0][3] > rows[-1][3]

    def test_distinct_site_counting(self):
        log = ErrorLog()
        site = ("a", 1, 0)
        log.count_example("r", site)
        log.count_example("r", site)  # same site: counted once
        assert log.rule_counts("r") == (1, 0)


class TestCodeRanking:
    def test_wrappers_sink_users_float(self):
        # §9: wrapper functions have ~100% mismatch rate; users with many
        # correct pairs and one error rank highest.
        counts = {
            "helper_acquire": (0, 10),  # always "mismatched": a wrapper
            "user_with_bug": (20, 1),
            "clean_user": (20, 0),
        }
        rows = rank_functions_by_code(counts)
        names = [row[0] for row in rows]
        assert names[0] == "user_with_bug"
        assert "clean_user" not in names  # nothing to inspect
        assert names[-1] == "helper_acquire"
