"""Cross-version false-positive suppression (§8, "History").

"A simple alternative is to just remember false positives from past
versions and suppress them in future versions.  We match error reports
across versions by comparing file name, function name, variable names
involved in the analysis, and the actual error itself as stated by the
checker.  These fields are relatively invariant under edits (unlike, for
example, line numbers)."

The matching itself now lives in :mod:`repro.reports.triage` (the one
suppression predicate); this class remains the paper-shaped façade over
a :class:`TriageStore` holding ``history``-kind entries.  ``load``
accepts both the triage document format and the legacy bare-list files
this module used to write.
"""

from repro.reports.triage import TriageStore


class HistoryDatabase:
    """Remembered false positives from earlier versions of a code base."""

    def __init__(self, store=None):
        self.store = store if store is not None else TriageStore()

    def suppress(self, report):
        """Mark a report (inspected and judged a false positive) for
        suppression in future versions."""
        self.store.suppress_history(report.history_key())

    def suppress_key(self, checker, filename, function, variable, message):
        self.store.suppress_history(
            (checker, filename, function, variable, message)
        )

    def is_suppressed(self, report):
        return self.store.is_suppressed(report)

    def filter(self, reports):
        """Drop reports matching a remembered false positive."""
        return self.store.filter(reports)

    def __len__(self):
        return len(self.store)

    # -- persistence ------------------------------------------------------------

    def save(self, path):
        self.store.save(path)

    @classmethod
    def load(cls, path):
        return cls(TriageStore.load(path))
