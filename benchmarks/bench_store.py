"""Shared artifact-store benchmarks: warm-from-store vs un-shared cold.

Dumped to ``BENCH_store.json``: on a generated multi-module project,
end-to-end wall time for

- client 1, cold with an empty local cache, populating a live remote
  store as it goes (the write-through tax),
- client 2, a *fresh* local cache warm-started entirely from the store
  (every file loads instead of parsing, every root replays),
- an un-shared control: the same cold run with no store at all (what a
  new machine pays without the shared tier).

The shape assertions are the ISSUE acceptance criteria: every run's
ranked report text is byte-identical to a cacheless serial run, and the
second client's warm-from-store time beats the un-shared cold control
(the tripwire -- if sharing warm state stops paying for itself, this
benchmark fails).
"""

import functools
import json
import time

from repro.codegen.project_gen import generate_project
from repro.driver.cli import _build_extensions
from repro.driver.project import Project
from repro.driver.session import IncrementalSession, session_signature
from repro.driver.store import RemoteStore
from repro.driver.store_server import StoreServer
from repro.ranking.severity import stratify

SUMMARY_PATH = "BENCH_store.json"
_summary = {}

CHECKER_NAMES = ("free", "lock")
bench_checkers = functools.partial(_build_extensions, CHECKER_NAMES, ())


def _dump_summary():
    with open(SUMMARY_PATH, "w") as handle:
        json.dump(_summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


def materialize(tmp_path, generated, name):
    root = tmp_path / name
    root.mkdir(exist_ok=True)
    for filename, text in generated.files.items():
        (root / filename).write_text(text)
    return str(root), sorted(
        str(root / filename)
        for filename in generated.files if filename.endswith(".c")
    )


def cold_serial_text(root, paths):
    """The ranked report text of a cacheless, sessionless serial run --
    the byte baseline every store-backed run must reproduce."""
    project = Project(include_paths=[root])
    project.compile_files(paths)
    result = project.run(bench_checkers())
    return "".join(r.format() + "\n" for r in stratify(result.reports))


def timed_client_run(root, paths, cache_dir, store_url=None):
    """One process-fresh client: pass 1 over every file, incremental
    pass 2, manifest store.  Returns (seconds, report_text, stats)."""
    start = time.perf_counter()
    project = Project(
        include_paths=[root], cache_dir=cache_dir, store_url=store_url
    )
    project.compile_files(paths)
    session = IncrementalSession(
        cache_dir,
        session_signature(checker_names=list(CHECKER_NAMES)),
        backend=project.store_backend if store_url else None,
    )
    result = project.run(bench_checkers(), incremental=session)
    elapsed = time.perf_counter() - start
    text = "".join(r.format() + "\n" for r in stratify(result.reports))
    return elapsed, text, project.stats


def test_shared_warm_start_beats_unshared_cold(benchmark, tmp_path):
    generated = generate_project(
        seed=13, n_modules=5, functions_per_module=40, bug_rate=0.1
    )
    root, paths = materialize(tmp_path, generated, "proj")
    baseline = cold_serial_text(root, paths)

    server = StoreServer(str(tmp_path / "store-root"))
    server.start()
    try:
        populate_s, populate_text, populate_stats = timed_client_run(
            root, paths, str(tmp_path / "c1"), store_url=server.url
        )
        warm_s, warm_text, warm_stats = timed_client_run(
            root, paths, str(tmp_path / "c2"), store_url=server.url
        )
        unshared_s, unshared_text, __ = timed_client_run(
            root, paths, str(tmp_path / "c3")
        )
    finally:
        server.stop()

    byte_identical = (
        populate_text == baseline
        and warm_text == baseline
        and unshared_text == baseline
    )
    assert byte_identical
    assert warm_stats.count("parses") == 0
    assert warm_stats.count("store_degraded") == 0
    assert warm_stats.count("incremental_roots_replayed") > 0

    rows = {
        "total_files": len(paths),
        "cold_populate_store_s": round(populate_s, 4),
        "shared_warm_from_store_s": round(warm_s, 4),
        "unshared_cold_s": round(unshared_s, 4),
        "write_through_tax": round(populate_s / max(unshared_s, 1e-9), 3),
        "warm_speedup_vs_unshared_cold": round(
            unshared_s / max(warm_s, 1e-9), 2
        ),
        "warm_store_round_trips": warm_stats.count("store_round_trips"),
        "warm_store_batch_keys": warm_stats.count("store_batch_keys"),
        "byte_identical": byte_identical,
    }
    print("\nshared store, %d files:" % len(paths))
    print("  cold + populate store  %.3fs" % populate_s)
    print("  un-shared cold         %.3fs" % unshared_s)
    print("  warm from store        %.3fs  (x%.1f vs un-shared cold)"
          % (warm_s, rows["warm_speedup_vs_unshared_cold"]))

    # Acceptance tripwire: a second client warm-starting from a shared
    # store must beat what it would pay cold without the store.
    assert warm_s < unshared_s
    _summary["store"] = rows
    _dump_summary()

    # Microbenchmark: one batched warm get round-trip (8 frames).
    with WarmStoreRig(tmp_path) as rig:
        benchmark(rig.warm_get)


class WarmStoreRig:
    """A tiny self-contained server + client for the pytest-benchmark
    timer: 8 seeded frames fetched in one batched round trip."""

    def __init__(self, tmp_path):
        root = tmp_path / "micro-store"
        root.mkdir(exist_ok=True)
        self.server = StoreServer(str(root))
        self.server.start()
        self.client = RemoteStore(self.server.url)
        self.keys = ["%064x" % n for n in range(8)]
        self.client.put_many(
            "sum", {key: b"frame" * 64 for key in self.keys}
        )

    def warm_get(self):
        frames = self.client.get_many("sum", self.keys)
        assert len(frames) == len(self.keys)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.client.close()
        self.server.stop()
