"""Incremental re-analysis benchmarks (docs/DRIVER.md).

One series, dumped to ``BENCH_incremental.json``: on a generated
~200-function project, pass-2 wall-clock and roots-analyzed for

- a cold incremental run (empty summary store: full analysis + stores),
- a warm no-edit run (every root replayed from tier-2 frames),
- a warm run after one seeded function-body edit (only the edited
  function's dirty cone re-analyzed).

The shape assertions are the ISSUE acceptance criteria: warm-after-edit
re-analyzes <25% of roots and every variant's reports are byte-identical
to a cold reference run.
"""

import json
import time

from repro.checkers import free_checker, lock_checker
from repro.codegen.project_gen import apply_function_edits, generate_project
from repro.driver.project import Project
from repro.driver.session import IncrementalSession, session_signature

SUMMARY_PATH = "BENCH_incremental.json"
_summary = {}


def _dump_summary():
    with open(SUMMARY_PATH, "w") as handle:
        json.dump(_summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


def bench_checkers():
    return [free_checker(("kfree", "vfree")), lock_checker()]


def materialize(tmp_path, generated, name):
    root = tmp_path / name
    root.mkdir(exist_ok=True)
    for filename, text in generated.files.items():
        (root / filename).write_text(text)
    paths = sorted(
        str(root / filename)
        for filename in generated.files if filename.endswith(".c")
    )
    return str(root), paths


def report_keys(result):
    return [
        (r.checker, r.message, r.location.filename, r.location.line,
         r.location.column, r.function)
        for r in result.reports
    ]


def timed_incremental_run(root, paths, cache_dir):
    """(elapsed pass-2 seconds, result, stats counters) for one session
    run over a freshly compiled project (pass 1 warm via the AST cache)."""
    project = Project(include_paths=[root], cache_dir=cache_dir)
    project.compile_files(paths)
    session = IncrementalSession(
        cache_dir, session_signature(checker_names=["free", "lock"])
    )
    start = time.perf_counter()
    result = project.run(bench_checkers(), incremental=session)
    return time.perf_counter() - start, result, dict(project.stats.counters)


def test_incremental_cold_warm_edit(benchmark, tmp_path):
    generated = generate_project(
        seed=13, n_modules=5, functions_per_module=40, bug_rate=0.1
    )
    root, paths = materialize(tmp_path, generated, "proj")
    cache_dir = str(tmp_path / "cache")

    cold_s, cold_result, cold_counters = timed_incremental_run(
        root, paths, cache_dir
    )
    warm_s, warm_result, warm_counters = timed_incremental_run(
        root, paths, cache_dir
    )

    edited, edits = apply_function_edits(generated, k=1, seed=1)
    root, paths = materialize(tmp_path, edited, "proj")
    edit_s, edit_result, edit_counters = timed_incremental_run(
        root, paths, cache_dir
    )

    # Byte-identity against a sessionless cold run over the edited tree.
    reference = Project(include_paths=[root])
    reference.compile_files(paths)
    reference_result = reference.run(bench_checkers())
    assert report_keys(edit_result) == report_keys(reference_result)
    assert report_keys(cold_result) == report_keys(warm_result)

    total_roots = len(reference.callgraph.roots())
    total_functions = reference.total_functions()
    rows = {
        "total_functions": total_functions,
        "total_roots": total_roots,
        "edited_functions": len(edits),
        "cold": {
            "wall_s": round(cold_s, 4),
            "roots_analyzed": cold_counters["incremental_roots_analyzed"],
            "summary_stores": cold_counters["summary_stores"],
        },
        "warm_no_edit": {
            "wall_s": round(warm_s, 4),
            "roots_analyzed": warm_counters["incremental_roots_analyzed"],
            "roots_replayed": warm_counters["incremental_roots_replayed"],
            "summary_hits": warm_counters["summary_hits"],
        },
        "warm_one_edit": {
            "wall_s": round(edit_s, 4),
            "roots_analyzed": edit_counters["incremental_roots_analyzed"],
            "roots_replayed": edit_counters["incremental_roots_replayed"],
            "dirty_cone": edit_counters["incremental_dirty_cone"],
        },
        "speedup_warm_no_edit": round(cold_s / max(warm_s, 1e-9), 2),
        "speedup_warm_one_edit": round(cold_s / max(edit_s, 1e-9), 2),
    }
    print("\nincremental pass 2, %d functions, %d roots:" % (
        total_functions, total_roots))
    print("  cold          %.3fs  %3d roots analyzed" % (
        cold_s, rows["cold"]["roots_analyzed"]))
    print("  warm no-edit  %.3fs  %3d analyzed / %d replayed  (x%.1f)" % (
        warm_s, rows["warm_no_edit"]["roots_analyzed"],
        rows["warm_no_edit"]["roots_replayed"],
        rows["speedup_warm_no_edit"]))
    print("  warm 1-edit   %.3fs  %3d analyzed / %d replayed  (x%.1f)" % (
        edit_s, rows["warm_one_edit"]["roots_analyzed"],
        rows["warm_one_edit"]["roots_replayed"],
        rows["speedup_warm_one_edit"]))

    assert total_functions >= 200
    assert warm_counters["incremental_roots_analyzed"] == 0
    assert edit_counters["incremental_roots_analyzed"] < 0.25 * total_roots
    assert warm_s < cold_s
    _summary["incremental"] = rows
    _dump_summary()

    small = generate_project(seed=3, n_modules=2, functions_per_module=6)
    small_root, small_paths = materialize(tmp_path, small, "small")
    small_cache = str(tmp_path / "small_cache")
    timed_incremental_run(small_root, small_paths, small_cache)
    benchmark(timed_incremental_run, small_root, small_paths, small_cache)
