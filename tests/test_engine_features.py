"""Integration tests for the engine's less-travelled features: file-scope
inactivation (§6.1), return-state propagation (option), analysis budgets,
switch-carried state, and goto paths."""

from conftest import messages, run_checker

from repro.checkers import free_checker, lock_checker
from repro.driver.project import Project
from repro.engine.analysis import AnalysisOptions


class TestFileScopeVariables:
    def project(self, a_c, b_c):
        project = Project()
        project.compile_text(a_c, "a.c")
        project.compile_text(b_c, "b.c")
        return project

    def test_reactivated_down_the_call_chain(self):
        # §6.1: "they may reenter scope before the callee returns if the
        # analysis reaches a function further down the call chain that is
        # in the same file as the original caller."
        a_c = (
            "static int *cache;\n"
            "int a_touch(void) { return *cache; }\n"
            "int a_free(void) {\n"
            "    kfree(cache);\n"
            "    b_work();\n"
            "    return 0;\n"
            "}\n"
        )
        b_c = "int b_work(void) { a_touch(); return 0; }\n"
        result = self.project(a_c, b_c).run(free_checker())
        assert [(r.function, r.location.line) for r in result.reports] == [
            ("a_touch", 2)
        ]

    def test_reactivated_after_return(self):
        a_c = (
            "static int *cache;\n"
            "int a_free(void) {\n"
            "    kfree(cache);\n"
            "    b_noop();\n"
            "    return *cache;\n"
            "}\n"
        )
        b_c = "int b_noop(void) { return 0; }\n"
        result = self.project(a_c, b_c).run(free_checker())
        assert [(r.function, r.location.line) for r in result.reports] == [
            ("a_free", 5)
        ]

    def test_inactive_while_in_other_file(self):
        # b.c has its own 'cache' identifier; a.c's static must not match.
        a_c = (
            "static int *cache;\n"
            "int a_free(void) {\n"
            "    kfree(cache);\n"
            "    b_deref();\n"
            "    return 0;\n"
            "}\n"
        )
        b_c = (
            "int *cache;\n"  # a DIFFERENT cache (b.c's own)
            "int b_deref(void) { return *cache; }\n"
        )
        result = self.project(a_c, b_c).run(free_checker())
        assert not any(r.function == "b_deref" for r in result.reports)

    def test_static_vars_table(self):
        project = self.project("static int *cache;\nint a(void){return 0;}\n",
                               "int b(void){return 0;}\n")
        assert project.static_vars == {"cache": "a.c"}


class TestReturnStatePropagation:
    CODE = (
        "int *make(int n) {\n"
        "    int *p = kmalloc(n);\n"
        "    kfree(p);\n"
        "    return p;\n"
        "}\n"
        "int root(int n) {\n"
        "    int *q = make(n);\n"
        "    return *q;\n"
        "}\n"
    )

    def test_default_paper_behaviour_misses_it(self):
        result = run_checker(self.CODE, free_checker())
        assert messages(result) == []

    def test_option_propagates(self):
        result = run_checker(
            self.CODE,
            free_checker(),
            options=AnalysisOptions(propagate_return_state=True),
        )
        assert messages(result) == ["using q after free!"]


class TestBudget:
    def test_truncation_flag(self):
        code = "int f(int *p) { kfree(p); return *p; }"
        result = run_checker(
            code, free_checker(), options=AnalysisOptions(max_steps=3)
        )
        assert result.truncated

    def test_no_budget(self):
        code = "int f(int *p) { kfree(p); return *p; }"
        result = run_checker(
            code, free_checker(), options=AnalysisOptions(max_steps=None)
        )
        assert not result.truncated
        assert len(result.reports) == 1


class TestSwitchCarriedState:
    def test_release_in_some_cases_only(self):
        code = (
            "int f(int *l, int mode) {\n"
            "    lock(l);\n"
            "    switch (mode) {\n"
            "    case 0:\n"
            "        unlock(l);\n"
            "        return 0;\n"
            "    case 1:\n"
            "        return 1;\n"  # leak!
            "    default:\n"
            "        unlock(l);\n"
            "        return 2;\n"
            "    }\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == ["lock l never released!"]

    def test_switch_constant_dispatch_prunes(self):
        code = (
            "int f(int *p) {\n"
            "    int mode = 2;\n"
            "    kfree(p);\n"
            "    switch (mode) {\n"
            "    case 1:\n"
            "        return *p;\n"  # unreachable: mode == 2
            "    case 2:\n"
            "        return 0;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == []

    def test_fallthrough_carries_state(self):
        code = (
            "int f(int *l, int mode) {\n"
            "    switch (mode) {\n"
            "    case 0:\n"
            "        lock(l);\n"
            "        /* fallthrough */\n"
            "    case 1:\n"
            "        unlock(l);\n"
            "        return 0;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        # case 1 entered directly: unlock-without-lock; case 0 path clean
        assert messages(result) == ["releasing lock l without acquiring it!"]


class TestGotoPaths:
    def test_error_path_via_goto(self):
        # the kernel's "goto out_unlock" idiom, done wrong
        code = (
            "int f(int *l, int err) {\n"
            "    lock(l);\n"
            "    if (err)\n"
            "        goto out;\n"  # skips the unlock!
            "    unlock(l);\n"
            "out:\n"
            "    return err;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == ["lock l never released!"]

    def test_goto_idiom_done_right(self):
        code = (
            "int f(int *l, int err) {\n"
            "    int rc = 0;\n"
            "    lock(l);\n"
            "    if (err) {\n"
            "        rc = -1;\n"
            "        goto out;\n"
            "    }\n"
            "    rc = 1;\n"
            "out:\n"
            "    unlock(l);\n"
            "    return rc;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == []

    def test_backward_goto_terminates(self):
        code = (
            "int f(int *p, int n) {\n"
            "again:\n"
            "    n--;\n"
            "    if (n > 0)\n"
            "        goto again;\n"
            "    kfree(p);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, free_checker())
        assert result.stats["points_visited"] < 500
        assert messages(result) == []


class TestStatsAccounting:
    def test_stats_keys_present(self):
        result = run_checker("int f(void) { return 0; }", free_checker())
        for key in (
            "points_visited",
            "blocks_traversed",
            "paths_completed",
            "cache_hits",
            "function_cache_hits",
            "calls_followed",
        ):
            assert key in result.stats

    def test_multiple_extensions_accumulate(self):
        code = "int f(int *p) { kfree(p); lock(p); return 0; }"
        from repro.cfront.parser import parse
        from repro.engine.analysis import Analysis

        analysis = Analysis([parse(code)])
        result = analysis.run([free_checker(), lock_checker()])
        assert len(result.tables) == 2
        assert {r.checker for r in result.reports} == {"lock_checker"}
