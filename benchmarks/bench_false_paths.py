"""§8 false positive suppression: false-path pruning, kills, synonyms.

Each technique is benchmarked as an ablation: reports with the technique
on vs off, over code exhibiting exactly the idiom the paper describes.
"""

from conftest import analyze

from repro.checkers import free_checker, null_checker
from repro.engine.analysis import AnalysisOptions

CORRELATED_BRANCHES = """
int f(int *p, int x) {
    if (x)
        kfree(p);
    if (!x)
        return *p;   /* infeasible when freed: NOT an error */
    return 0;
}
"""

RANGE_CORRELATION = """
int f(int *p, int n) {
    if (n > 10)
        kfree(p);
    if (n < 5)
        return *p;   /* n>10 and n<5 contradict: NOT an error */
    return 0;
}
"""

EQUALITY_CHAIN = """
int f(int *p, int a, int b) {
    if (a != b)
        return 0;
    if (a == 1) {
        kfree(p);
        if (b != 1)
            return *p;   /* a==b==1 makes b!=1 infeasible */
    }
    return 0;
}
"""

KILL_IDIOM = """
int f(int *p) {
    kfree(p);
    p = 0;
    return *p;   /* p redefined: the freed state is killed */
}
"""

SYNONYM_IDIOM = """
int f(int n) {
    int *p, *q;
    p = q = kmalloc(n);
    if (!p)
        return 0;
    return *q;   /* safe: q = p = not null (the paper's §8 example) */
}
"""


def count_reports(code, checker, **options):
    result, __ = analyze(code, checker, options=AnalysisOptions(**options))
    return len(result.reports)


def test_false_path_pruning(benchmark):
    rows = []
    for label, code in (
        ("boolean (Fig. 2)", CORRELATED_BRANCHES),
        ("relational", RANGE_CORRELATION),
        ("congruence chain", EQUALITY_CHAIN),
    ):
        with_p = count_reports(code, free_checker(), false_path_pruning=True)
        without = count_reports(code, free_checker(), false_path_pruning=False)
        rows.append((label, with_p, without))

    print("\nfalse-path pruning ablation (reports with / without):")
    for label, with_p, without in rows:
        print("  %-20s %d with pruning, %d without" % (label, with_p, without))
    for label, with_p, without in rows:
        assert with_p == 0, label
        assert without == 1, label

    benchmark(count_reports, CORRELATED_BRANCHES, free_checker(),
              false_path_pruning=True)


def test_kill_on_redefinition(benchmark):
    with_kills = count_reports(KILL_IDIOM, free_checker(), kills=True)
    without = count_reports(KILL_IDIOM, free_checker(), kills=False)
    print("\nkill-on-redefinition: %d reports with kills, %d without"
          % (with_kills, without))
    assert with_kills == 0 and without == 1
    benchmark(count_reports, KILL_IDIOM, free_checker(), kills=True)


def test_synonyms(benchmark):
    with_syn = count_reports(SYNONYM_IDIOM, null_checker(), synonyms=True)
    without = count_reports(SYNONYM_IDIOM, null_checker(), synonyms=False)
    print("\nsynonym tracking on the §8 kmalloc example: "
          "%d reports with synonyms, %d without" % (with_syn, without))
    assert with_syn == 0
    assert without >= 1  # without mirroring, *q looks unchecked
    benchmark(count_reports, SYNONYM_IDIOM, null_checker(), synonyms=True)


def test_pruned_paths_not_counted(benchmark):
    # Fig. 2's contrived has 4 syntactic paths; only 2 are executable.
    code = (
        "int contrived(int *p, int *w, int x) {\n"
        "    int *q;\n"
        "    if (x) { kfree(w); q = p; p = 0; }\n"
        "    if (!x) return *w;\n"
        "    return *q;\n"
        "}\n"
    )

    def run():
        result, __ = analyze(code, free_checker())
        return result.stats["paths_completed"]

    paths = benchmark(run)
    print("\nexecutable paths through contrived: %d (of 4 syntactic)" % paths)
    assert paths == 2
