"""Metal pattern matching tests (§4, Table 1)."""

from repro.cfront import types as ctypes
from repro.cfront.parser import parse, parse_expression, parse_statement
from repro.cfg.blocks import ReturnMarker
from repro.metal import (
    ANY_ARGUMENTS,
    ANY_EXPR,
    ANY_FN_CALL,
    ANY_POINTER,
    ANY_SCALAR,
)
from repro.metal.metatypes import ConcreteType, metatype_by_name
from repro.metal.patterns import (
    Callout,
    EndOfPath,
    MATCH_EVERYTHING,
    MATCH_NOTHING,
    MatchContext,
    compile_pattern,
    match,
)


def expr(text, scope=None):
    return parse_expression(text, scope=scope)


def pat(text, **holes):
    return compile_pattern(text, holes)


class TestLiteralPatterns:
    def test_exact_call(self):
        assert match(pat("rand()"), expr("rand()")) == {}
        assert match(pat("rand()"), expr("srand()")) is None

    def test_spacing_irrelevant(self):
        assert match(pat("f ( 1 , 2 )"), expr("f(1,2)")) is not None

    def test_arity_matters(self):
        assert match(pat("f(1)"), expr("f(1, 2)")) is None

    def test_constant_values(self):
        assert match(pat("f(0)"), expr("f(0)")) is not None
        assert match(pat("f(0)"), expr("f(1)")) is None

    def test_binary_op(self):
        assert match(pat("a + b"), expr("a + b")) is not None
        assert match(pat("a + b"), expr("a - b")) is None


class TestHoles:
    def test_hole_binds(self):
        bindings = match(pat("kfree(v)", v=ANY_POINTER), expr("kfree(p)"))
        assert bindings["v"].name == "p"

    def test_hole_matches_compound_expr(self):
        bindings = match(
            pat("kfree(v)", v=ANY_POINTER), expr("kfree(dev->ptr)")
        )
        assert bindings is not None

    def test_deref_pattern(self):
        assert match(pat("*v", v=ANY_POINTER), expr("*q")) is not None
        assert match(pat("*v", v=ANY_POINTER), expr("q")) is None

    def test_repeated_hole_must_be_equal(self):
        # §4: {foo(x,x)} matches foo(0,0) and foo(a[i],a[i]) but not foo(0,1)
        pattern = pat("foo(x, x)", x=ANY_EXPR)
        assert match(pattern, expr("foo(0, 0)")) is not None
        assert match(pattern, expr("foo(a[i], a[i])")) is not None
        assert match(pattern, expr("foo(0, 1)")) is None

    def test_assignment_pattern(self):
        pattern = pat("v = kmalloc(args)", v=ANY_POINTER, args=ANY_ARGUMENTS)
        bindings = match(pattern, expr("p = kmalloc(64)"))
        assert bindings["v"].name == "p"
        assert len(bindings["args"]) == 1

    def test_statement_pattern_return(self):
        pattern = pat("return v;", v=ANY_EXPR)
        marker = ReturnMarker(expr("x + 1"), None)
        assert match(pattern, marker) is not None
        empty = ReturnMarker(None, None)
        assert match(pattern, empty) is None


class TestMetaTypes:
    def test_any_pointer_rejects_int(self):
        scope = {"n": ctypes.INT, "p": ctypes.PointerType(ctypes.INT)}
        pattern = pat("kfree(v)", v=ANY_POINTER)
        assert match(pattern, expr("kfree(p)", scope)) is not None
        assert match(pattern, expr("kfree(n)", scope)) is None

    def test_any_pointer_accepts_unknown(self):
        # best-effort typing: unknown identifiers match (documented leniency)
        assert match(pat("kfree(v)", v=ANY_POINTER), expr("kfree(mystery)"))is not None

    def test_any_pointer_accepts_array(self):
        scope = {"buf": ctypes.ArrayType(ctypes.CHAR, None)}
        assert match(pat("kfree(v)", v=ANY_POINTER), expr("kfree(buf)", scope)) is not None

    def test_any_scalar(self):
        scope = {"n": ctypes.INT, "s": ctypes.RecordType("struct", "s")}
        pattern = pat("take(v)", v=ANY_SCALAR)
        assert match(pattern, expr("take(n)", scope)) is not None
        assert match(pattern, expr("take(s)", scope)) is None

    def test_concrete_type_hole(self):
        scope = {"n": ctypes.INT, "c": ctypes.CHAR}
        pattern = pat("take(v)", v=ConcreteType(ctypes.INT))
        assert match(pattern, expr("take(n)", scope)) is not None
        assert match(pattern, expr("take(c)", scope)) is None

    def test_any_fn_call_in_callee_position(self):
        pattern = pat("fn(args)", fn=ANY_FN_CALL, args=ANY_ARGUMENTS)
        bindings = match(pattern, expr("gets(buf)"))
        assert bindings["fn"].name == "gets"
        assert [a.name for a in bindings["args"]] == ["buf"]

    def test_any_arguments_empty_list(self):
        pattern = pat("fn(args)", fn=ANY_FN_CALL, args=ANY_ARGUMENTS)
        bindings = match(pattern, expr("f()"))
        assert bindings["args"] == []

    def test_metatype_by_name(self):
        assert metatype_by_name("any pointer") is ANY_POINTER
        assert metatype_by_name("any_expr") is ANY_EXPR
        assert metatype_by_name("nonsense") is None


class TestComposition:
    def test_and(self):
        base = pat("fn(args)", fn=ANY_FN_CALL, args=ANY_ARGUMENTS)
        refine = Callout(
            lambda ctx: getattr(ctx.bindings.get("fn"), "name", "") == "gets",
            "is gets",
        )
        pattern = base & refine
        assert match(pattern, expr("gets(b)")) is not None
        assert match(pattern, expr("puts(b)")) is None

    def test_or(self):
        pattern = pat("kfree(v)", v=ANY_POINTER) | pat("vfree(v)", v=ANY_POINTER)
        assert match(pattern, expr("kfree(p)")) is not None
        assert match(pattern, expr("vfree(p)")) is not None
        assert match(pattern, expr("ifree(p)")) is None

    def test_or_no_binding_leak(self):
        pattern = pat("f(v, 1)", v=ANY_EXPR) | pat("g(w)", w=ANY_EXPR)
        bindings = match(pattern, expr("g(x)"))
        assert "v" not in bindings
        assert bindings["w"].name == "x"

    def test_degenerate_callouts(self):
        # §4: ${0} and ${1} match nothing and everything respectively
        anything = expr("whatever(1)")
        assert match(MATCH_NOTHING, anything) is None
        assert match(MATCH_EVERYTHING, anything) == {}

    def test_end_of_path(self):
        pattern = EndOfPath()
        point = expr("x")
        assert match(pattern, point, MatchContext(point, end_of_path=True)) is not None
        assert match(pattern, point, MatchContext(point, end_of_path=False)) is None

    def test_failed_and_leaves_bindings(self):
        pattern = pat("f(v)", v=ANY_EXPR) & Callout(lambda c: False, "never")
        bindings = {}
        ctx = MatchContext(expr("f(x)"), bindings)
        assert not pattern.match(expr("f(x)"), bindings, ctx)
        assert bindings == {}
