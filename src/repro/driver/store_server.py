"""The shared artifact-store server (``python -m repro.driver.store_server``).

A small asyncio TCP server exposing one :class:`repro.driver.store.
LocalStore` to any number of xgcc clients -- the sccache-style hub that
lets a fleet of daemons and CI runners share one warm cache state
(ROADMAP: "remote/shared artifact store").

Protocol (docs/STORE.md): newline-JSON with attached binary frames.
Each request is a single JSON object terminated by ``\\n`` whose
``blobs`` field lists the byte lengths of the raw frame payloads that
follow it; each response has the same shape.  Ops:

``ping``, ``get``, ``put``, ``head``, ``touch``, ``delete``, ``list``
    Batched frame operations; ``items`` is ``[{"tier", "key"}, ...]``.
``manifest_get`` / ``manifest_head`` / ``manifest_put`` /
``manifest_cas`` / ``manifest_list`` / ``manifest_delete``
    Session-manifest operations.  CAS carries the expected ETag; a
    conflict response includes the current document so the client's
    re-merge needs no second round trip.
``gc``
    Server-side garbage collection.  ``extra_live_sum`` /
    ``extra_live_ast`` ship the client's pinned keys (a daemon's warm
    state), so remote GC honours the same extra-live protocol as local
    GC.

Requests are dispatched synchronously on the event loop, so every
operation -- in particular ``manifest_cas`` and ``gc`` -- is atomic
with respect to every other connection; blob reads/writes are async, so
a slow client never blocks the store.

Fault sites (tests): ``store.slow`` sleeps before replying (client
timeout path), ``store.request`` drops the connection before -- or,
with ``mode="partial"``, mid-way through -- the response (mid-batch
crash path).  Both consult the process-global fault plan, which the
``XGCC_FAULTS`` environment variable propagates into a subprocess
server.
"""

import argparse
import asyncio
import json
import sys
import threading

from repro import faults
from repro.driver.store import STORE_PROTOCOL, LocalStore, StoreError


def handle_message(store, header, blobs):
    """Dispatch one decoded request against a LocalStore.

    Pure and synchronous: returns ``(reply_fields, reply_blobs)``.
    Unknown ops and malformed requests come back as ``ok=False``
    replies, never connection drops.
    """
    op = header.get("op")
    items = header.get("items") or []
    if op == "ping":
        return {"ok": True}, []
    if op == "get":
        found, out = [], []
        for item in items:
            data = store.get_many(item["tier"], [item["key"]]).get(
                item["key"]
            )
            found.append(data is not None)
            if data is not None:
                out.append(data)
        return {"ok": True, "found": found}, out
    if op == "put":
        if len(items) != len(blobs):
            return {"ok": False, "error": "put: %d items, %d blobs"
                    % (len(items), len(blobs))}, []
        for item, data in zip(items, blobs):
            store.put_many(item["tier"], {item["key"]: data})
        return {"ok": True, "stored": len(items)}, []
    if op == "head":
        found, mtimes = [], []
        for item in items:
            mtime = store.entry_mtime(item["tier"], item["key"])
            found.append(mtime is not None)
            mtimes.append(mtime)
        return {"ok": True, "found": found, "mtimes": mtimes}, []
    if op == "touch":
        ts = header.get("ts")
        for item in items:
            store.touch_many(item["tier"], [item["key"]], ts=ts)
        return {"ok": True, "touched": len(items)}, []
    if op == "delete":
        deleted = 0
        for item in items:
            deleted += store.delete_many(item["tier"], [item["key"]])
        return {"ok": True, "deleted": deleted}, []
    if op == "list":
        return {"ok": True, "entries": store.list_tier(header["tier"])}, []
    if op == "manifest_get":
        text, etag = store.manifest_get(header["signature"])
        if text is None:
            return {"ok": True, "etag": None}, []
        return {"ok": True, "etag": etag}, [text.encode("utf-8")]
    if op == "manifest_head":
        return {"ok": True,
                "etag": store.manifest_head(header["signature"])}, []
    if op == "manifest_cas":
        text = blobs[0].decode("utf-8") if blobs else ""
        committed, etag, current = store.manifest_cas(
            header["signature"], text, header.get("etag")
        )
        if committed:
            return {"ok": True, "committed": True, "etag": etag}, []
        reply_blobs = [current.encode("utf-8")] if current else []
        return {"ok": True, "committed": False, "etag": etag}, reply_blobs
    if op == "manifest_put":
        text = blobs[0].decode("utf-8") if blobs else ""
        etag = store.manifest_put(header["signature"], text)
        return {"ok": True, "etag": etag}, []
    if op == "manifest_list":
        return {"ok": True, "manifests": store.manifest_list()}, []
    if op == "manifest_delete":
        return {"ok": True,
                "deleted": store.manifest_delete(header["token"])}, []
    if op == "gc":
        counters = store.gc(
            cutoff_days=float(header.get("cutoff_days", 30.0)),
            now=header.get("now"),
            extra_live_sum=header.get("extra_live_sum") or (),
            extra_live_ast=header.get("extra_live_ast") or (),
        )
        return {"ok": True, "gc": counters}, []
    return {"ok": False, "error": "unknown op: %r" % (op,)}, []


class StoreServer:
    """One LocalStore served over TCP.

    Usable three ways: ``serve_forever()`` in the foreground (the CLI),
    ``start()`` on a daemon thread returning once the port is bound
    (tests run an in-process server and read ``url``), and ``stop()``
    to shut the threaded server down.
    """

    def __init__(self, root, host="127.0.0.1", port=0):
        self.store = LocalStore(root=root)
        self.host = host
        self.port = port
        self._loop = None
        self._stop_future = None
        self._thread = None
        self._started = threading.Event()
        self._startup_error = None

    @property
    def url(self):
        return "tcp://%s:%d" % (self.host, self.port)

    async def _serve_connection(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    header = json.loads(line.decode("utf-8"))
                    if not isinstance(header, dict):
                        raise ValueError("request is not an object")
                    blobs = [
                        await reader.readexactly(int(size))
                        for size in header.get("blobs") or ()
                    ]
                except (ValueError, UnicodeDecodeError) as err:
                    reply, reply_blobs = (
                        {"ok": False, "error": "undecodable request: %s"
                         % err},
                        [],
                    )
                    header = {}
                else:
                    op = header.get("op")
                    spec = faults.fires("store.slow", key=op)
                    if spec is not None:
                        # Async sleep: this connection stalls (client
                        # timeout path) while others keep being served.
                        await asyncio.sleep(
                            float(spec.get("seconds", 30.0))
                        )
                    spec = faults.fires("store.request", key=op)
                    if spec is not None:
                        if spec.get("mode") == "partial":
                            # Mid-batch crash: a correct-looking header,
                            # then the connection dies inside the frame
                            # bytes.  Clients must treat the whole batch
                            # as unserved -- no partial frames.
                            reply, reply_blobs = handle_message(
                                self.store, header, blobs
                            )
                            reply["protocol"] = STORE_PROTOCOL
                            reply["blobs"] = [
                                len(blob) for blob in reply_blobs
                            ]
                            body = b"".join(reply_blobs)
                            writer.write(
                                json.dumps(reply).encode("utf-8") + b"\n"
                                + body[: len(body) // 2]
                            )
                            await writer.drain()
                        break
                    try:
                        reply, reply_blobs = handle_message(
                            self.store, header, blobs
                        )
                    except (StoreError, KeyError, TypeError,
                            ValueError) as err:
                        reply, reply_blobs = (
                            {"ok": False, "error": repr(err)}, []
                        )
                reply["protocol"] = STORE_PROTOCOL
                reply["blobs"] = [len(blob) for blob in reply_blobs]
                writer.write(
                    json.dumps(reply).encode("utf-8") + b"\n"
                    + b"".join(reply_blobs)
                )
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # client went away mid-exchange
        except asyncio.CancelledError:
            pass  # server shutting down with the connection open
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _main(self):
        server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        self._stop_future = self._loop.create_future()
        self._started.set()
        async with server:
            await self._stop_future

    def _run_thread(self):
        try:
            asyncio.run(self._main())
        except Exception as err:  # bind failure and friends
            self._startup_error = err
            self._started.set()

    def start(self):
        """Serve on a daemon thread; returns the bound URL."""
        self._thread = threading.Thread(target=self._run_thread, daemon=True)
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise StoreError(
                "store server failed to start: %r" % self._startup_error
            )
        if not self._started.is_set():
            raise StoreError("store server did not start in time")
        return self.url

    def stop(self):
        if self._loop is not None and self._stop_future is not None:
            def _finish():
                if not self._stop_future.done():
                    self._stop_future.set_result(None)
            try:
                self._loop.call_soon_threadsafe(_finish)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def serve_forever(self):
        asyncio.run(self._main())


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="xgcc-store",
        description="shared artifact-store server for xgcc clients",
    )
    parser.add_argument("--root", required=True,
                        help="store directory (created if missing)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: any free port)")
    args = parser.parse_args(argv)

    import os

    os.makedirs(args.root, exist_ok=True)
    server = StoreServer(args.root, host=args.host, port=args.port)

    async def _announce_and_serve():
        bound = asyncio.ensure_future(server._main())
        while not server._started.is_set():
            await asyncio.sleep(0.01)
        print("xgcc-store: serving %s on %s" % (args.root, server.url),
              file=sys.stderr, flush=True)
        await bound

    try:
        asyncio.run(_announce_and_serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
