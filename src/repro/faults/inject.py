"""Injection points: the site-side API the engine and driver call.

These functions consult the active :class:`repro.faults.plan.FaultPlan`
(installed locally or adopted from the ``XGCC_FAULTS`` environment) and
fire the matching fault: return the spec (:func:`fires`), raise
(:func:`check`), or kill/hang the current worker
(:func:`at_worker_entry`).
"""

import os
import time

from repro.faults.plan import _bump, _plan, _stable_fraction, in_worker


class InjectedFault(Exception):
    """Raised at ``raise``-style injection sites (``pass1.parse``,
    ``pass2.analysis``)."""


def fires(site, key=None):
    """The matching spec dict if a fault fires here, else None.

    Every call against a ``times``-limited spec counts as one attempt in
    the plan's shared (cross-process) counter.
    """
    plan = _plan()
    if plan is None:
        return None
    for index, spec in enumerate(plan.specs):
        if spec.get("site") != site:
            continue
        want = spec.get("key")
        if want is not None and (key is None or str(want) != str(key)):
            continue
        probability = spec.get("probability")
        if probability is not None:
            if _stable_fraction(plan.seed, site, key) < probability:
                return spec
            continue
        times = spec.get("times")
        if times is None or _bump(plan, index) <= times:
            return spec
    return None


def check(site, key=None):
    """Raise :class:`InjectedFault` if a fault fires at this site."""
    spec = fires(site, key=key)
    if spec is not None:
        raise InjectedFault(
            "injected fault at %s (key=%r)" % (site, key)
        )


def at_worker_entry(site_prefix, key=None):
    """Apply kill/hang faults at a worker function's entry point.

    No-op in the installing process, so the in-process fallback path can
    never take the driver down with it.
    """
    if not in_worker():
        return
    spec = fires(site_prefix + ".kill", key=key)
    if spec is not None:
        os._exit(int(spec.get("exit_code", 87)))
    spec = fires(site_prefix + ".hang", key=key)
    if spec is not None:
        time.sleep(float(spec.get("seconds", 3600.0)))
