"""The supergraph (§6.2, after Reps-Horwitz-Sagiv).

Construction from the paper: take the CFG of every function, add an entry
node ``sp`` and exit node ``ep`` per routine, split each call into a
callsite node ``cp`` and a return-site node ``rp``, then add edges
``cp -> sp(callee)`` and ``ep(callee) -> rp``; the only intraprocedural
successor of ``cp`` is ``rp``.

Our CFG builder already isolates call statements into their own blocks, so
the cp node *is* the call block and the rp node is its fall-through
successor.  The supergraph ties these to the callee CFGs and is the
structure Figure 5 displays; the engine itself follows calls directly but
uses the same cp/rp identification.
"""

from repro.cfront import astnodes as ast
from repro.cfg.builder import build_cfg


class CallSite:
    """One call split into its cp (call block) and rp (return block)."""

    __slots__ = ("caller", "call", "call_block", "return_block", "callee_name")

    def __init__(self, caller, call, call_block, return_block):
        self.caller = caller
        self.call = call
        self.call_block = call_block
        self.return_block = return_block
        self.callee_name = call.callee_name()

    def __repr__(self):
        return "<CallSite %s -> %s (B%d -> B%d)>" % (
            self.caller,
            self.callee_name,
            self.call_block.index,
            self.return_block.index if self.return_block else -1,
        )


class Supergraph:
    """CFGs for every function plus interprocedural linkage."""

    def __init__(self, callgraph):
        self.callgraph = callgraph
        self.cfgs = {}  # name -> CFG
        self.callsites = []  # list of CallSite
        self.callsites_by_block = {}  # id(block) -> [CallSite]

    def cfg(self, name):
        return self.cfgs.get(name)

    def entry(self, name):
        """The sp node of a function."""
        cfg = self.cfgs.get(name)
        return cfg.entry if cfg else None

    def exit(self, name):
        """The ep node of a function."""
        cfg = self.cfgs.get(name)
        return cfg.exit if cfg else None

    def callsites_in(self, name):
        return [cs for cs in self.callsites if cs.caller == name]


def build_supergraph(callgraph, matched_call_filter=None):
    """Build the supergraph for a call graph.

    ``matched_call_filter(call)`` may return True for calls an extension
    matches; per the paper (Fig. 5 caption) those "are not considered
    callsites in the supergraph construction".
    """
    graph = Supergraph(callgraph)
    for name, decl in callgraph.functions.items():
        graph.cfgs[name] = build_cfg(decl)
    for name, cfg in graph.cfgs.items():
        for block in cfg.blocks:
            if not block.is_call_block:
                continue
            calls = [
                node
                for item in block.items
                if isinstance(item, ast.Node)
                for node in item.walk()
                if isinstance(node, ast.Call)
            ]
            for call in calls:
                if matched_call_filter is not None and matched_call_filter(call):
                    continue
                callee = call.callee_name()
                if callee is None or callee not in callgraph.functions:
                    continue
                return_block = block.successor(None)
                site = CallSite(name, call, block, return_block)
                graph.callsites.append(site)
                graph.callsites_by_block.setdefault(id(block), []).append(site)
    return graph
