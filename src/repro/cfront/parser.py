"""A recursive-descent parser for a practical subset of C.

The subset covers everything the paper's checkers and figures exercise:
function definitions and prototypes, typedefs, structs/unions/enums,
pointers and arrays, the full expression grammar with C precedence, and all
statements (including ``goto``/labels and ``switch``).

The parser doubles as the metal *pattern* parser: constructing it with a
``hole_types`` mapping turns identifiers that name hole variables into
:class:`repro.cfront.astnodes.Hole` nodes (§4 of the paper).

A best-effort type checker runs inline: expressions get a ``ctype`` when it
can be computed from declarations in scope.  Pattern matching of typed holes
(Table 1) relies on this.
"""

from repro.cfront import astnodes as ast
from repro.cfront import types as ctypes
from repro.cfront.lexer import (
    Lexer,
    TokenKind,
    parse_char_constant,
    parse_int_constant,
    parse_string_literal,
)
from repro.cfront.source import Location, ParseError

_TYPE_SPECIFIER_KEYWORDS = frozenset(
    "void char short int long float double signed unsigned _Bool struct union enum".split()
)
_STORAGE_KEYWORDS = frozenset("typedef extern static auto register".split())
_QUALIFIER_KEYWORDS = frozenset("const volatile restrict inline".split())

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "<<=", ">>=")


class Scope:
    """A lexical scope mapping names to types (variables and functions)."""

    def __init__(self, parent=None):
        self.parent = parent
        self.names = {}

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def define(self, name, ctype):
        self.names[name] = ctype


class Parser:
    """Parses token streams into ASTs.

    Parameters
    ----------
    text:
        the source text (already preprocessed, or plain C).
    filename:
        for locations and diagnostics.
    typedefs:
        optional initial typedef table ``{name: CType}``; extended as the
        parse encounters ``typedef`` declarations.
    hole_types:
        optional ``{name: metatype}``; identifiers with these names parse as
        :class:`Hole` nodes.  Used by the metal pattern compiler only.
    """

    def __init__(self, text, filename="<string>", typedefs=None, hole_types=None,
                 tokens=None):
        if tokens is not None:
            from repro.cfront.lexer import Token, TokenKind as _TK

            self.tokens = list(tokens)
            if not self.tokens or self.tokens[-1].kind is not _TK.EOF:
                last = self.tokens[-1].location if self.tokens else None
                self.tokens.append(Token(_TK.EOF, "", last or Location(filename)))
        else:
            self.tokens = Lexer(text, filename).tokens()
        self.pos = 0
        self.filename = filename
        self.typedefs = dict(typedefs or {})
        self.hole_types = dict(hole_types or {})
        self.scope = Scope()
        self.record_tags = {}  # tag -> RecordType (completed as defs are seen)
        self.enum_tags = {}
        self.enum_constants = {}

    # -- token stream helpers ------------------------------------------------

    def peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return token

    def at_eof(self):
        return self.peek().kind is TokenKind.EOF

    def error(self, message):
        token = self.peek()
        raise ParseError("%s (at %r)" % (message, token.value or "<eof>"), token.location)

    def expect_punct(self, value):
        token = self.peek()
        if not token.is_punct(value):
            self.error("expected %r" % value)
        return self.advance()

    def expect_keyword(self, value):
        token = self.peek()
        if not token.is_keyword(value):
            self.error("expected keyword %r" % value)
        return self.advance()

    def expect_ident(self):
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            self.error("expected identifier")
        return self.advance()

    def accept_punct(self, *values):
        if self.peek().is_punct(*values):
            return self.advance()
        return None

    def accept_keyword(self, *values):
        if self.peek().is_keyword(*values):
            return self.advance()
        return None

    # -- GCC extension tolerance ------------------------------------------------

    _GCC_NOISE = frozenset(
        ["__attribute__", "__extension__", "__restrict", "__restrict__",
         "__inline", "__inline__", "__volatile__", "__asm__", "__asm"]
    )

    def _skip_gcc_extensions(self):
        """Skip ``__attribute__((...))`` and friends wherever they appear.

        Kernel code is saturated with these; the analyses never consult
        them, so the parser tolerates and drops them.
        """
        while True:
            token = self.peek()
            if token.kind is TokenKind.IDENT and token.value in self._GCC_NOISE:
                name = self.advance().value
                if self.peek().is_punct("(") and name in (
                    "__attribute__", "__asm__", "__asm",
                ):
                    depth = 0
                    while True:
                        inner = self.advance()
                        if inner.is_punct("("):
                            depth += 1
                        elif inner.is_punct(")"):
                            depth -= 1
                            if depth == 0:
                                break
                        elif inner.kind is TokenKind.EOF:
                            self.error("unterminated %s" % name)
            else:
                return

    # -- type recognition ------------------------------------------------------

    def _is_typedef_name(self, token):
        return (
            token.kind is TokenKind.IDENT
            and token.value in self.typedefs
            and token.value not in self.hole_types
        )

    def starts_type(self, offset=0):
        """Whether the token at ``offset`` begins a type (for decl/cast tests)."""
        token = self.peek(offset)
        if token.kind is TokenKind.KEYWORD:
            return (
                token.value in _TYPE_SPECIFIER_KEYWORDS
                or token.value in _STORAGE_KEYWORDS
                or token.value in _QUALIFIER_KEYWORDS
            )
        if token.kind is TokenKind.IDENT and token.value in self._GCC_NOISE:
            return True
        return self._is_typedef_name(token)

    # -- declarations ----------------------------------------------------------

    def parse_translation_unit(self):
        decls = []
        while not self.at_eof():
            if self.accept_punct(";"):
                continue
            decls.extend(self.parse_external_declaration())
        return ast.TranslationUnit(decls, self.filename)

    def parse_external_declaration(self):
        """One external declaration; may expand to several Decl nodes."""
        location = self.peek().location
        storage, base_type = self.parse_declaration_specifiers()

        # Bare "struct S { ... };" or "enum E { ... };"
        if self.peek().is_punct(";"):
            self.advance()
            if isinstance(base_type, ctypes.RecordType):
                return [ast.RecordDecl(base_type, location)]
            if isinstance(base_type, ctypes.EnumType):
                return [ast.EnumDecl(base_type, location)]
            return []

        decls = []
        while True:
            name, full_type, params = self.parse_declarator(base_type)
            self._skip_gcc_extensions()
            if name is None:
                self.error("expected declarator name")
            if storage == "typedef":
                self.typedefs[name] = full_type
                decls.append(ast.TypedefDecl(name, full_type, location))
            elif full_type.is_function():
                fn_type = full_type.resolve()
                self.scope.define(name, fn_type)
                if self.peek().is_punct("{"):
                    body = self._parse_function_body(params)
                    decls.append(
                        ast.FunctionDecl(
                            name,
                            fn_type.return_type,
                            params or [],
                            body,
                            fn_type.varargs,
                            storage,
                            location,
                        )
                    )
                    return decls
                decls.append(
                    ast.FunctionDecl(
                        name,
                        fn_type.return_type,
                        params or [],
                        None,
                        fn_type.varargs,
                        storage,
                        location,
                    )
                )
            else:
                init = None
                if self.accept_punct("="):
                    init = self.parse_initializer()
                self.scope.define(name, full_type)
                decls.append(ast.VarDecl(name, full_type, init, storage, location))
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        return decls

    def _parse_function_body(self, params):
        self.scope = Scope(self.scope)
        for param in params or []:
            if param.name:
                self.scope.define(param.name, param.ctype)
        body = self.parse_compound()
        self.scope = self.scope.parent
        return body

    def parse_declaration_specifiers(self):
        """Parse storage/qualifier/type specifiers; return (storage, CType)."""
        storage = None
        qualifiers = set()
        specifier_words = []
        record = None
        while True:
            self._skip_gcc_extensions()
            token = self.peek()
            if token.kind is TokenKind.KEYWORD and token.value in _STORAGE_KEYWORDS:
                if token.value in ("typedef", "static", "extern"):
                    storage = token.value
                self.advance()
            elif token.kind is TokenKind.KEYWORD and token.value in _QUALIFIER_KEYWORDS:
                qualifiers.add(token.value)
                self.advance()
            elif token.is_keyword("struct", "union"):
                record = self.parse_record_specifier()
            elif token.is_keyword("enum"):
                record = self.parse_enum_specifier()
            elif (
                token.kind is TokenKind.KEYWORD
                and token.value in _TYPE_SPECIFIER_KEYWORDS
            ):
                specifier_words.append(token.value)
                self.advance()
            elif self._is_typedef_name(token) and not specifier_words and record is None:
                record = self.typedefs[token.value]
                record = ctypes.TypedefType(token.value, record)
                self.advance()
            else:
                break
        if record is not None:
            return storage, record
        if not specifier_words:
            if storage or qualifiers:
                return storage, ctypes.INT  # implicit int
            self.error("expected type specifier")
        return storage, _canonical_basic_type(specifier_words, self)

    def parse_record_specifier(self):
        kind_token = self.advance()  # struct | union
        kind = kind_token.value
        tag = None
        if self.peek().kind is TokenKind.IDENT:
            tag = self.advance().value
        record = None
        if tag is not None:
            record = self.record_tags.get((kind, tag))
        if record is None:
            record = ctypes.RecordType(kind, tag)
            if tag is not None:
                self.record_tags[(kind, tag)] = record
        if self.accept_punct("{"):
            fields = []
            while not self.peek().is_punct("}"):
                __, field_base = self.parse_declaration_specifiers()
                while True:
                    name, field_type, __ = self.parse_declarator(field_base)
                    if self.accept_punct(":"):  # bitfield width
                        self.parse_conditional()
                    if name is not None:
                        fields.append((name, field_type))
                    if not self.accept_punct(","):
                        break
                self.expect_punct(";")
            self.expect_punct("}")
            record.fields = fields
        return record

    def parse_enum_specifier(self):
        self.advance()  # enum
        tag = None
        if self.peek().kind is TokenKind.IDENT:
            tag = self.advance().value
        enum = None
        if tag is not None:
            enum = self.enum_tags.get(tag)
        if enum is None:
            enum = ctypes.EnumType(tag)
            if tag is not None:
                self.enum_tags[tag] = enum
        if self.accept_punct("{"):
            enumerators = []
            next_value = 0
            while not self.peek().is_punct("}"):
                name = self.expect_ident().value
                value = None
                if self.accept_punct("="):
                    value_expr = self.parse_conditional()
                    value = _fold_constant(value_expr, self)
                if value is None:
                    value = next_value
                next_value = value + 1
                enumerators.append((name, value))
                self.enum_constants[name] = value
                self.scope.define(name, enum)
                if not self.accept_punct(","):
                    break
            self.expect_punct("}")
            enum.enumerators = tuple(enumerators)
        return enum

    def parse_declarator(self, base_type, abstract=False):
        """Parse a (possibly abstract) declarator.

        Returns ``(name, type, params)`` where ``params`` is the parameter
        list if the declarator declared a function, else None.
        """
        self._skip_gcc_extensions()
        while self.accept_punct("*"):
            quals = []
            while self.peek().is_keyword("const", "volatile", "restrict"):
                quals.append(self.advance().value)
            self._skip_gcc_extensions()
            base_type = ctypes.PointerType(base_type, quals)

        name = None
        inner_marker = None
        params_out = [None]

        if self.peek().is_punct("(") and self._paren_is_declarator():
            self.advance()
            inner_marker = self.pos
            depth = 1
            while depth:
                token = self.advance()
                if token.is_punct("("):
                    depth += 1
                elif token.is_punct(")"):
                    depth -= 1
                elif token.kind is TokenKind.EOF:
                    self.error("unterminated declarator")
        elif self.peek().kind is TokenKind.IDENT:
            name = self.advance().value
        elif not abstract and not self.peek().is_punct("(", "["):
            self.error("expected declarator")

        # Suffixes: arrays and function parameter lists, innermost-first.
        suffix_type = base_type
        while True:
            if self.accept_punct("["):
                size = None
                if not self.peek().is_punct("]"):
                    size = self.parse_expression()
                self.expect_punct("]")
                suffix_type = _append_array(suffix_type, size)
            elif self.peek().is_punct("("):
                self.advance()
                params, varargs = self.parse_parameter_list()
                suffix_type = ctypes.FunctionType(
                    suffix_type, tuple(p.ctype for p in params), varargs
                )
                params_out[0] = params
            else:
                break

        if inner_marker is not None:
            saved = self.pos
            self.pos = inner_marker
            name, suffix_type, inner_params = self.parse_declarator(suffix_type, abstract)
            if inner_params is not None:
                params_out[0] = inner_params
            self.expect_punct(")")
            self.pos = saved

        return name, suffix_type, params_out[0]

    def _paren_is_declarator(self):
        """Disambiguate ``(*f)(...)`` declarators from parameter lists."""
        token = self.peek(1)
        if token.is_punct("*", "("):
            return True
        # "(ident)" is a declarator unless ident is a typedef name (then it's
        # a parameter list "(size_t)").
        if token.kind is TokenKind.IDENT and not self._is_typedef_name(token):
            return self.peek(2).is_punct(")", "[", "(")
        return False

    def parse_parameter_list(self):
        params = []
        varargs = False
        if self.accept_punct(")"):
            return params, varargs
        if self.peek().is_keyword("void") and self.peek(1).is_punct(")"):
            self.advance()
            self.advance()
            return params, varargs
        while True:
            if self.accept_punct("..."):
                varargs = True
                break
            location = self.peek().location
            __, base = self.parse_declaration_specifiers()
            name, full_type, __ = self.parse_declarator(base, abstract=True)
            if isinstance(full_type, ctypes.ArrayType):
                full_type = full_type.decay()
            if full_type.is_function():
                full_type = ctypes.PointerType(full_type)
            params.append(ast.ParamDecl(name, full_type, location))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return params, varargs

    def parse_initializer(self):
        if self.peek().is_punct("{"):
            location = self.advance().location
            items = []
            while not self.peek().is_punct("}"):
                if self.accept_punct("."):  # designated initializer: skip name
                    self.expect_ident()
                    self.expect_punct("=")
                elif self.peek().is_punct("["):
                    self.advance()
                    self.parse_conditional()
                    self.expect_punct("]")
                    self.expect_punct("=")
                items.append(self.parse_initializer())
                if not self.accept_punct(","):
                    break
            self.expect_punct("}")
            return ast.InitList(items, location)
        return self.parse_assignment()

    # -- statements --------------------------------------------------------------

    def parse_compound(self):
        location = self.expect_punct("{").location
        self.scope = Scope(self.scope)
        items = []
        while not self.peek().is_punct("}"):
            if self.at_eof():
                self.error("unterminated compound statement")
            items.extend(self.parse_block_item())
        self.expect_punct("}")
        self.scope = self.scope.parent
        return ast.Compound(items, location)

    def parse_block_item(self):
        """A declaration (may split into several) or a single statement."""
        if self.starts_type() and not self._label_ahead():
            return self.parse_local_declaration()
        return [self.parse_statement()]

    def _label_ahead(self):
        return (
            self.peek().kind is TokenKind.IDENT and self.peek(1).is_punct(":")
        )

    def parse_local_declaration(self):
        location = self.peek().location
        storage, base_type = self.parse_declaration_specifiers()
        if self.accept_punct(";"):
            if isinstance(base_type, ctypes.RecordType):
                return [ast.RecordDecl(base_type, location)]
            if isinstance(base_type, ctypes.EnumType):
                return [ast.EnumDecl(base_type, location)]
            return []
        decls = []
        while True:
            name, full_type, __ = self.parse_declarator(base_type)
            if storage == "typedef":
                self.typedefs[name] = full_type
                decls.append(ast.TypedefDecl(name, full_type, location))
            else:
                init = None
                if self.accept_punct("="):
                    init = self.parse_initializer()
                self.scope.define(name, full_type)
                decls.append(ast.VarDecl(name, full_type, init, storage, location))
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        return decls

    def parse_statement(self):
        token = self.peek()
        location = token.location

        if token.is_punct("{"):
            return self.parse_compound()
        if token.is_punct(";"):
            self.advance()
            return ast.EmptyStmt(location)
        if token.is_keyword("if"):
            self.advance()
            self.expect_punct("(")
            cond = self.parse_expression()
            self.expect_punct(")")
            then = self.parse_statement()
            otherwise = None
            if self.accept_keyword("else"):
                otherwise = self.parse_statement()
            return ast.If(cond, then, otherwise, location)
        if token.is_keyword("while"):
            self.advance()
            self.expect_punct("(")
            cond = self.parse_expression()
            self.expect_punct(")")
            body = self.parse_statement()
            return ast.While(cond, body, location)
        if token.is_keyword("do"):
            self.advance()
            body = self.parse_statement()
            self.expect_keyword("while")
            self.expect_punct("(")
            cond = self.parse_expression()
            self.expect_punct(")")
            self.expect_punct(";")
            return ast.DoWhile(body, cond, location)
        if token.is_keyword("for"):
            self.advance()
            self.expect_punct("(")
            init = None
            if self.starts_type():
                init = ast.Compound(self.parse_local_declaration(), location)
            elif not self.peek().is_punct(";"):
                init = ast.ExprStmt(self.parse_expression(), location)
                self.expect_punct(";")
            else:
                self.advance()
            cond = None
            if not self.peek().is_punct(";"):
                cond = self.parse_expression()
            self.expect_punct(";")
            step = None
            if not self.peek().is_punct(")"):
                step = self.parse_expression()
            self.expect_punct(")")
            body = self.parse_statement()
            return ast.For(init, cond, step, body, location)
        if token.is_keyword("switch"):
            self.advance()
            self.expect_punct("(")
            cond = self.parse_expression()
            self.expect_punct(")")
            body = self.parse_statement()
            return ast.Switch(cond, body, location)
        if token.is_keyword("case"):
            self.advance()
            expr = self.parse_conditional()
            self.expect_punct(":")
            return ast.Case(expr, self.parse_statement(), location)
        if token.is_keyword("default"):
            self.advance()
            self.expect_punct(":")
            return ast.Default(self.parse_statement(), location)
        if token.is_keyword("break"):
            self.advance()
            self.expect_punct(";")
            return ast.Break(location)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_punct(";")
            return ast.Continue(location)
        if token.is_keyword("return"):
            self.advance()
            expr = None
            if not self.peek().is_punct(";"):
                expr = self.parse_expression()
            self.expect_punct(";")
            return ast.Return(expr, location)
        if token.is_keyword("goto"):
            self.advance()
            label = self.expect_ident().value
            self.expect_punct(";")
            return ast.Goto(label, location)
        if token.kind is TokenKind.IDENT and self.peek(1).is_punct(":"):
            name = self.advance().value
            self.advance()  # ':'
            return ast.Label(name, self.parse_statement(), location)

        expr = self.parse_expression()
        self.expect_punct(";")
        return ast.ExprStmt(expr, location)

    # -- expressions ---------------------------------------------------------------

    def parse_expression(self):
        """Full expression including the comma operator."""
        expr = self.parse_assignment()
        while self.peek().is_punct(","):
            location = self.advance().location
            right = self.parse_assignment()
            expr = ast.Comma(expr, right, location)
        return expr

    def parse_assignment(self):
        left = self.parse_conditional()
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.value in _ASSIGN_OPS:
            op = self.advance().value
            right = self.parse_assignment()
            node = ast.Assign(op, left, right, token.location)
            node.ctype = left.ctype
            return node
        return left

    def parse_conditional(self):
        cond = self.parse_binary(0)
        if self.peek().is_punct("?"):
            location = self.advance().location
            then = self.parse_expression()
            self.expect_punct(":")
            otherwise = self.parse_conditional()
            node = ast.Conditional(cond, then, otherwise, location)
            node.ctype = then.ctype or otherwise.ctype
            return node
        return cond

    _BINARY_LEVELS = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_binary(self, level):
        if level >= len(self._BINARY_LEVELS):
            return self.parse_cast()
        ops = self._BINARY_LEVELS[level]
        left = self.parse_binary(level + 1)
        while True:
            token = self.peek()
            if token.kind is not TokenKind.PUNCT or token.value not in ops:
                return left
            op = self.advance().value
            right = self.parse_binary(level + 1)
            node = ast.Binary(op, left, right, token.location)
            node.ctype = self._binary_type(op, left, right)
            left = node

    def _binary_type(self, op, left, right):
        if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return ctypes.INT
        left_type = left.ctype.resolve() if left.ctype else None
        right_type = right.ctype.resolve() if right.ctype else None
        if op in ("+", "-"):
            if left_type is not None and left_type.is_pointer():
                return left.ctype
            if right_type is not None and right_type.is_pointer():
                return right.ctype
        return left.ctype or right.ctype

    def parse_cast(self):
        if self.peek().is_punct("(") and self.starts_type(1):
            location = self.advance().location
            to_type = self.parse_type_name()
            self.expect_punct(")")
            # "(int){...}" compound literals are not supported; a cast of a
            # brace would be one, so reject early for clarity.
            operand = self.parse_cast()
            node = ast.Cast(to_type, operand, location)
            node.ctype = to_type
            return node
        return self.parse_unary()

    def parse_type_name(self):
        __, base = self.parse_declaration_specifiers()
        __, full_type, __ = self.parse_declarator(base, abstract=True)
        return full_type

    def parse_unary(self):
        token = self.peek()
        location = token.location
        if token.is_punct("++", "--"):
            op = self.advance().value
            operand = self.parse_unary()
            node = ast.Unary(op, operand, postfix=False, location=location)
            node.ctype = operand.ctype
            return node
        if token.is_punct("+", "-", "~", "!"):
            op = self.advance().value
            operand = self.parse_cast()
            node = ast.Unary(op, operand, location=location)
            node.ctype = ctypes.INT if op == "!" else operand.ctype
            return node
        if token.is_punct("*"):
            self.advance()
            operand = self.parse_cast()
            node = ast.Unary("*", operand, location=location)
            if operand.ctype is not None:
                resolved = operand.ctype.resolve()
                if isinstance(resolved, (ctypes.PointerType,)):
                    node.ctype = resolved.target
                elif isinstance(resolved, ctypes.ArrayType):
                    node.ctype = resolved.element
            return node
        if token.is_punct("&"):
            self.advance()
            operand = self.parse_cast()
            node = ast.Unary("&", operand, location=location)
            if operand.ctype is not None:
                node.ctype = ctypes.PointerType(operand.ctype)
            return node
        if token.is_keyword("sizeof"):
            self.advance()
            if self.peek().is_punct("(") and self.starts_type(1):
                self.advance()
                of_type = self.parse_type_name()
                self.expect_punct(")")
                node = ast.SizeofType(of_type, location)
            else:
                node = ast.SizeofExpr(self.parse_unary(), location)
            node.ctype = ctypes.UNSIGNED_LONG
            return node
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.is_punct("("):
                location = self.advance().location
                args = []
                if not self.peek().is_punct(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                node = ast.Call(expr, args, location)
                node.ctype = self._call_type(expr)
                expr = node
            elif token.is_punct("["):
                location = self.advance().location
                index = self.parse_expression()
                self.expect_punct("]")
                node = ast.Index(expr, index, location)
                if expr.ctype is not None:
                    resolved = expr.ctype.resolve()
                    if isinstance(resolved, ctypes.PointerType):
                        node.ctype = resolved.target
                    elif isinstance(resolved, ctypes.ArrayType):
                        node.ctype = resolved.element
                expr = node
            elif token.is_punct(".", "->"):
                arrow = self.advance().value == "->"
                name = self.expect_ident().value
                node = ast.Member(expr, name, arrow, token.location)
                node.ctype = self._member_type(expr, name, arrow)
                expr = node
            elif token.is_punct("++", "--"):
                op = self.advance().value
                node = ast.Unary(op, expr, postfix=True, location=token.location)
                node.ctype = expr.ctype
                expr = node
            else:
                return expr

    def _call_type(self, func):
        if func.ctype is not None:
            resolved = func.ctype.resolve()
            if isinstance(resolved, ctypes.FunctionType):
                return resolved.return_type
            if isinstance(resolved, ctypes.PointerType) and isinstance(
                resolved.target.resolve(), ctypes.FunctionType
            ):
                return resolved.target.resolve().return_type
        return None

    def _member_type(self, obj, name, arrow):
        if obj.ctype is None:
            return None
        resolved = obj.ctype.resolve()
        if arrow:
            if not isinstance(resolved, ctypes.PointerType):
                return None
            resolved = resolved.target.resolve()
        if isinstance(resolved, ctypes.RecordType) and resolved.fields:
            return resolved.field_type(name)
        return None

    def parse_primary(self):
        token = self.peek()
        location = token.location
        if token.is_punct("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if token.kind is TokenKind.INT_CONST:
            self.advance()
            return self._typed_int(token, location)
        if token.kind is TokenKind.FLOAT_CONST:
            self.advance()
            node = ast.FloatLit(float(token.value.rstrip("fFlL")), token.value, location)
            node.ctype = ctypes.DOUBLE
            return node
        if token.kind is TokenKind.CHAR_CONST:
            self.advance()
            node = ast.CharLit(parse_char_constant(token.value), token.value, location)
            node.ctype = ctypes.CHAR
            return node
        if token.kind is TokenKind.STRING:
            self.advance()
            value = parse_string_literal(token.value)
            spelling = token.value
            # Adjacent string literal concatenation.
            while self.peek().kind is TokenKind.STRING:
                extra = self.advance()
                value += parse_string_literal(extra.value)
                spelling += " " + extra.value
            node = ast.StringLit(value, spelling, location)
            node.ctype = ctypes.CHAR_PTR
            return node
        if token.kind is TokenKind.IDENT:
            self.advance()
            name = token.value
            if name in self.hole_types:
                return ast.Hole(name, self.hole_types[name], location)
            if name in self.enum_constants:
                node = ast.Ident(name, location)
                node.ctype = ctypes.INT
                return node
            node = ast.Ident(name, location)
            node.ctype = self.scope.lookup(name)
            if node.ctype is not None and isinstance(
                node.ctype.resolve(), ctypes.ArrayType
            ):
                pass  # arrays keep their type; decay happens contextually
            return node
        self.error("expected expression")

    def _typed_int(self, token, location):
        node = ast.IntLit(parse_int_constant(token.value), token.value, location)
        spelling = token.value.lower()
        if "u" in spelling and "ll" in spelling:
            node.ctype = ctypes.BasicType("unsigned long long")
        elif "u" in spelling and "l" in spelling:
            node.ctype = ctypes.UNSIGNED_LONG
        elif "u" in spelling:
            node.ctype = ctypes.UNSIGNED_INT
        elif "ll" in spelling:
            node.ctype = ctypes.BasicType("long long")
        elif "l" in spelling and not spelling.startswith("0x"):
            node.ctype = ctypes.LONG
        else:
            node.ctype = ctypes.INT
        return node


def _canonical_basic_type(words, parser):
    """Canonicalize a multiset of basic type specifier words."""
    counts = {}
    for word in words:
        counts[word] = counts.get(word, 0) + 1

    if counts.get("void"):
        return ctypes.VOID
    if counts.get("_Bool"):
        return ctypes.BOOL
    if counts.get("float"):
        return ctypes.FLOAT
    if counts.get("double"):
        if counts.get("long"):
            return ctypes.BasicType("long double")
        return ctypes.DOUBLE

    unsigned = bool(counts.get("unsigned"))
    signed = bool(counts.get("signed"))
    if counts.get("char"):
        if unsigned:
            return ctypes.BasicType("unsigned char")
        if signed:
            return ctypes.BasicType("signed char")
        return ctypes.CHAR
    if counts.get("short"):
        return ctypes.BasicType("unsigned short" if unsigned else "short")
    longs = counts.get("long", 0)
    if longs >= 2:
        return ctypes.BasicType("unsigned long long" if unsigned else "long long")
    if longs == 1:
        return ctypes.UNSIGNED_LONG if unsigned else ctypes.LONG
    return ctypes.UNSIGNED_INT if unsigned else ctypes.INT


def _fold_constant(expr, parser):
    """Best-effort constant folding for enum values and array sizes."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.CharLit):
        return expr.value
    if isinstance(expr, ast.Ident) and expr.name in parser.enum_constants:
        return parser.enum_constants[expr.name]
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _fold_constant(expr.operand, parser)
        return -inner if inner is not None else None
    if isinstance(expr, ast.Binary):
        left = _fold_constant(expr.left, parser)
        right = _fold_constant(expr.right, parser)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else None,
                "%": lambda: left % right if right else None,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "|": lambda: left | right,
                "&": lambda: left & right,
                "^": lambda: left ^ right,
            }[expr.op]()
        except KeyError:
            return None
    return None


def _append_array(base, size):
    """Append an array dimension *inside* existing array dimensions so that
    ``int a[2][3]`` parses as array-of-arrays in the right order."""
    if isinstance(base, ctypes.ArrayType):
        return ctypes.ArrayType(_append_array(base.element, size), base.size)
    return ctypes.ArrayType(base, size)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def parse(text, filename="<string>", typedefs=None):
    """Parse a full translation unit."""
    return Parser(text, filename, typedefs=typedefs).parse_translation_unit()


def parse_expression(text, hole_types=None, typedefs=None, scope=None):
    """Parse a single expression (used by the pattern compiler and tests)."""
    parser = Parser(text, typedefs=typedefs, hole_types=hole_types)
    if scope:
        for name, ctype in scope.items():
            parser.scope.define(name, ctype)
    expr = parser.parse_expression()
    if not parser.at_eof():
        parser.error("trailing tokens after expression")
    return expr


def parse_statement(text, hole_types=None, typedefs=None):
    """Parse a single statement (used by the pattern compiler and tests)."""
    parser = Parser(text, typedefs=typedefs, hole_types=hole_types)
    stmt = parser.parse_statement()
    if not parser.at_eof():
        parser.error("trailing tokens after statement")
    return stmt
