"""Interrupt-state checker: a *global-state* machine.

Global state values "capture a program-wide property (e.g., 'interrupts
are disabled')" (§2.1).  This checker tracks cli()/sti() (or the
save/restore flavours) and warns on double disables, stray enables, and
paths that end with interrupts off.
"""

from repro.metal import Extension


def interrupt_checker(disable_fn="cli", enable_fn="sti"):
    ext = Extension("interrupt_checker")
    ext.default_severity = "ERROR"

    ext.transition("enabled", "{ %s() }" % disable_fn, to="disabled")
    ext.transition(
        "enabled",
        "{ %s() }" % enable_fn,
        action=lambda ctx: ctx.err(
            "enabling interrupts that are already enabled (stray %s)" % enable_fn,
            rule_id="intr-pairing",
        ),
    )
    ext.transition("disabled", "{ %s() }" % enable_fn, to="enabled",
                   action=lambda ctx: ctx.count_example("intr-pairing"))
    ext.transition(
        "disabled",
        "{ %s() }" % disable_fn,
        action=lambda ctx: ctx.err(
            "disabling interrupts twice (nested %s)" % disable_fn,
            rule_id="intr-pairing",
        ),
    )
    ext.transition(
        "disabled",
        "$end_of_path$",
        to="enabled",
        action=lambda ctx: ctx.err(
            "path ends with interrupts disabled!", rule_id="intr-pairing",
        ),
    )
    return ext
