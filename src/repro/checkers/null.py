"""Null-pointer checker: dereferencing a pointer on a path where it is
known (or not yet known) to be NULL.

Demonstrates path-specific transitions on *checks* rather than on calls:
``if (p)`` / ``if (p == 0)`` / ``if (!p)`` all branch the instance into a
null state and a non-null state.  Synonyms make the classic

    p = q = kmalloc(...);
    if (!p) return 0;
    *q;            /* safe: q = p = not null */

sequence check out (§8).
"""

from repro.metal import ANY_POINTER, Extension
from repro.metal.patterns import AndPattern, Callout


def null_checker(alloc_functions=("kmalloc", "malloc", "kmalloc_node")):
    ext = Extension("null_checker")
    ext.state_var("v", ANY_POINTER)
    ext.default_severity = "ERROR"

    for fn in alloc_functions:
        ext.transition(
            "start", "{ v = %s }" % _args_pattern(ext, fn), to="v.unknown",
            action=_remember(fn),
        )

    # A branch on the pointer splits the state: true path = non-null.
    branch_on_v = AndPattern(
        ext._compile_pattern_text("{ v }"),
        Callout(_is_branch, "mc_is_branch(mc_stmt)"),
    )
    ext.transition("v.unknown", branch_on_v, true_to="v.notnull", false_to="v.null")
    ext.transition("v.unknown", "{ v == 0 }", true_to="v.null", false_to="v.notnull")
    ext.transition("v.unknown", "{ v != 0 }", true_to="v.notnull", false_to="v.null")

    deref = Callout(_derefs_v, "mc_is_deref_of(mc_stmt, v)")
    ext.transition(
        "v.unknown",
        deref,
        to="v.notnull",
        action=lambda ctx: ctx.err(
            "dereferencing %s which may be NULL (unchecked %s)",
            ctx.identifier("v"),
            ctx.get_data("alloc", "allocation"),
            rule_id=ctx.get_data("alloc"),
        ),
    )
    ext.transition(
        "v.null",
        deref,
        to="v.stop",
        action=lambda ctx: ctx.err(
            "dereferencing %s which IS NULL on this path", ctx.identifier("v"),
            rule_id=ctx.get_data("alloc"),
        ),
    )
    # Successful outcomes count as rule examples for statistical ranking.
    ext.transition(
        "v.notnull",
        "$end_of_path$",
        to="v.stop",
        action=lambda ctx: ctx.count_example(
            ctx.get_data("alloc"), ctx.instance.origin_location
        ),
    )
    return ext


def _args_pattern(ext, fn):
    from repro.metal import ANY_ARGUMENTS

    if "args" not in ext.extra_holes():
        ext.decl("args", ANY_ARGUMENTS)
    return "%s(args)" % fn


def _remember(fn):
    def action(ctx):
        ctx.set_data("alloc", fn)

    return action


def _is_branch(context):
    engine = context.engine
    return engine is not None and engine.point_is_branch_condition(context.point)


def _derefs_v(context):
    from repro.metal.callouts import mc_is_deref_of

    return mc_is_deref_of(context.point, context.bindings.get("v"))
