"""Parallel scheduling for both driver passes (§6 at scale).

Pass 1 is embarrassingly parallel: each file is preprocessed, parsed, and
emitted in isolation, so :func:`compile_files_into` fans the per-file work
out over a ``ProcessPoolExecutor`` and registers results in input order --
serial and parallel runs build byte-identical projects.

Pass 2 parallelism rides on a structural fact: the DFS never follows a
call edge out of a weakly-connected call-graph component, so components
can be analyzed in separate worker processes with the full engine
(summaries, false-path pruning, composition all intact).  The parent
merges worker logs back into the *serial* report order using the per-root
spans the engine records (:attr:`repro.engine.analysis.Analysis.root_spans`),
so parallel runs produce the same reports in the same order.

Both passes degrade instead of dying (docs/DRIVER.md, "Degradation
semantics"):

- A worker that crashes, is killed, or exceeds ``worker_timeout`` is
  retried once in a fresh pool; if that also fails, its work order runs
  in-process.  Every recovery is counted and recorded in the driver
  stats' degradation list.
- A corrupt cache entry (checksum mismatch, version skew, unreadable
  pickle) is evicted and its file re-parsed rather than poisoning the
  run.
- Extensions hold Python callables (checker actions are lambdas), which
  do not pickle; workers therefore rebuild them from an
  ``extension_factory`` -- any picklable zero-argument callable -- or
  from a pickle of the extension list when that happens to work.  When
  neither does, the run falls back to serial, and the reason (the actual
  pickling error, not a silent swallow) lands in the stats.
"""

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout

from repro import faults
from repro.driver import cache as astcache
from repro.driver import store as storemod


def _read_source(path):
    with open(path) as handle:
        return handle.read()


# -- fault-tolerant pool scheduling -------------------------------------------


def _pickle_error(obj):
    """The exception pickling ``obj`` raises, or None when it ships."""
    try:
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as err:
        return err
    return None


def _shutdown_pool(pool, kill=False):
    """Shut a pool down; ``kill`` terminates workers first (the only way
    to reclaim a worker stuck in a hung task)."""
    if kill:
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except OSError:
                pass
    pool.shutdown(wait=not kill, cancel_futures=True)


def run_tasks_with_recovery(tasks, worker, jobs, stats, label,
                            timeout=None, keep_going=False):
    """Run work orders over a process pool with crash/hang recovery.

    Scheduling is one batch wave plus containment: the batch runs
    everything at ``jobs`` width; a task whose worker died (or timed out
    after ``timeout`` seconds) is retried once in its own fresh
    single-worker pool, so a deterministic crasher cannot take anything
    else down with it; a task that fails both times runs in-process.
    One worker crash can still break the whole batch pool
    (``BrokenProcessPool`` hits every in-flight future), so neighbouring
    tasks may ride through the retry path as collateral -- they recover
    in their isolated pools, and each failure's actual exception is
    recorded in the stats degradation list.

    Returns ``{task.index: result}``.  An in-process failure propagates,
    unless ``keep_going`` is set, in which case the task's result is
    None and a "unit" degradation is recorded.
    """
    results = {}
    notes = {}
    batch_failures = {}
    timed_out = False
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
    try:
        futures = [(task, pool.submit(worker, task)) for task in tasks]
        for task, future in futures:
            try:
                results[task.index] = future.result(timeout=timeout)
            except Exception as err:
                timed_out = timed_out or isinstance(err, FutureTimeout)
                batch_failures[task.index] = err
    finally:
        _shutdown_pool(pool, kill=timed_out)

    pending = []
    for task in tasks:
        err = batch_failures.get(task.index)
        if err is None:
            continue
        stats.add("%s_worker_failures" % label)
        stats.add("%s_worker_retries" % label)
        notes[task.index] = "%s task %s worker failed: %r" % (
            label, task.index, err,
        )
        retry_pool = ProcessPoolExecutor(max_workers=1)
        retry_timed_out = False
        try:
            results[task.index] = retry_pool.submit(worker, task).result(
                timeout=timeout
            )
            notes[task.index] += "; recovered on retry"
        except Exception as retry_err:
            retry_timed_out = isinstance(retry_err, FutureTimeout)
            stats.add("%s_worker_failures" % label)
            notes[task.index] += "; retry failed: %r" % retry_err
            pending.append(task)
        finally:
            _shutdown_pool(retry_pool, kill=retry_timed_out)

    for task in pending:
        stats.add("%s_inprocess_fallbacks" % label)
        try:
            results[task.index] = worker(task)
            notes[task.index] += "; recovered in-process"
        except Exception as err:
            if not keep_going:
                stats.record_degradation("worker", notes.pop(task.index))
                raise
            notes[task.index] += "; in-process run failed: %r" % err
            stats.add("%s_tasks_skipped" % label)
            stats.record_degradation(
                "unit", "%s task %s skipped: %r" % (label, task.index, err)
            )
            results[task.index] = None
    for index in sorted(notes):
        stats.record_degradation("worker", notes[index])
    return results


# -- pass 1 -------------------------------------------------------------------


class Pass1Task:
    """One file's pass-1 work order, shipped to a worker.

    ``store_url`` (a string) travels to pooled workers, which build (and
    memoize) their own backend connection; ``store`` carries a live
    backend object only for in-process execution -- it must stay None
    when the task crosses a process boundary (sockets do not pickle).
    """

    __slots__ = ("index", "path", "include_paths", "defines", "cache_dir",
                 "emit_dir", "file_reader", "store_url", "store")

    def __init__(self, index, path, include_paths, defines, cache_dir,
                 emit_dir, file_reader, store_url=None, store=None):
        self.index = index
        self.path = path
        self.include_paths = include_paths
        self.defines = defines
        self.cache_dir = cache_dir
        self.emit_dir = emit_dir
        self.file_reader = file_reader
        self.store_url = store_url
        self.store = store

    def __getstate__(self):
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["store"] = None  # live backends never cross processes
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


class Pass1Result:
    """What comes back: a cache hit (local payload path and/or the frame
    bytes fetched from a remote store) or a freshly parsed unit (shipped
    back through the pool's own pickling)."""

    __slots__ = ("index", "filename", "status", "key", "cache_path", "unit",
                 "source_bytes", "emitted_bytes", "timings", "pid", "data")

    def __init__(self, index, filename, status, key, cache_path, unit,
                 source_bytes, emitted_bytes, timings, pid, data=None):
        self.index = index
        self.filename = filename
        self.status = status  # "hit" | "parsed"
        self.key = key
        self.cache_path = cache_path
        self.unit = unit
        self.source_bytes = source_bytes
        self.emitted_bytes = emitted_bytes
        self.timings = timings
        self.pid = pid
        self.data = data


#: Per-process backend memo: a pooled worker keeps one live store
#: connection per (cache_dir, store_url) across all its tasks.
_WORKER_STORES = {}


def _worker_store(cache_dir, store_url):
    memo_key = (cache_dir, store_url)
    backend = _WORKER_STORES.get(memo_key)
    if backend is None:
        backend = storemod.open_store(
            cache_dir=cache_dir, store_url=store_url
        )
        _WORKER_STORES[memo_key] = backend
    return backend


def pass1_worker(task):
    """Preprocess -> cache probe -> parse -> emit for one file.

    Runs in a worker process (or inline for ``jobs=1``).  The cache probe
    happens *after* preprocessing because the cache key hashes the
    preprocessed token stream (header edits must invalidate dependents);
    a hit still skips the expensive part, the parse.
    """
    from repro.cfront.preproc import Preprocessor

    faults.at_worker_entry("pass1.worker", key=task.path)
    timings = {}
    read = task.file_reader or _read_source
    start = time.perf_counter()
    text = read(task.path)
    pp = Preprocessor(task.include_paths, task.defines, task.file_reader)
    tokens = pp.preprocess_text(text, task.path)
    timings["preprocess"] = time.perf_counter() - start

    key = None
    store = None
    if task.cache_dir or getattr(task, "store_url", None):
        backend = getattr(task, "store", None) or _worker_store(
            task.cache_dir, getattr(task, "store_url", None)
        )
        store = astcache.AstCache(backend=backend)
        key = astcache.cache_key(
            task.path, tokens, task.include_paths, task.defines
        )
        data, hit_path = store.fetch(key)
        if data is not None or hit_path is not None:
            if hit_path is not None:
                try:
                    emitted = os.path.getsize(hit_path)
                except OSError:
                    emitted = len(data or b"")
            else:
                emitted = len(data)
            return Pass1Result(
                index=task.index, filename=task.path, status="hit", key=key,
                cache_path=hit_path, unit=None, source_bytes=None,
                emitted_bytes=emitted, timings=timings,
                pid=os.getpid(), data=data,
            )

    from repro.cfront.parser import Parser

    faults.check("pass1.parse", key=task.path)
    start = time.perf_counter()
    parser = Parser(None, task.path, tokens=tokens)
    unit = parser.parse_translation_unit()
    unit.filename = task.path
    timings["parse"] = time.perf_counter() - start

    start = time.perf_counter()
    source_bytes = len(text.encode())
    payload = astcache.pack_unit(unit, source_bytes)
    if store is not None:
        store.store(key, payload)
    if task.emit_dir:
        os.makedirs(task.emit_dir, exist_ok=True)
        out = os.path.join(
            task.emit_dir, os.path.basename(task.path) + ".ast"
        )
        with open(out, "wb") as handle:
            handle.write(payload)
    timings["emit"] = time.perf_counter() - start

    return Pass1Result(
        index=task.index, filename=task.path, status="parsed", key=key,
        cache_path=None, unit=unit, source_bytes=source_bytes,
        emitted_bytes=len(payload), timings=timings, pid=os.getpid(),
    )


def compile_files_into(project, paths, jobs=1, worker_timeout=None):
    """Run pass 1 for ``paths`` into ``project``; returns CompiledUnits."""
    paths = list(paths)
    tasks = [
        Pass1Task(
            index, path, project.include_paths, project.defines,
            project.cache_dir, project.emit_dir, project.file_reader,
            store_url=getattr(project, "store_url", None),
        )
        for index, path in enumerate(paths)
    ]
    stats = project.stats
    keep_going = getattr(project, "keep_going", False)
    use_pool = bool(jobs and jobs > 1 and len(tasks) > 1)
    if use_pool:
        err = _pickle_error(tasks[0])
        if err is not None:
            stats.add("pass1_serial_fallback")
            stats.record_degradation(
                "pickle",
                "pass-1 tasks do not pickle (%r); running serially" % err,
            )
            use_pool = False
    if not use_pool:
        # In-process execution shares the project's live backend (one
        # socket, one overlay) instead of rebuilding one per task.
        backend = getattr(project, "store_backend", None)
        if backend is not None:
            for task in tasks:
                task.store = backend
    start = time.perf_counter()
    if use_pool:
        results = run_tasks_with_recovery(
            tasks, pass1_worker, jobs, stats, "pass1",
            timeout=worker_timeout, keep_going=keep_going,
        )
    else:
        results = {}
        for task in tasks:
            try:
                results[task.index] = pass1_worker(task)
            except Exception as err:
                if not keep_going:
                    raise
                stats.add("pass1_tasks_skipped")
                stats.record_degradation(
                    "unit",
                    "%s failed pass 1 (%r); unit skipped" % (task.path, err),
                )
                results[task.index] = None
    stats.add_time("pass1_wall", time.perf_counter() - start)

    backend = getattr(project, "store_backend", None)
    if backend is not None and getattr(backend, "prefers_batch", False):
        # Pooled workers touched their own connections per task; fold
        # the hit keys into one batched remote touch so store GC sees
        # warm use without a round trip per file.
        hit_keys = sorted(
            result.key for result in results.values()
            if result is not None and result.status == "hit" and result.key
        )
        if hit_keys:
            try:
                backend.touch_many("ast", hit_keys)
            except storemod.StoreError:
                pass

    compiled = []
    for task in tasks:
        result = results.get(task.index)
        if result is None:
            continue
        compiled.append(_absorb(project, task, result))
    return compiled


def _absorb(project, task, result):
    """Register one worker result with the parent project (input order).

    Cache hits are verified here (checksum + parser version); a corrupt
    entry is evicted, recorded as a degradation, and its file re-parsed
    in-process -- a poisoned cache can slow a run down but never crash it
    or alter its reports.
    """
    from repro.driver.project import CompiledUnit

    stats = project.stats
    stats.count_worker_task(result.pid)
    stats.merge_timings(result.timings)
    if result.status == "hit":
        try:
            if result.cache_path is not None:
                with open(result.cache_path, "rb") as handle:
                    data = handle.read()
            elif result.data is not None:
                data = result.data
            else:
                raise astcache.CacheCorruption("hit carried no payload")
            unit, source_bytes = astcache.unpack(data)
        except (OSError, astcache.CacheCorruption) as err:
            stats.add("cache_evictions")
            stats.record_degradation(
                "cache",
                "%s: corrupt cache entry (%s); evicted and re-parsed"
                % (result.filename, err),
            )
            backend = getattr(project, "store_backend", None)
            if backend is not None:
                astcache.AstCache(backend=backend).evict(result.key)
            elif task.cache_dir:
                astcache.AstCache(task.cache_dir).evict(result.key)
            # The entry is gone, so this re-run parses (and re-stores a
            # good entry): recursion depth is bounded at one.  The
            # re-run happens in-process, so hand it the live backend.
            prior = task.store
            task.store = backend or prior
            try:
                return _absorb(project, task, pass1_worker(task))
            finally:
                task.store = prior
        stats.add("cache_hits")
        if result.cache_path is not None:
            astcache.touch_entry(result.cache_path)
        compiled = CompiledUnit(
            result.filename, unit, source_bytes, len(data), from_cache=True
        )
    else:
        stats.add("parses")
        if project.cache_dir:
            stats.add("cache_misses")
        compiled = CompiledUnit(
            result.filename, result.unit, result.source_bytes,
            result.emitted_bytes,
        )
    project.compiled.append(compiled)
    project._register(compiled.unit, compiled.filename)
    if result.key:
        project.ast_keys_used.append(result.key)
    return compiled


# -- pass 2 -------------------------------------------------------------------


class ExtensionSpec:
    """A worker-rebuildable description of the extension list."""

    __slots__ = ("factory", "pickled")

    def __init__(self, factory=None, pickled=None):
        self.factory = factory
        self.pickled = pickled

    @classmethod
    def capture(cls, extensions, factory=None, stats=None):
        """Build a spec, or return None when nothing ships to workers
        (recording the actual pickling failure in ``stats``)."""
        if factory is not None:
            err = _pickle_error(factory)
            if err is None:
                return cls(factory=factory)
            if stats is not None:
                stats.record_degradation(
                    "pickle",
                    "extension_factory does not pickle (%r); "
                    "running pass 2 serially" % err,
                )
            return None
        try:
            data = pickle.dumps(list(extensions), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as err:
            if stats is not None:
                stats.record_degradation(
                    "pickle",
                    "extensions do not pickle (%r) and no factory was "
                    "given; running pass 2 serially" % err,
                )
            return None
        return cls(pickled=data)

    def build(self):
        if self.factory is not None:
            extensions = self.factory()
            if not isinstance(extensions, (list, tuple)):
                extensions = [extensions]
            return list(extensions)
        return pickle.loads(self.pickled)


class Pass2Task:
    """One call-graph component's analysis work order.

    ``roots`` is None for a full run, or the sorted subset of this
    component's roots the incremental scheduler wants re-analyzed.
    """

    __slots__ = ("index", "decls", "static_vars", "options", "spec", "roots")

    def __init__(self, index, decls, static_vars, options, spec, roots=None):
        self.index = index
        self.decls = decls
        self.static_vars = static_vars
        self.options = options
        self.spec = spec
        self.roots = roots


class Pass2Result:
    """A worker's mergeable analysis outcome."""

    __slots__ = ("index", "reports", "spans", "examples", "counterexamples",
                 "stats", "timers", "truncated", "degraded", "artifacts",
                 "coupled", "pid")

    def __init__(self, index, reports, spans, examples, counterexamples,
                 stats, timers, truncated, degraded, artifacts, coupled, pid):
        self.index = index
        self.reports = reports
        self.spans = spans
        self.examples = examples
        self.counterexamples = counterexamples
        self.stats = stats
        self.timers = timers
        self.truncated = truncated
        self.degraded = degraded
        self.artifacts = artifacts
        self.coupled = coupled
        self.pid = pid


def pass2_worker(task):
    """Run the full Analysis DFS over one call-graph component."""
    from repro.cfg.callgraph import CallGraph
    from repro.driver.stats import DriverStats
    from repro.engine.analysis import Analysis

    faults.at_worker_entry("pass2.worker", key=task.index)
    faults.check("pass2.analysis", key=task.index)
    graph = CallGraph()
    for decl in task.decls:
        graph.add_function(decl)
    graph.link()
    stats = DriverStats()
    analysis = Analysis(
        callgraph=graph,
        options=task.options,
        static_vars=task.static_vars,
        phase_timer=stats.phase,
    )
    result = analysis.run(task.spec.build(), roots=task.roots)
    return Pass2Result(
        index=task.index,
        reports=list(result.log.reports),
        spans=list(analysis.root_spans),
        examples=result.log.examples,
        counterexamples=result.log.counterexamples,
        stats=result.stats,
        timers=stats.timers,
        truncated=result.truncated,
        degraded=list(result.degraded),
        artifacts=list(result.root_artifacts),
        coupled=result.coupled,
        pid=os.getpid(),
    )


def run_parallel(project, extensions, options=None, jobs=1,
                 extension_factory=None, worker_timeout=None, roots=None):
    """Pass-2 parallel scheduling over call-graph components.

    Deterministic by construction: the parent walks extensions in order
    and the *global* sorted root list (exactly the serial iteration
    order), appending each root's report span from whichever worker
    analyzed its component.  Falls back to a serial run when there is
    nothing to parallelize or the extensions cannot be shipped; a
    crashed, killed, or hung worker is retried once and then its
    component is analyzed in-process (see run_tasks_with_recovery).

    ``roots`` restricts the run to a subset of roots (incremental
    dirty-cone scheduling): components containing none of them are not
    scheduled at all.
    """
    from repro.engine.analysis import AnalysisOptions

    if not isinstance(extensions, (list, tuple)):
        extensions = [extensions]
    stats = project.stats
    graph = project.callgraph
    components = graph.components()
    if roots is not None:
        wanted = set(roots)
        components = [
            component for component in components
            if wanted.intersection(component)
        ]
    spec = ExtensionSpec.capture(extensions, extension_factory, stats=stats)
    if spec is None:
        stats.add("pass2_serial_fallback")
    if spec is None or jobs <= 1 or len(components) <= 1 or not extensions:
        return project.analysis(options).run(extensions, roots=roots)

    options = options or AnalysisOptions()
    static_vars = dict(project.static_vars)
    tasks = [
        Pass2Task(
            index,
            [graph.functions[name] for name in component],
            static_vars,
            options,
            spec,
            roots=None if roots is None
            else sorted(wanted.intersection(component)),
        )
        for index, component in enumerate(components)
    ]
    stats.add("pass2_components", len(tasks))
    start = time.perf_counter()
    results_map = run_tasks_with_recovery(
        tasks, pass2_worker, jobs, stats, "pass2", timeout=worker_timeout
    )
    stats.add_time("pass2_wall", time.perf_counter() - start)
    results = [results_map[index] for index in sorted(results_map)]

    return merge_results(project, extensions, results)


def merge_results(project, extensions, results):
    """Deterministically merge worker outcomes into one AnalysisResult."""
    from repro.engine.analysis import AnalysisResult
    from repro.engine.errors import ErrorLog

    stats = project.stats
    span_owner = {}
    for result in results:
        stats.count_worker_task(result.pid)
        stats.merge_timings(result.timers)
        for ext_index, root, begin, end in result.spans:
            span_owner[(ext_index, root)] = (result, begin, end)

    log = ErrorLog()
    roots = project.callgraph.roots()
    for ext_index in range(len(extensions)):
        for root in roots:
            owned = span_owner.get((ext_index, root))
            if owned is None:
                continue
            result, begin, end = owned
            for report in result.reports[begin:end]:
                log.add(report)
    for result in results:
        for rule_id, sites in result.examples.items():
            log.examples.setdefault(rule_id, set()).update(sites)
        for rule_id, sites in result.counterexamples.items():
            log.counterexamples.setdefault(rule_id, set()).update(sites)

    merged_stats = {}
    for result in results:
        for name, value in result.stats.items():
            merged_stats[name] = merged_stats.get(name, 0) + value
    merged_stats["errors"] = len(log)
    truncated = any(result.truncated for result in results)
    degraded = []
    for result in results:
        degraded.extend(result.degraded)
    # Per-root artifacts are independent by construction (root-scoped
    # dedup), so concatenating worker captures in serial (extension,
    # root) order reproduces exactly what a serial capture run records.
    artifacts = sorted(
        (artifact for result in results for artifact in result.artifacts),
        key=lambda artifact: (artifact.ext_index, artifact.root),
    )
    coupled = any(result.coupled for result in results)
    # Block/suffix summary tables are per-worker (keyed on worker-local
    # block objects) and are not reassembled across processes; use a
    # serial run when Figure-5-style summary dumps are needed.
    return AnalysisResult(log, {}, merged_stats, truncated, degraded=degraded,
                          root_artifacts=artifacts, coupled=coupled)
