"""Metal meta types (Table 1).

A hole variable must be typed.  A hole with a concrete C type matches any
expression of that type; the *meta types* broaden holes to a class of
related types:

====================  =======================================
Hole type             Matches
====================  =======================================
any C type            any expression of that type
``any_expr``          any legal expression
``any_scalar``        any scalar value (int, float, etc.)
``any_pointer``       any pointer of any type
``any_arguments``     any argument list
``any_fn_call``       any function call
====================  =======================================

Typing is best-effort: the front end cannot always compute an expression's
type (e.g. calls to undeclared functions).  A hole accepts an expression of
*unknown* type; this is one of the deliberate unsound approximations (§7) --
the system prefers matching too much over missing actions.
"""

from repro.cfront import astnodes as ast


class MetaType:
    """A class of types a hole variable may assume."""

    def __init__(self, name):
        self.name = name

    def matches(self, node):
        """Does ``node`` (an AST node) fit in this hole?"""
        raise NotImplementedError

    def __repr__(self):
        return "MetaType(%r)" % self.name

    def __str__(self):
        return self.name


class _AnyExpr(MetaType):
    def matches(self, node):
        return isinstance(node, ast.Expr)


class _AnyScalar(MetaType):
    def matches(self, node):
        if not isinstance(node, ast.Expr):
            return False
        if node.ctype is None:
            return True  # unknown type: accept (see module docstring)
        return node.ctype.is_scalar()


class _AnyPointer(MetaType):
    def matches(self, node):
        if not isinstance(node, ast.Expr):
            return False
        if node.ctype is None:
            return True
        resolved = node.ctype.resolve()
        # Arrays decay to pointers in expression contexts.
        from repro.cfront import types as ctypes

        if isinstance(resolved, ctypes.ArrayType):
            return True
        return resolved.is_pointer()


class _AnyArguments(MetaType):
    """Matches an entire argument list; only legal inside a call pattern."""

    def matches(self, node):
        return isinstance(node, list)


class _AnyFnCall(MetaType):
    """Matches a function call, or (in callee position) the callee."""

    def matches(self, node):
        return isinstance(node, ast.Expr)


class ConcreteType(MetaType):
    """A hole restricted to one concrete C type."""

    def __init__(self, ctype):
        super().__init__(str(ctype))
        self.ctype = ctype

    def matches(self, node):
        if not isinstance(node, ast.Expr):
            return False
        if node.ctype is None:
            return True
        return node.ctype == self.ctype


ANY_EXPR = _AnyExpr("any_expr")
ANY_SCALAR = _AnyScalar("any_scalar")
ANY_POINTER = _AnyPointer("any_pointer")
ANY_ARGUMENTS = _AnyArguments("any_arguments")
ANY_FN_CALL = _AnyFnCall("any_fn_call")

_BY_NAME = {
    "any_expr": ANY_EXPR,
    "any_scalar": ANY_SCALAR,
    "any_pointer": ANY_POINTER,
    "any_arguments": ANY_ARGUMENTS,
    "any_fn_call": ANY_FN_CALL,
}


def metatype_by_name(name):
    """Look up a meta type by its (underscored or spaced) name."""
    return _BY_NAME.get(name.replace(" ", "_"))
