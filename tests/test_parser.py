"""Unit tests for the C parser."""

import pytest

from repro.cfront import astnodes as ast
from repro.cfront import types as ctypes
from repro.cfront.parser import parse, parse_expression, parse_statement
from repro.cfront.source import ParseError


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_associativity(self):
        expr = parse_expression("1 - 2 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.Binary)
        assert expr.right.value == 3

    def test_assignment_right_assoc(self):
        expr = parse_expression("a = b = 1")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assign(self):
        expr = parse_expression("a += 2")
        assert isinstance(expr, ast.Assign) and expr.op == "+="

    def test_ternary(self):
        expr = parse_expression("a ? b : c ? d : e")
        assert isinstance(expr, ast.Conditional)
        assert isinstance(expr.otherwise, ast.Conditional)

    def test_unary_chain(self):
        expr = parse_expression("!*p")
        assert expr.op == "!"
        assert expr.operand.op == "*"

    def test_postfix_vs_prefix(self):
        post = parse_expression("p++")
        pre = parse_expression("++p")
        assert post.postfix and not pre.postfix

    def test_call_args(self):
        expr = parse_expression("f(a, b + 1, g(c))")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3
        assert expr.callee_name() == "f"

    def test_member_chain(self):
        expr = parse_expression("a->b.c")
        assert isinstance(expr, ast.Member)
        assert expr.name == "c" and not expr.arrow
        assert expr.obj.name == "b" and expr.obj.arrow

    def test_index(self):
        expr = parse_expression("a[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.array, ast.Index)

    def test_comma(self):
        expr = parse_expression("a, b, c")
        assert isinstance(expr, ast.Comma)

    def test_comma_not_in_args(self):
        expr = parse_expression("f((a, b), c)")
        assert len(expr.args) == 2
        assert isinstance(expr.args[0], ast.Comma)

    def test_sizeof_expr(self):
        expr = parse_expression("sizeof x")
        assert isinstance(expr, ast.SizeofExpr)

    def test_sizeof_type(self):
        expr = parse_expression("sizeof(int *)")
        assert isinstance(expr, ast.SizeofType)
        assert expr.of_type.is_pointer()

    def test_cast(self):
        expr = parse_expression("(char *)p")
        assert isinstance(expr, ast.Cast)
        assert expr.to_type == ctypes.PointerType(ctypes.CHAR)

    def test_paren_not_cast(self):
        expr = parse_expression("(a)(b)")
        assert isinstance(expr, ast.Call)

    def test_string_concatenation(self):
        expr = parse_expression('"ab" "cd"')
        assert expr.value == "abcd"

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a b")


class TestStatements:
    def test_if_else_binding(self):
        stmt = parse_statement("if (a) if (b) x = 1; else x = 2;")
        assert stmt.otherwise is None
        assert stmt.then.otherwise is not None

    def test_while(self):
        stmt = parse_statement("while (x) x--;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        stmt = parse_statement("do x--; while (x);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_with_decl(self):
        stmt = parse_statement("for (int i = 0; i < 10; i++) f(i);")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Compound)

    def test_for_empty_clauses(self):
        stmt = parse_statement("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_switch(self):
        stmt = parse_statement(
            "switch (x) { case 1: f(); break; default: g(); }"
        )
        assert isinstance(stmt, ast.Switch)

    def test_goto_and_label(self):
        stmt = parse_statement("{ goto out; out: return; }")
        kinds = [type(i).__name__ for i in stmt.items]
        assert kinds == ["Goto", "Label"]

    def test_return_value(self):
        stmt = parse_statement("return x + 1;")
        assert isinstance(stmt.expr, ast.Binary)

    def test_empty_statement(self):
        assert isinstance(parse_statement(";"), ast.EmptyStmt)


class TestDeclarations:
    def test_multi_declarator(self):
        unit = parse("int a, *b, c[4];")
        names = [(d.name, type(d.ctype).__name__) for d in unit.decls]
        assert names == [
            ("a", "BasicType"),
            ("b", "PointerType"),
            ("c", "ArrayType"),
        ]

    def test_function_pointer(self):
        unit = parse("int (*handler)(int, char *);")
        decl = unit.decls[0]
        resolved = decl.ctype
        assert isinstance(resolved, ctypes.PointerType)
        assert resolved.target.is_function()

    def test_two_dimensional_array_order(self):
        unit = parse("int a[2][3];")
        arr = unit.decls[0].ctype
        assert isinstance(arr, ctypes.ArrayType)
        assert isinstance(arr.element, ctypes.ArrayType)
        assert arr.size.value == 2
        assert arr.element.size.value == 3

    def test_typedef(self):
        unit = parse("typedef unsigned long size_t; size_t n;")
        assert isinstance(unit.decls[0], ast.TypedefDecl)
        var = unit.decls[1]
        assert var.ctype.resolve() == ctypes.UNSIGNED_LONG

    def test_typedef_pointer(self):
        unit = parse("typedef struct foo *foo_t; foo_t p;")
        assert unit.decls[1].ctype.is_pointer()

    def test_struct_definition(self):
        unit = parse("struct s { int a; char *b; };")
        record = unit.decls[0].record_type
        assert record.field_type("a") == ctypes.INT
        assert record.field_type("b") == ctypes.PointerType(ctypes.CHAR)

    def test_struct_self_reference(self):
        unit = parse("struct node { int v; struct node *next; };")
        record = unit.decls[0].record_type
        next_type = record.field_type("next")
        assert isinstance(next_type, ctypes.PointerType)
        assert next_type.target is record

    def test_union(self):
        unit = parse("union u { int i; float f; };")
        assert unit.decls[0].record_type.kind == "union"

    def test_enum_values(self):
        unit = parse("enum e { A, B = 5, C };")
        enum = unit.decls[0].enum_type
        assert enum.enumerators == (("A", 0), ("B", 5), ("C", 6))

    def test_enum_constant_in_expression(self):
        unit = parse("enum e { K = 3 }; int x[K + 1];")
        # parses without error; K folds inside the size expression
        assert unit.decls[1].name == "x"

    def test_static_storage(self):
        unit = parse("static int x; extern int y;")
        assert unit.decls[0].storage == "static"
        assert unit.decls[1].storage == "extern"

    def test_prototype_and_definition(self):
        unit = parse("int f(int a); int f(int a) { return a; }")
        protos = [d for d in unit.decls if isinstance(d, ast.FunctionDecl)]
        assert not protos[0].is_definition
        assert protos[1].is_definition
        assert unit.functions() == [protos[1]]

    def test_varargs_function(self):
        unit = parse("int printf(const char *fmt, ...);")
        assert unit.decls[0].varargs

    def test_void_params(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.decls[0].params == []

    def test_bitfields(self):
        unit = parse("struct s { int a : 3; int b : 5; };")
        record = unit.decls[0].record_type
        assert [name for name, __ in record.fields] == ["a", "b"]

    def test_initializer_list(self):
        unit = parse("int a[3] = {1, 2, 3};")
        assert isinstance(unit.decls[0].init, ast.InitList)


class TestGccExtensions:
    """Kernel code is saturated with __attribute__ and friends; the parser
    tolerates and drops them."""

    def test_attribute_on_function(self):
        unit = parse("int f(void) __attribute__((noreturn));")
        assert unit.decls[0].name == "f"

    def test_attribute_on_struct(self):
        unit = parse("struct s { int x; } __attribute__((packed));")
        assert isinstance(unit.decls[0], ast.RecordDecl)

    def test_inline_variants(self):
        unit = parse(
            "static __inline__ int add(int a, int b) { return a + b; }"
        )
        assert unit.functions()[0].name == "add"

    def test_extension_typedef(self):
        unit = parse("__extension__ typedef unsigned long long u64; u64 x;")
        assert unit.decls[1].name == "x"

    def test_restrict_pointer(self):
        unit = parse("int * __restrict__ p;")
        assert unit.decls[0].ctype.is_pointer()

    def test_nested_attribute_parens(self):
        unit = parse(
            'int f(void) __attribute__((alias("real_f"), aligned(8)));'
        )
        assert unit.decls[0].name == "f"


class TestTypeInference:
    def test_param_type(self):
        unit = parse("int f(int *p) { return *p; }")
        body = unit.decls[0].body
        ret = body.items[0]
        assert ret.expr.ctype == ctypes.INT
        assert ret.expr.operand.ctype == ctypes.PointerType(ctypes.INT)

    def test_member_type(self):
        unit = parse(
            "struct s { char *name; };\n"
            "char *f(struct s *p) { return p->name; }"
        )
        ret = unit.decls[1].body.items[0]
        assert ret.expr.ctype == ctypes.PointerType(ctypes.CHAR)

    def test_call_return_type(self):
        unit = parse("int g(void); int f(void) { return g(); }")
        ret = unit.decls[1].body.items[0]
        assert ret.expr.ctype == ctypes.INT

    def test_unknown_call_type_is_none(self):
        unit = parse("int f(void) { return mystery(); }")
        ret = unit.decls[0].body.items[0]
        assert ret.expr.ctype is None

    def test_pointer_arithmetic_keeps_pointer(self):
        unit = parse("char *f(char *p) { return p + 1; }")
        ret = unit.decls[0].body.items[0]
        assert ret.expr.ctype.is_pointer()

    def test_comparison_is_int(self):
        expr = parse_expression("a < b")
        assert expr.ctype == ctypes.INT

    def test_address_of(self):
        unit = parse("int f(int x) { return &x != 0; }")
        # no crash; &x typed as int*
        cond = unit.decls[0].body.items[0].expr
        assert cond.left.ctype == ctypes.PointerType(ctypes.INT)


class TestExecutionOrder:
    def test_assignment_rhs_first(self):
        expr = parse_expression("a = f(b)")
        order = list(ast.execution_order(expr))
        names = [type(n).__name__ for n in order]
        # b, f, call, a, assign
        assert names == ["Ident", "Ident", "Call", "Ident", "Assign"]
        assert order[0].name == "b"
        assert order[3].name == "a"

    def test_call_args_before_call(self):
        expr = parse_expression("f(g(x), y)")
        order = list(ast.execution_order(expr))
        call_positions = [i for i, n in enumerate(order) if isinstance(n, ast.Call)]
        # inner call before outer call; outer call is last
        assert call_positions[-1] == len(order) - 1


class TestStructuralEquality:
    def test_equal_trees(self):
        a = parse_expression("x[i] + f(1)")
        b = parse_expression("x[i] + f(1)")
        assert ast.structurally_equal(a, b)
        assert ast.structural_key(a) == ast.structural_key(b)

    def test_different_trees(self):
        a = parse_expression("x[i]")
        b = parse_expression("x[j]")
        assert not ast.structurally_equal(a, b)

    def test_spacing_irrelevant(self):
        a = parse_expression("f( a,b )")
        b = parse_expression("f(a, b)")
        assert ast.structurally_equal(a, b)

    def test_identity_equality_for_nodes(self):
        a = parse_expression("x")
        b = parse_expression("x")
        assert a != b or a is b  # nodes compare by identity
        assert ast.structurally_equal(a, b)
