"""Per-root cross-extension state deltas (incremental global checkers).

The paper's §7.1 global checkers communicate across roots through two
channels: :class:`~repro.engine.composition.AnnotationStore` entries and
per-extension user globals (metal's global C variables).  Both are keyed
by in-memory identity, so a per-(extension, root) artifact was never
enough to replay a coupled run — PR 3's incremental session simply fell
back to a full re-analysis whenever either channel was touched.

This module makes that state serializable:

* :func:`annotation_node_key` names an annotated node *positionally*
  (owning function, node kind, source location, structural digest) so a
  later process can re-attach the value to the equivalent node of a
  freshly parsed tree.
* :class:`DeltaTracker` observes annotation-store and user-global
  traffic while an (extension, root) pair runs and diffs the environment
  at root end, producing a :class:`RootDelta` — the net writes plus the
  coarse read set used for dirty-cone scheduling.
* :class:`DeltaResolver` maps a stored delta back onto the current
  analysis' AST/CFG node objects so replayed writes land on the very
  objects subsequently analyzed roots will read.

Capture is diff-based: only the *net* effect of a root is recorded (a
value written then deleted inside one root leaves no trace), which is
exactly what a later root can observe.  Values must pickle; a root that
stores something opaque (a lambda, an open file) gets ``delta.opaque``
set and its artifact is never persisted — it simply re-analyzes every
run, loudly counted, instead of poisoning the cache.
"""

import hashlib
import pickle

from repro.cfg.blocks import ReturnMarker
from repro.cfront.astnodes import Node, structural_key

# Marker for values that could not be pickled.  Deltas containing it are
# opaque (never persisted); trackers use it so an unpicklable baseline
# value still participates in change detection (opaque == always changed).
_OPAQUE = object()


def _pickled(value):
    """Stable bytes for change comparison, or ``None`` when the value
    cannot be serialized."""
    try:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None


def clone_value(value):
    """A private copy of a replayed value, so in-place mutations by later
    roots never reach the cached artifact object."""
    return pickle.loads(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def _structural_digest(node):
    return hashlib.sha256(repr(structural_key(node)).encode("utf-8")).hexdigest()[:16]


def annotation_node_key(function, node):
    """A process-independent name for an annotated node.

    ``(function, kind, filename, line, column, digest)`` — the owning
    function is the one being traversed when the annotation was written
    (annotations always land on nodes of the function the DFS is in), the
    digest disambiguates structurally different nodes sharing a location.
    Returns ``None`` for nodes that cannot be re-found (synthetic points
    outside any AST/CFG), which makes the whole delta opaque.
    """
    location = getattr(node, "location", None)
    if isinstance(node, ReturnMarker):
        digest = _structural_digest(node.expr)
        kind = "ReturnMarker"
    elif isinstance(node, Node):
        digest = _structural_digest(node)
        kind = type(node).__name__
    else:
        return None
    if location is None:
        return None
    return (
        function,
        kind,
        location.filename,
        location.line,
        location.column,
        digest,
    )


class RootDelta:
    """The net cross-root effect of one (extension, root) run.

    * ``ann_writes`` — list of ``(node_key, annotation_key, value)``.
    * ``glob_writes`` — ``{(ext_name, var): value}`` final values.
    * ``glob_dels`` — ``{(ext_name, var)}`` keys the root removed.
    * ``reads`` — coarse read set: ``("glob", ext, var)`` for a keyed
      user-global read, ``("glob*", ext)`` for iteration/len over the
      dict, ``("ann*",)`` for an ``nodes_with`` sweep.  Keyed annotation
      reads are *not* recorded: an annotation read always targets a node
      inside a function the root traverses, so read-intersection for
      annotations is computed from call-graph reachability instead.
    * ``opaque`` — an unpicklable value was written; the delta cannot be
      persisted or replayed.
    """

    __slots__ = ("ann_writes", "glob_writes", "glob_dels", "reads", "opaque")

    def __init__(self, ann_writes=(), glob_writes=None, glob_dels=(),
                 reads=(), opaque=False):
        self.ann_writes = list(ann_writes)
        self.glob_writes = dict(glob_writes or {})
        self.glob_dels = set(glob_dels)
        self.reads = set(reads)
        self.opaque = bool(opaque)

    def has_writes(self):
        return bool(self.ann_writes or self.glob_writes or self.glob_dels
                    or self.opaque)

    def write_functions(self):
        """Functions containing this delta's annotation writes.  Unkeyable
        writes (synthetic per-path nodes) are skipped: no other root can
        reach those objects, so they cannot create read intersections."""
        return {key[0] for key, _, _ in self.ann_writes if key is not None}

    def glob_write_keys(self):
        """Coarse keys for this delta's user-global writes/deletes."""
        keys = {("glob",) + pair for pair in self.glob_writes}
        keys.update(("glob",) + pair for pair in self.glob_dels)
        return keys

    def __getstate__(self):
        return {
            "ann_writes": self.ann_writes,
            "glob_writes": self.glob_writes,
            "glob_dels": sorted(self.glob_dels),
            "reads": sorted(self.reads),
            "opaque": self.opaque,
        }

    def __setstate__(self, state):
        self.__init__(
            state.get("ann_writes", ()),
            state.get("glob_writes"),
            state.get("glob_dels", ()),
            state.get("reads", ()),
            state.get("opaque", False),
        )

    def __repr__(self):
        return "RootDelta(ann=%d, glob=%d, dels=%d, reads=%d%s)" % (
            len(self.ann_writes), len(self.glob_writes),
            len(self.glob_dels), len(self.reads),
            ", opaque" if self.opaque else "",
        )


def delta_changes(old, new):
    """What changed between two deltas for the same (extension, root).

    Returns ``(changed_functions, changed_glob_keys)`` — the functions
    whose annotation writes differ and the ``("glob", ext, var)`` keys
    whose values differ.  ``None`` on either side means "unknown": every
    write of the other side counts as changed.  Values are compared by
    re-pickling; unpicklable values always count as changed.
    """
    changed_fns = set()
    changed_glob = set()

    def ann_map(delta):
        out = {}
        for node_key, ann_key, value in delta.ann_writes:
            if node_key is None:
                continue  # per-path synthetic node: unreachable from elsewhere
            out[(node_key, ann_key)] = _pickled(value)
        return out

    def glob_map(delta):
        out = {pair: _pickled(value)
               for pair, value in delta.glob_writes.items()}
        for pair in delta.glob_dels:
            out[pair] = b"$deleted"
        return out

    # ``None`` from ``get`` covers both "absent on this side" and
    # "unpicklable value" — either way the entry counts as changed.
    old_ann = ann_map(old) if old is not None else {}
    new_ann = ann_map(new) if new is not None else {}
    for entry in set(old_ann) | set(new_ann):
        before, after = old_ann.get(entry), new_ann.get(entry)
        if before is None or after is None or before != after:
            changed_fns.add(entry[0][0])
    old_glob = glob_map(old) if old is not None else {}
    new_glob = glob_map(new) if new is not None else {}
    for pair in set(old_glob) | set(new_glob):
        before, after = old_glob.get(pair), new_glob.get(pair)
        if before is None or after is None or before != after:
            changed_glob.add(("glob",) + pair)
    return changed_fns, changed_glob


class TrackedGlobals(dict):
    """A per-extension user-global dict that reports reads and write
    candidates to a :class:`DeltaTracker`.

    Keyed reads record a ``("glob", ext, var)`` read; iteration, ``len``
    and friends record the ``("glob*", ext)`` wildcard plus every present
    key as a mutation candidate (the caller may mutate values it reached
    that way).
    """

    def __init__(self, ext_name, tracker, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ext_name = ext_name
        self.tracker = tracker

    # -- reads -------------------------------------------------------------

    def __getitem__(self, key):
        self.tracker.on_glob_read(self.ext_name, key)
        return super().__getitem__(key)

    def get(self, key, default=None):
        self.tracker.on_glob_read(self.ext_name, key)
        return super().get(key, default)

    def __contains__(self, key):
        self.tracker.on_glob_read(self.ext_name, key)
        return super().__contains__(key)

    # -- bulk reads (wildcard) ---------------------------------------------

    def _bulk(self):
        self.tracker.on_glob_bulk(self.ext_name, super().keys())

    def __iter__(self):
        self._bulk()
        return super().__iter__()

    def __len__(self):
        self._bulk()
        return super().__len__()

    def keys(self):
        self._bulk()
        return super().keys()

    def values(self):
        self._bulk()
        return super().values()

    def items(self):
        self._bulk()
        return super().items()

    # -- writes ------------------------------------------------------------

    def __setitem__(self, key, value):
        self.tracker.on_glob_write(self.ext_name, key)
        super().__setitem__(key, value)

    def setdefault(self, key, default=None):
        self.tracker.on_glob_read(self.ext_name, key)
        self.tracker.on_glob_write(self.ext_name, key)
        return super().setdefault(key, default)

    def __delitem__(self, key):
        self.tracker.on_glob_write(self.ext_name, key)
        super().__delitem__(key)

    def pop(self, key, *default):
        self.tracker.on_glob_write(self.ext_name, key)
        return super().pop(key, *default)

    def update(self, *args, **kwargs):
        staged = dict(*args, **kwargs)
        for key in staged:
            self.tracker.on_glob_write(self.ext_name, key)
        super().update(staged)

    def clear(self):
        for key in list(super().keys()):
            self.tracker.on_glob_write(self.ext_name, key)
        super().clear()


class DeltaTracker:
    """Observes annotation-store and user-global traffic and diffs the
    environment at root boundaries.

    The diff is restricted to *candidates* — slots the current root put
    or read (an in-place mutation requires reaching the value first), so
    a root's capture cost scales with what it touched, not with the
    accumulated environment.  Outside a root (``in_root`` False) write
    hooks update the pickled baseline directly: that is the replay path,
    whose writes must not be attributed to the next analyzed root.
    """

    def __init__(self, current_function):
        self._current_function = current_function
        # Global baselines: the pickled environment all prior roots built.
        self._ann_baseline = {}    # (node_id, ann_key) -> bytes or _OPAQUE
        self._glob_baseline = {}   # (ext_name, var) -> bytes or _OPAQUE
        # Per-root state.
        self.in_root = False
        self._ann_candidates = {}  # (node_id, ann_key) -> (node, ann_key, fn)
        self._glob_candidates = set()  # (ext_name, var)
        self._reads = set()
        self._ann_wildcard = False

    # -- root lifecycle ----------------------------------------------------

    def begin_root(self):
        self.in_root = True
        self._ann_candidates = {}
        self._glob_candidates = set()
        self._reads = set()
        self._ann_wildcard = False

    def end_root(self, store, user_globals):
        """Diff candidates against the baseline; returns the
        :class:`RootDelta` and folds the root's writes into the baseline."""
        self.in_root = False
        opaque = False
        ann_writes = []
        for slot_key, (node, ann_key, fn) in self._ann_candidates.items():
            current = store.get(node, ann_key, _OPAQUE)
            if current is _OPAQUE:  # never actually written
                if slot_key in self._ann_baseline:
                    # Annotation stores have no delete; a vanished baseline
                    # entry cannot happen.  Keep the baseline as-is.
                    pass
                continue
            raw = _pickled(current)
            before = self._ann_baseline.get(slot_key)
            if raw is None:
                opaque = True
                self._ann_baseline[slot_key] = _OPAQUE
                node_key = annotation_node_key(fn, node)
                ann_writes.append((node_key, ann_key, None))
                continue
            if before == raw:
                continue
            self._ann_baseline[slot_key] = raw
            node_key = annotation_node_key(fn, node)
            if node_key is None:
                opaque = True
                ann_writes.append((None, ann_key, None))
            else:
                ann_writes.append((node_key, ann_key, current))
        glob_writes = {}
        glob_dels = set()
        for pair in self._glob_candidates:
            ext_name, var = pair
            mapping = user_globals.get(ext_name)
            present = mapping is not None and dict.__contains__(mapping, var)
            if present:
                current = dict.__getitem__(mapping, var)
                raw = _pickled(current)
                before = self._glob_baseline.get(pair)
                if raw is None:
                    opaque = True
                    self._glob_baseline[pair] = _OPAQUE
                    glob_writes[pair] = None
                elif before != raw:
                    self._glob_baseline[pair] = raw
                    glob_writes[pair] = current
            elif pair in self._glob_baseline:
                del self._glob_baseline[pair]
                glob_dels.add(pair)
        reads = set(self._reads)
        if self._ann_wildcard:
            reads.add(("ann*",))
        return RootDelta(ann_writes, glob_writes, glob_dels, reads, opaque)

    # -- annotation-store hooks --------------------------------------------

    def on_ann_put(self, node, key, value):
        slot_key = (id(node), key)
        if not self.in_root:
            # Replay-time write: becomes part of the baseline environment.
            raw = _pickled(value)
            self._ann_baseline[slot_key] = _OPAQUE if raw is None else raw
            return
        if slot_key not in self._ann_candidates:
            self._ann_candidates[slot_key] = (
                node, key, self._current_function())

    def on_ann_get(self, node, key):
        if not self.in_root:
            return
        slot_key = (id(node), key)
        if slot_key not in self._ann_candidates:
            # A read is a mutation candidate: the root may alter the value
            # in place after reaching it.
            self._ann_candidates[slot_key] = (
                node, key, self._current_function())

    def on_ann_nodes_with(self, key):
        if self.in_root:
            self._ann_wildcard = True

    # -- user-global hooks -------------------------------------------------

    def on_glob_read(self, ext_name, var):
        if not self.in_root:
            return
        self._reads.add(("glob", ext_name, var))
        self._glob_candidates.add((ext_name, var))

    def on_glob_bulk(self, ext_name, keys):
        if not self.in_root:
            return
        self._reads.add(("glob*", ext_name))
        for var in keys:
            self._glob_candidates.add((ext_name, var))

    def on_glob_write(self, ext_name, var):
        if not self.in_root:
            # Replay-time write: the engine records the applied value via
            # note_replay_glob, which sees the value; nothing to do here.
            return
        self._glob_candidates.add((ext_name, var))

    def note_replay_glob(self, ext_name, var, value, deleted=False):
        """Record a replay-applied user-global in the baseline."""
        pair = (ext_name, var)
        if deleted:
            self._glob_baseline.pop(pair, None)
        else:
            raw = _pickled(value)
            self._glob_baseline[pair] = _OPAQUE if raw is None else raw


class UnresolvedDelta(Exception):
    """A stored delta names a node the current tree does not contain (or
    contains ambiguously) — the owning root must re-analyze."""


class ResolvedDelta:
    """A delta with annotation writes bound to the current analysis'
    node objects, ready to apply."""

    __slots__ = ("ann_ops", "glob_sets", "glob_dels")

    def __init__(self, ann_ops, glob_sets, glob_dels):
        self.ann_ops = ann_ops      # [(node, ann_key, value)]
        self.glob_sets = glob_sets  # [(ext_name, var, value)]
        self.glob_dels = glob_dels  # [(ext_name, var)]


class DeltaResolver:
    """Maps stored node keys back onto the current call graph's nodes.

    Indexes each function's AST (and, for ``ReturnMarker`` keys, its CFG)
    lazily.  A key that matches zero or several nodes raises
    :class:`UnresolvedDelta`; the session demotes that root into the
    dirty cone instead of replaying a guess.
    """

    def __init__(self, callgraph, cfg_provider):
        self._graph = callgraph
        self._cfg_provider = cfg_provider
        self._ast_index = {}   # function -> {base_key: [node]}
        self._cfg_indexed = set()

    def _index_function(self, function):
        index = self._ast_index.get(function)
        if index is None:
            index = {}
            decl = self._graph.functions.get(function)
            if decl is not None:
                for node in decl.walk():
                    self._add(index, function, node)
            self._ast_index[function] = index
        return index

    def _index_cfg(self, function):
        if function in self._cfg_indexed:
            return
        self._cfg_indexed.add(function)
        index = self._index_function(function)
        cfg = self._cfg_provider(function)
        if cfg is None:
            return
        for block in cfg.blocks:
            for item in block.items:
                if isinstance(item, ReturnMarker):
                    self._add(index, function, item)

    def _add(self, index, function, node):
        key = annotation_node_key(function, node)
        if key is None:
            return
        index.setdefault(key, []).append(node)

    def resolve(self, delta):
        if delta is None:
            return ResolvedDelta([], [], [])
        if delta.opaque:
            raise UnresolvedDelta("delta contains unserializable values")
        ann_ops = []
        for node_key, ann_key, value in delta.ann_writes:
            if node_key is None:
                raise UnresolvedDelta("annotation on an unkeyable node")
            function = node_key[0]
            index = self._index_function(function)
            if node_key[1] == "ReturnMarker":
                self._index_cfg(function)
            matches = index.get(node_key, ())
            if len(matches) != 1:
                raise UnresolvedDelta(
                    "%d nodes match %r in %s"
                    % (len(matches), node_key[1:], function))
            ann_ops.append((matches[0], ann_key, value))
        glob_sets = [(ext, var, value)
                     for (ext, var), value in sorted(
                         delta.glob_writes.items(),
                         key=lambda item: (item[0][0], str(item[0][1])))]
        glob_dels = sorted(delta.glob_dels,
                           key=lambda pair: (pair[0], str(pair[1])))
        return ResolvedDelta(ann_ops, glob_sets, glob_dels)
