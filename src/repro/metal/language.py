"""The textual metal DSL (Figures 1 and 3).

Grammar (reconstructed from the paper's figures)::

    checker     := 'sm' IDENT '{' item* '}'
    item        := decl | clause
    decl        := 'state'? 'decl' type-words IDENT ';'
    clause      := state-label ':' rule ('|' rule)* ';'
    state-label := IDENT ('.' IDENT)?
    rule        := pattern ('==>' targets)? (',' action)?
    targets     := 'true' '=' state-ref ',' 'false' '=' state-ref
                 | state-ref
    state-ref   := IDENT ('.' IDENT)?
    pattern     := pat-or
    pat-or      := pat-and ('||' pat-and)*
    pat-and     := pat-atom ('&&' pat-atom)*
    pat-atom    := '{' C-fragment '}'         -- base pattern
                 | '$' '{' C-expression '}'   -- callout
                 | '$end_of_path$'            -- also '$end of path$'
                 | '(' pattern ')'
    action      := '{' C-statements '}'

C code actions and callout bodies are parsed with the C front end (holes
included) and run by a small interpreter with the callout library
(:mod:`repro.metal.callouts`) in scope.  This substitutes for the original
system's compiled-C escapes; Python-API extensions are the full-power
escape hatch (see DESIGN.md).
"""

from repro.cfront import astnodes as ast
from repro.cfront.lexer import (
    Lexer,
    TokenKind,
    parse_char_constant,
    parse_int_constant,
    parse_string_literal,
)
from repro.cfront.parser import Parser
from repro.cfront.source import ParseError, SourceError
from repro.metal.callouts import LIBRARY
from repro.metal.metatypes import metatype_by_name
from repro.metal.patterns import Callout, EndOfPath, compile_pattern
from repro.metal.sm import Extension


class MetalError(SourceError):
    """A malformed metal extension."""


class MetalParser:
    """Parses metal text into an :class:`Extension`."""

    def __init__(self, text, filename="<metal>"):
        self.tokens = Lexer(text, filename).tokens()
        self.pos = 0
        self.filename = filename

    def peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return token

    def error(self, message):
        raise MetalError(
            "%s (at %r)" % (message, self.peek().value or "<eof>"), self.peek().location
        )

    def expect(self, value):
        token = self.peek()
        if token.value != value:
            self.error("expected %r" % value)
        return self.advance()

    def accept(self, value):
        if self.peek().value == value:
            return self.advance()
        return None

    # -- top level -------------------------------------------------------------

    def parse(self):
        self.expect("sm")
        name_token = self.peek()
        if name_token.kind is not TokenKind.IDENT:
            self.error("expected checker name after 'sm'")
        self.advance()
        extension = Extension(name_token.value)
        self.expect("{")
        while not self.peek().is_punct("}"):
            if self.peek().kind is TokenKind.EOF:
                self.error("unterminated checker body")
            if self.peek().value in ("state", "decl"):
                self._parse_decl(extension)
            else:
                self._parse_clause(extension)
        self.expect("}")
        return extension

    def _parse_decl(self, extension):
        is_state = bool(self.accept("state"))
        self.expect("decl")
        # Type words up to the variable name: the name is the last IDENT
        # before ';'.
        words = []
        while not self.peek().is_punct(";"):
            if self.peek().kind is TokenKind.EOF:
                self.error("unterminated decl")
            words.append(self.advance().value)
        self.expect(";")
        if len(words) < 2:
            self.error("decl needs a type and a name")
        name = words[-1]
        type_words = " ".join(words[:-1])
        metatype = metatype_by_name(type_words)
        if metatype is None:
            from repro.cfront.parser import Parser as CParser
            from repro.metal.metatypes import ConcreteType

            try:
                type_parser = CParser(type_words + " x;")
                decls = type_parser.parse_external_declaration()
                metatype = ConcreteType(decls[0].ctype)
            except (ParseError, IndexError):
                self.error("unknown hole type %r" % type_words)
        if is_state:
            extension.state_var(name, metatype)
        else:
            extension.decl(name, metatype)

    def _parse_clause(self, extension):
        source = self._parse_state_ref()
        self.expect(":")
        while True:
            self._parse_rule(extension, source)
            if not self.accept("|"):
                break
        self.expect(";")

    def _parse_state_ref(self):
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            self.error("expected state name")
        name = self.advance().value
        if self.accept("."):
            value = self.advance().value
            return "%s.%s" % (name, value)
        return name

    def _parse_rule(self, extension, source):
        pattern = self._parse_pattern(extension)
        to = true_to = false_to = None
        action = None
        if self.peek().is_punct("==") and self.peek(1).is_punct(">"):
            self.advance()
            self.advance()
            if self.peek().value == "true" and self.peek(1).is_punct("="):
                self.advance()
                self.advance()
                true_to = self._parse_state_ref()
                self.expect(",")
                if self.peek().value != "false":
                    self.error("expected 'false=' arm of path-specific target")
                self.advance()
                self.expect("=")
                false_to = self._parse_state_ref()
            else:
                to = self._parse_state_ref()
        if self.accept(","):
            if not self.peek().is_punct("{"):
                self.error("expected '{' action block")
            body = self._collect_braced()
            action = compile_action(body, extension.hole_types)
        extension.transition(
            source, pattern, to=to, action=action, true_to=true_to, false_to=false_to
        )

    # -- patterns ----------------------------------------------------------------

    def _parse_pattern(self, extension):
        left = self._parse_pattern_and(extension)
        while self.peek().is_punct("||"):
            self.advance()
            right = self._parse_pattern_and(extension)
            left = left | right
        return left

    def _parse_pattern_and(self, extension):
        left = self._parse_pattern_atom(extension)
        while self.peek().is_punct("&&"):
            self.advance()
            right = self._parse_pattern_atom(extension)
            left = left & right
        return left

    def _parse_pattern_atom(self, extension):
        token = self.peek()
        if token.is_punct("("):
            self.advance()
            inner = self._parse_pattern(extension)
            self.expect(")")
            return inner
        if token.is_punct("{"):
            body = self._collect_braced()
            return compile_pattern(body, extension.hole_types)
        if token.is_punct("$"):
            self.advance()
            if self.peek().is_punct("{"):
                body = self._collect_braced()
                return compile_callout(body, extension.hole_types)
            # $end_of_path$ (also the spelled-out '$end of path$').
            words = []
            while not self.peek().is_punct("$"):
                if self.peek().kind is TokenKind.EOF:
                    self.error("unterminated $...$ pattern")
                words.append(self.advance().value)
            self.expect("$")
            name = "_".join(words)
            if name == "end_of_path":
                return EndOfPath()
            self.error("unknown special pattern $%s$" % " ".join(words))
        self.error("expected a pattern")

    def _collect_braced(self):
        """Consume a balanced ``{...}`` and return the body as text."""
        open_token = self.expect("{")
        depth = 1
        parts = []
        while depth:
            token = self.advance()
            if token.kind is TokenKind.EOF:
                raise MetalError("unterminated '{'", open_token.location)
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                depth -= 1
                if depth == 0:
                    break
            parts.append(token.value)
        return " ".join(parts)


# ---------------------------------------------------------------------------
# The action / callout interpreter
# ---------------------------------------------------------------------------


class _Interpreter:
    """Evaluates the C fragments inside ``${...}`` and action blocks.

    Identifier resolution order: hole bindings, the callout library, then
    the per-extension user-global dictionary (``ctx.globals``).
    """

    def __init__(self, context):
        self.context = context

    def lookup(self, name):
        bindings = getattr(self.context, "bindings", {}) or {}
        if name in bindings:
            return bindings[name]
        if name in LIBRARY:
            return LIBRARY[name]
        user_globals = getattr(self.context, "globals", None)
        if user_globals is not None and name in user_globals:
            return user_globals[name]
        builtin = getattr(self.context, name, None)
        if builtin is not None:
            return builtin
        raise MetalError("unknown identifier %r in metal C fragment" % name)

    def run_block(self, stmts):
        for stmt in stmts:
            self.run_stmt(stmt)

    def run_stmt(self, stmt):
        if isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr)
        elif isinstance(stmt, ast.Compound):
            self.run_block(stmt.items)
        elif isinstance(stmt, ast.If):
            if self.truthy(self.eval(stmt.cond)):
                self.run_stmt(stmt.then)
            elif stmt.otherwise is not None:
                self.run_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        elif isinstance(stmt, ast.Return):
            raise _ReturnValue(self.eval(stmt.expr) if stmt.expr else None)
        else:
            raise MetalError("unsupported statement in metal C fragment: %r" % stmt)

    def eval(self, expr):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.CharLit):
            return expr.value
        if isinstance(expr, ast.Hole):
            bindings = getattr(self.context, "bindings", {}) or {}
            if expr.name in bindings:
                return bindings[expr.name]
            raise MetalError("hole %r is unbound in this fragment" % expr.name)
        if isinstance(expr, ast.Ident):
            value = self.lookup(expr.name)
            if callable(value) and getattr(value, "_needs_context", False):
                # A bare mention of e.g. mc_stmt: evaluate immediately.
                try:
                    return value(self.context)
                except TypeError:
                    return value
            return value
        if isinstance(expr, ast.Call):
            fn = self.eval(expr.func)
            args = [self.eval(a) for a in expr.args]
            if getattr(fn, "_needs_context", False):
                return fn(self.context, *args)
            return fn(*args)
        if isinstance(expr, ast.Unary):
            value = self.eval(expr.operand)
            if expr.op == "!":
                return int(not self.truthy(value))
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == "~":
                return ~value
            raise MetalError("unsupported unary %r in metal C fragment" % expr.op)
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                return int(self.truthy(self.eval(expr.left)) and self.truthy(self.eval(expr.right)))
            if expr.op == "||":
                return int(self.truthy(self.eval(expr.left)) or self.truthy(self.eval(expr.right)))
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            return _binop(expr.op, left, right)
        if isinstance(expr, ast.Conditional):
            if self.truthy(self.eval(expr.cond)):
                return self.eval(expr.then)
            return self.eval(expr.otherwise)
        if isinstance(expr, ast.Assign) and expr.op == "=":
            if isinstance(expr.target, ast.Ident):
                user_globals = getattr(self.context, "globals", None)
                if user_globals is None:
                    raise MetalError("no globals store for assignment in fragment")
                value = self.eval(expr.value)
                user_globals[expr.target.name] = value
                return value
        raise MetalError("unsupported expression in metal C fragment: %r" % expr)

    @staticmethod
    def truthy(value):
        if value is None:
            return False
        if isinstance(value, (int, float, str, list)):
            return bool(value)
        return True  # AST nodes etc. are truthy


class _ReturnValue(Exception):
    def __init__(self, value):
        self.value = value


def _binop(op, left, right):
    table = {
        "==": lambda: int(left == right),
        "!=": lambda: int(left != right),
        "<": lambda: int(left < right),
        ">": lambda: int(left > right),
        "<=": lambda: int(left <= right),
        ">=": lambda: int(left >= right),
        "+": lambda: left + right,
        "-": lambda: left - right,
        "*": lambda: left * right,
        "/": lambda: left // right if isinstance(left, int) else left / right,
        "%": lambda: left % right,
        "|": lambda: left | right,
        "&": lambda: left & right,
        "^": lambda: left ^ right,
        "<<": lambda: left << right,
        ">>": lambda: left >> right,
    }
    if op not in table:
        raise MetalError("unsupported binary %r in metal C fragment" % op)
    return table[op]()


def _parse_fragment_stmts(body, hole_types):
    parser = Parser(body, "<metal-action>", hole_types=hole_types)
    stmts = []
    while not parser.at_eof():
        stmts.append(parser.parse_statement())
    return stmts


def compile_action(body, hole_types):
    """Compile a C code action (§3.2) into an engine action callable."""
    stmts = _parse_fragment_stmts(body, hole_types)

    def action(context):
        try:
            _Interpreter(context).run_block(stmts)
        except _ReturnValue:
            pass

    action.source = body
    return action


def compile_callout(body, hole_types):
    """Compile a ``${...}`` callout body into a :class:`Callout` pattern."""
    body = body.strip()
    parser = Parser(body, "<metal-callout>", hole_types=hole_types)
    expr = parser.parse_expression()
    if not parser.at_eof():
        parser.error("trailing tokens in callout")

    def predicate(context):
        try:
            return _Interpreter(context).truthy(_Interpreter(context).eval(expr))
        except MetalError:
            return False  # an unbound hole in a standalone callout: no match

    return Callout(predicate, body)


def compile_metal(text, filename="<metal>"):
    """Compile metal source text into an :class:`Extension`."""
    return MetalParser(text, filename).parse()
