"""Integration test over the hand-written toy kernel tree: includes,
macros, file-scope statics, multiple translation units -- the full §6
driver path on realistic C."""

import glob
import os

import pytest

from repro.checkers import (
    free_checker,
    lock_checker,
    malloc_fail_checker,
    range_check_checker,
    user_pointer_checker,
)
from repro.driver.project import Project

TREE = os.path.join(os.path.dirname(__file__), "..", "examples", "toy_kernel")


@pytest.fixture(scope="module")
def audit_result():
    project = Project(include_paths=[os.path.join(TREE, "include")])
    for path in sorted(glob.glob(os.path.join(TREE, "*.c"))):
        with open(path) as handle:
            project.compile_text(handle.read(), os.path.basename(path))
    result = project.run(
        [
            free_checker(("kfree",)),
            lock_checker(),
            malloc_fail_checker(),
            range_check_checker(),
            user_pointer_checker(),
        ]
    )
    return project, result


SEEDED = {
    ("ring_push_noalloc", "malloc_fail_checker"),
    ("ring_reset", "lock_checker"),
    ("dev_destroy_twice", "free_checker"),
    ("dev_replace_buf", "free_checker"),
    ("ioctl_set_slot", "range_check_checker"),
    ("ioctl_raw_write", "user_pointer_checker"),
}


class TestToyKernelAudit:
    def test_every_seeded_bug_found(self, audit_result):
        __, result = audit_result
        found = {(r.function, r.checker) for r in result.reports}
        assert SEEDED <= found

    def test_no_false_positives(self, audit_result):
        __, result = audit_result
        found = {(r.function, r.checker) for r in result.reports}
        assert found == SEEDED

    def test_clean_functions_stay_clean(self, audit_result):
        __, result = audit_result
        flagged = {r.function for r in result.reports}
        for clean in ("ring_push", "ring_pop", "dev_create", "dev_destroy",
                      "dev_put", "ioctl_get_config", "ioctl_safe_write",
                      "ioctl_dispatch"):
            assert clean not in flagged, clean

    def test_macros_expanded(self, audit_result):
        project, __ = audit_result
        # RING_SIZE/MAX_DEVICES came from the header through #include
        unit = next(u for u in project.units if u.filename == "ioctl.c")
        fn = unit.function("ioctl_get_config")
        assert fn is not None

    def test_statics_registered(self, audit_result):
        project, __ = audit_result
        assert project.static_vars.get("device_list") == "devices.c"
        assert project.static_vars.get("config_table") == "ioctl.c"

    def test_severities(self, audit_result):
        __, result = audit_result
        by_checker = {r.checker: r.severity for r in result.reports}
        assert by_checker["range_check_checker"] == "SECURITY"
        assert by_checker["user_pointer_checker"] == "SECURITY"
        assert by_checker["free_checker"] == "ERROR"
        assert by_checker["malloc_fail_checker"] == "MINOR"
