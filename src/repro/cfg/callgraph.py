"""The call graph (§6, analysis pass step 2).

Functions with no callers are roots; recursive call chains are broken
arbitrarily so that every function is reachable from some root.
"""

from repro.cfront import astnodes as ast


class CallGraph:
    """Direct-call graph over a set of function definitions."""

    def __init__(self):
        self.functions = {}  # name -> FunctionDecl (definitions only)
        self.callees = {}  # name -> set of called names (defined or not)
        self.callers = {}  # name -> set of defined caller names

    @classmethod
    def from_units(cls, units):
        """Build from an iterable of TranslationUnits."""
        graph = cls()
        for unit in units:
            for decl in unit.functions():
                graph.add_function(decl)
        graph.link()
        return graph

    def add_function(self, decl):
        self.functions[decl.name] = decl

    def link(self):
        """(Re)compute callee/caller sets from the function bodies."""
        self.callees = {name: set() for name in self.functions}
        self.callers = {name: set() for name in self.functions}
        for name, decl in self.functions.items():
            for node in decl.body.walk():
                if isinstance(node, ast.Call):
                    callee = node.callee_name()
                    if callee is not None:
                        self.callees[name].add(callee)
        for name, callees in self.callees.items():
            for callee in callees:
                if callee in self.callers:
                    self.callers[callee].add(name)

    def roots(self):
        """Entry points: functions with no callers, plus one arbitrary
        function per otherwise-unreachable recursive component."""
        roots = [name for name in self.functions if not self.callers[name]]
        reachable = self._reachable_from(roots)
        # Break recursion: repeatedly promote the lexicographically first
        # unreached function to a root ("broken arbitrarily", §6).
        remaining = sorted(set(self.functions) - reachable)
        while remaining:
            root = remaining[0]
            roots.append(root)
            reachable |= self._reachable_from([root])
            remaining = sorted(set(self.functions) - reachable)
        return sorted(roots)

    def components(self):
        """Weakly-connected components over the *defined* functions.

        Two functions share a component when one (transitively) calls the
        other in either direction; calls to undefined externals do not
        connect anything.  Each component is a sorted name list and the
        component list is ordered by first member, so the partition is
        deterministic -- this is the unit of pass-2 parallel scheduling
        (each component's roots can be analyzed in isolation because the
        DFS never follows a call out of its component).
        """
        adjacency = {name: set() for name in self.functions}
        for name, callees in self.callees.items():
            for callee in callees:
                if callee in self.functions:
                    adjacency[name].add(callee)
                    adjacency[callee].add(name)
        seen = set()
        parts = []
        for name in sorted(self.functions):
            if name in seen:
                continue
            component = []
            stack = [name]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                component.append(current)
                stack.extend(adjacency[current] - seen)
            parts.append(sorted(component))
        return parts

    def _reachable_from(self, names):
        seen = set()
        stack = list(names)
        while stack:
            name = stack.pop()
            if name in seen or name not in self.functions:
                continue
            seen.add(name)
            stack.extend(self.callees.get(name, ()))
        return seen

    def topological_order(self):
        """Callees-before-callers order (cycles broken arbitrarily)."""
        order = []
        visited = {}

        def visit(name):
            state = visited.get(name)
            if state is not None:
                return
            visited[name] = "visiting"
            for callee in sorted(self.callees.get(name, ())):
                if callee in self.functions and visited.get(callee) != "visiting":
                    visit(callee)
            visited[name] = "done"
            order.append(name)

        for name in sorted(self.functions):
            visit(name)
        return order

    def __contains__(self, name):
        return name in self.functions

    def __len__(self):
        return len(self.functions)
