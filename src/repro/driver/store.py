"""Artifact-store backends: where cache frames and manifests live.

PR 1/PR 3 gave the driver a two-tier content-addressed cache (tier-1
``XGCCAST`` AST frames, tier-2 ``XGCCSUM`` summary frames plus session
manifests).  This module abstracts *where those bytes live* behind one
backend interface, so :class:`repro.driver.cache.AstCache`,
:class:`repro.driver.cache.SummaryCache`, the incremental session, the
daemon's pinned warm state, and ``--cache-gc`` all speak to storage the
same way:

- :class:`LocalStore` -- the original filesystem layout
  (``root/<key[:2]>/<key>.ast``, ``root/summaries/...``), unchanged on
  disk, with manifest writes promoted to ETag compare-and-swap held
  under the existing per-signature file lock.
- :class:`RemoteStore` -- a client for :mod:`repro.driver.store_server`:
  batched ``get``/``put``/``head`` over a persistent TCP connection
  (newline-JSON header + raw frame bytes), manifest CAS with the
  current document returned on conflict (saving the re-read round
  trip), and server-side GC that honours extra-live pins.
- :class:`TieredStore` -- local write-through overlay over a remote:
  warm reads never block on the network (overlay hits are counted),
  every remote read/write is mirrored locally, and a dead or flaky
  store degrades the tier to local-only (``store_degraded`` /
  ``store_fallbacks`` counters) instead of failing the run.

Keys, frame formats, and checksums are untouched: a backend stores and
returns opaque frame bytes; verification stays in
:mod:`repro.driver.cache` where it always lived.

The wire protocol (docs/STORE.md): each request is one JSON object on
its own line with a ``blobs`` list of byte lengths, followed by exactly
those raw bytes concatenated; each response mirrors the shape.  Batches
are first-class -- one round trip moves any number of frames.

Manifest discipline: the fcntl read-merge-write from PR 3 serialized
rival sessions through a shared filesystem lock, which cannot span
machines.  Every backend instead exposes ``manifest_get`` (document +
ETag) and ``manifest_cas`` (write iff the ETag still matches); the
merge loop in :meth:`repro.driver.cache.SummaryCache.store_manifest`
re-reads, re-merges, and retries on conflict, bounded by
:data:`MANIFEST_CAS_RETRIES`.  The ETag is the SHA-256 of the document
bytes, so local and remote backends agree on it.
"""

import hashlib
import json
import os
import socket
import threading
import time

#: Wire protocol version; every request and response carries it.
STORE_PROTOCOL = 1

#: Upper bound on manifest compare-and-swap retries.  Each round the
#: store commits exactly one writer (LocalStore serializes CAS under the
#: per-signature lock; the server is single-threaded), so N contending
#: sessions converge in at most N rounds -- the bound exists to turn a
#: pathological livelock into a loud lost merge, never an infinite loop.
MANIFEST_CAS_RETRIES = 64

#: Frame tiers: cached ASTs, per-root summaries, and run-history
#: documents (repro.reports.history).  The ``run`` tier is a *record*,
#: not a cache -- :meth:`LocalStore.gc` never sweeps it.
_TIER_SUFFIX = {"ast": ".ast", "sum": ".sum", "run": ".run"}


class StoreError(Exception):
    """A backend operation that could not be served (unreachable store,
    protocol violation, missing tier directory).  TieredStore catches
    these and degrades to local-only; bare backends let them surface."""


def etag_of(text):
    """The manifest ETag for a document: SHA-256 of its UTF-8 bytes.
    Backend-independent, so a CAS started against one backend commits
    correctly against any other holding the same bytes."""
    if isinstance(text, str):
        text = text.encode("utf-8")
    return hashlib.sha256(text).hexdigest()


def parse_store_url(url):
    """``(host, port)`` from a store URL; accepts ``tcp://h:p``,
    ``http://h:p``, or bare ``h:p``."""
    rest = url
    for scheme in ("tcp://", "http://"):
        if rest.startswith(scheme):
            rest = rest[len(scheme):]
            break
    rest = rest.rstrip("/")
    host, sep, port = rest.rpartition(":")
    if not sep or not port.isdigit():
        raise StoreError("unusable store url: %r" % url)
    return host or "127.0.0.1", int(port)


def _manifest_files(summaries_dir):
    """Sorted manifest paths currently present under a summaries dir."""
    try:
        names = sorted(os.listdir(summaries_dir))
    except OSError:
        return []
    return [
        os.path.join(summaries_dir, name)
        for name in names
        if name.startswith("manifest-") and name.endswith(".json")
    ]


class LocalStore:
    """The filesystem backend: PR 1/PR 3's on-disk layout, verbatim.

    ``root`` places the tiers the way the driver always has (tier 1
    under ``root``, tier 2 and manifests under ``root/summaries``, run
    history under ``root/runs``);
    ``ast_dir`` / ``sum_dir`` place one tier directly (the path the
    ``AstCache(dir)`` / ``SummaryCache(dir)`` compatibility constructors
    take).  A tier with no directory raises :class:`StoreError` when
    touched -- never silently reads from the wrong place.
    """

    #: Batched prefetch buys nothing on a local filesystem.
    prefers_batch = False

    def __init__(self, root=None, ast_dir=None, sum_dir=None, stats=None,
                 run_dir=None):
        self.root = root
        self.ast_dir = ast_dir if ast_dir is not None else root
        if sum_dir is not None:
            self.sum_dir = sum_dir
        else:
            self.sum_dir = (
                os.path.join(root, "summaries") if root is not None else None
            )
        if run_dir is not None:
            self.run_dir = run_dir
        else:
            self.run_dir = (
                os.path.join(root, "runs") if root is not None else None
            )
        self.stats = stats

    def bind_stats(self, stats):
        if self.stats is None:
            self.stats = stats

    def close(self):
        pass

    # -- frames ------------------------------------------------------------

    def _tier_base(self, tier):
        if tier == "ast":
            return self.ast_dir
        if tier == "run":
            return self.run_dir
        return self.sum_dir

    def _tier_dir(self, tier):
        directory = self._tier_base(tier)
        if directory is None:
            raise StoreError("local store has no %r tier directory" % tier)
        return directory

    def local_path(self, tier, key):
        """Where this key lives on disk (whether or not it exists)."""
        directory = self._tier_base(tier)
        if directory is None:
            return None
        return os.path.join(directory, key[:2], key + _TIER_SUFFIX[tier])

    def get_many(self, tier, keys):
        """``{key: frame_bytes}`` for every present key.  A read counts
        as use: each hit's mtime is refreshed so GC's ``mtime >= cutoff``
        keep rule sees warm frames as live."""
        self._tier_dir(tier)
        out = {}
        for key in keys:
            path = self.local_path(tier, key)
            try:
                with open(path, "rb") as handle:
                    out[key] = handle.read()
            except OSError:
                continue
            try:
                os.utime(path, None)
            except OSError:
                pass
        return out

    def put_many(self, tier, items):
        """Atomically write frames (tmp + rename, concurrent-writer
        safe)."""
        self._tier_dir(tier)
        for key in sorted(items):
            path = self.local_path(tier, key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp, "wb") as handle:
                handle.write(items[key])
            os.replace(tmp, path)
        return len(items)

    def head_many(self, tier, keys):
        """The subset of ``keys`` present, as a set (no bytes moved)."""
        self._tier_dir(tier)
        return {
            key for key in keys if os.path.exists(self.local_path(tier, key))
        }

    def delete_many(self, tier, keys):
        self._tier_dir(tier)
        deleted = 0
        for key in keys:
            try:
                os.remove(self.local_path(tier, key))
                deleted += 1
            except OSError:
                pass
        return deleted

    def touch_many(self, tier, keys, ts=None):
        """Refresh mtimes (GC liveness) -- or, with ``ts``, set them
        (tests age entries through this instead of reaching for paths)."""
        self._tier_dir(tier)
        times = None if ts is None else (ts, ts)
        for key in keys:
            try:
                os.utime(self.local_path(tier, key), times)
            except OSError:
                pass

    def entry_mtime(self, tier, key):
        """The entry's mtime, or None when absent."""
        try:
            return os.path.getmtime(self.local_path(tier, key))
        except OSError:
            return None

    def list_tier(self, tier):
        """``{key: mtime}`` of every frame in a tier."""
        directory = self._tier_dir(tier)
        suffix = _TIER_SUFFIX[tier]
        out = {}
        if not os.path.isdir(directory):
            return out
        for sub in sorted(os.listdir(directory)):
            subdir = os.path.join(directory, sub)
            if len(sub) != 2 or not os.path.isdir(subdir):
                continue
            try:
                names = sorted(os.listdir(subdir))
            except OSError:
                continue
            for name in names:
                if not name.endswith(suffix):
                    continue
                try:
                    mtime = os.path.getmtime(os.path.join(subdir, name))
                except OSError:
                    continue
                out[name[: -len(suffix)]] = mtime
        return out

    # -- manifests ---------------------------------------------------------

    def _manifest_dir(self):
        if self.sum_dir is None:
            raise StoreError("local store has no manifest directory")
        return self.sum_dir

    def manifest_local_path(self, signature):
        if self.sum_dir is None:
            return None
        return os.path.join(
            self.sum_dir, "manifest-%s.json" % signature[:32]
        )

    def _read_manifest(self, path):
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None, None
        return data.decode("utf-8"), etag_of(data)

    def manifest_get(self, signature):
        """``(document_text, etag)``; ``(None, None)`` when absent."""
        self._manifest_dir()
        return self._read_manifest(self.manifest_local_path(signature))

    def manifest_head(self, signature):
        """The current ETag, or None when absent."""
        return self.manifest_get(signature)[1]

    def manifest_version(self, signature):
        """A cheap change token for warm-state pinning: the manifest
        file's stat identity (any rival merge moves it)."""
        path = self.manifest_local_path(signature)
        if path is None:
            return None
        try:
            st = os.stat(path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size, st.st_ino)

    def manifest_cas(self, signature, text, expect_etag, stats=None):
        """Write the document iff the stored ETag still matches.

        Returns ``(committed, etag, current_text)``: on success the new
        ETag and our own text, on conflict the store's current ETag and
        document (the caller re-merges against it and retries).  The
        check-and-write runs under the per-signature file lock, so of
        any number of concurrent CAS attempts exactly one commits.
        """
        from repro.driver.cache import _file_lock

        path = self.manifest_local_path(signature)
        if path is None:
            raise StoreError("local store has no manifest directory")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with _file_lock(path + ".lock", stats=stats or self.stats):
            cur_text, cur_etag = self._read_manifest(path)
            if expect_etag != cur_etag:
                return False, cur_etag, cur_text
            tmp = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        return True, etag_of(text), text

    def manifest_put(self, signature, text, stats=None):
        """Unconditional locked manifest write (the overlay mirror path:
        the remote already arbitrated the merge)."""
        from repro.driver.cache import _file_lock

        path = self.manifest_local_path(signature)
        if path is None:
            raise StoreError("local store has no manifest directory")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with _file_lock(path + ".lock", stats=stats or self.stats):
            tmp = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        return etag_of(text)

    def manifest_list(self):
        """``{manifest_token: mtime}`` for every stored manifest (the
        token is the filename's truncated-signature part)."""
        out = {}
        for path in _manifest_files(self._manifest_dir()):
            name = os.path.basename(path)
            try:
                out[name[len("manifest-"):-len(".json")]] = (
                    os.path.getmtime(path)
                )
            except OSError:
                continue
        return out

    def manifest_delete(self, token, stats=None):
        from repro.driver.cache import _file_lock

        path = os.path.join(
            self._manifest_dir(), "manifest-%s.json" % token
        )
        with _file_lock(path + ".lock", stats=stats or self.stats):
            try:
                os.remove(path)
                return True
            except OSError:
                return False

    # -- garbage collection ------------------------------------------------

    def gc(self, cutoff_days=30.0, now=None, stats=None,
           extra_live_sum=(), extra_live_ast=(), _after_scan=None):
        """Sweep stale frames and manifests (the PR 5 semantics, moved
        behind the backend interface).

        Liveness comes from the manifests: every manifest newer than the
        cutoff pins the tier-1 and tier-2 keys it recorded.  The sweep
        drops (a) manifests older than the cutoff and (b) frames that
        are both unpinned and older than the cutoff -- a frame younger
        than the cutoff is kept even when unreferenced, so plain cache
        users and in-flight sessions are never raced.
        ``extra_live_sum`` / ``extra_live_ast`` are additional pinned
        keys (a live daemon's in-memory warm state, a remote client's
        pins shipped with the ``gc`` request).

        Concurrency: the pinned-key read and the frame sweep run as one
        critical section under every fresh manifest's per-signature
        lock.  A rival session's merge either completes before the sweep
        (its pins are re-read and honoured) or blocks until the sweep is
        done -- and any frame such a late merge pins was just stored or
        warm-loaded, so its refreshed mtime keeps it past the cutoff
        regardless.  ``_after_scan`` is a test-only hook running between
        the stale-manifest drop and the locked section, where the
        pre-fix implementation raced rival merges.

        Returns the eviction counters (callers fold them into stats).
        """
        import contextlib

        from repro.driver.cache import _file_lock

        now = time.time() if now is None else now
        cutoff = now - float(cutoff_days) * 86400.0
        counters = {
            "gc_manifests_dropped": 0,
            "gc_summary_frames_dropped": 0,
            "gc_ast_frames_dropped": 0,
            "gc_frames_kept": 0,
        }
        stats = stats or self.stats
        summaries_dir = self.sum_dir
        if summaries_dir is not None:
            for path in _manifest_files(summaries_dir):
                try:
                    mtime = os.path.getmtime(path)
                except OSError:
                    continue
                if mtime < cutoff:
                    with _file_lock(path + ".lock", stats=stats):
                        try:
                            os.remove(path)
                            counters["gc_manifests_dropped"] += 1
                        except OSError:
                            pass

        if _after_scan is not None:
            _after_scan()

        def sweep(root, suffix, live, counter):
            if root is None or not os.path.isdir(root):
                return
            for sub in sorted(os.listdir(root)):
                subdir = os.path.join(root, sub)
                if len(sub) != 2 or not os.path.isdir(subdir):
                    continue
                try:
                    fnames = sorted(os.listdir(subdir))
                except OSError:
                    continue
                for fname in fnames:
                    if not fname.endswith(suffix):
                        continue
                    key = fname[: -len(suffix)]
                    path = os.path.join(subdir, fname)
                    try:
                        mtime = os.path.getmtime(path)
                    except OSError:
                        continue  # vanished mid-sweep: not our problem
                    if key in live or mtime >= cutoff:
                        counters["gc_frames_kept"] += 1
                        continue
                    try:
                        os.remove(path)
                        counters[counter] += 1
                    except OSError:
                        pass

        live_sum, live_ast = set(extra_live_sum), set(extra_live_ast)
        with contextlib.ExitStack() as held:
            # Re-list and re-read pinned keys under the per-signature
            # locks, immediately before the sweep, holding them through
            # it: a merge that landed since the stale scan is seen, and
            # one that lands after can only pin freshly-touched
            # (mtime-safe) frames.
            if summaries_dir is not None:
                for path in _manifest_files(summaries_dir):
                    held.enter_context(
                        _file_lock(path + ".lock", stats=stats)
                    )
                    try:
                        with open(path) as handle:
                            obj = json.load(handle)
                    except (OSError, ValueError):
                        continue
                    if isinstance(obj, dict):
                        live_sum.update(obj.get("frame_keys") or ())
                        live_ast.update(obj.get("ast_keys") or ())
            sweep(summaries_dir, ".sum", live_sum,
                  "gc_summary_frames_dropped")
            sweep(self.ast_dir, ".ast", live_ast, "gc_ast_frames_dropped")
        return counters


class RemoteStore:
    """A client for the artifact-store server (docs/STORE.md).

    One persistent TCP connection, reconnected once per request on
    failure; a request that fails twice raises :class:`StoreError` (the
    tiered wrapper turns that into local-only degradation).  All frame
    operations are batched: one round trip per call, however many keys.
    """

    prefers_batch = True

    def __init__(self, url, stats=None, timeout=10.0):
        self.url = url
        self.host, self.port = parse_store_url(url)
        self.stats = stats
        self.timeout = timeout
        self._sock = None
        self._buf = b""
        self._lock = threading.Lock()

    def bind_stats(self, stats):
        if self.stats is None:
            self.stats = stats

    def close(self):
        with self._lock:
            self._drop()

    # -- wire --------------------------------------------------------------

    def _connect(self):
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.settimeout(self.timeout)
        return sock

    def _drop(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._buf = b""

    def _recv_some(self):
        chunk = self._sock.recv(65536)
        if not chunk:
            raise EOFError("store closed the connection")
        self._buf += chunk

    def _recv_line(self):
        while b"\n" not in self._buf:
            self._recv_some()
        line, self._buf = self._buf.split(b"\n", 1)
        return line

    def _recv_exact(self, size):
        while len(self._buf) < size:
            self._recv_some()
        data, self._buf = self._buf[:size], self._buf[size:]
        return data

    def _request(self, op, fields=None, blobs=()):
        """One request/response round trip; reconnects and resends once
        on a dead connection (all ops are idempotent), then raises
        :class:`StoreError`."""
        header = dict(fields or {})
        header["op"] = op
        header["protocol"] = STORE_PROTOCOL
        header["blobs"] = [len(blob) for blob in blobs]
        payload = (
            json.dumps(header).encode("utf-8") + b"\n" + b"".join(blobs)
        )
        with self._lock:
            last_err = None
            reply = None
            for _attempt in (0, 1):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    self._sock.sendall(payload)
                    line = self._recv_line()
                    reply = json.loads(line.decode("utf-8"))
                    reply_blobs = [
                        self._recv_exact(size)
                        for size in reply.get("blobs") or ()
                    ]
                    break
                except (OSError, ValueError, EOFError) as err:
                    # A header may have parsed before the connection
                    # died mid-blob: the whole reply is void either way.
                    last_err = err
                    reply = None
                    self._drop()
            if reply is None:
                raise StoreError(
                    "store %s unreachable for %r: %r"
                    % (self.url, op, last_err)
                )
        if self.stats is not None:
            self.stats.add("store_round_trips")
            batch = len(header.get("items") or ())
            if batch:
                self.stats.add("store_batch_keys", batch)
        if not reply.get("ok"):
            raise StoreError(
                "store %s rejected %r: %s" % (self.url, op, reply.get("error"))
            )
        return reply, reply_blobs

    def ping(self):
        reply, __ = self._request("ping")
        return reply

    # -- frames ------------------------------------------------------------

    def local_path(self, tier, key):
        return None

    def get_many(self, tier, keys):
        keys = list(keys)
        if not keys:
            return {}
        reply, blobs = self._request(
            "get", {"items": [{"tier": tier, "key": key} for key in keys]}
        )
        out = {}
        blob_iter = iter(blobs)
        for key, found in zip(keys, reply.get("found") or ()):
            if found:
                out[key] = next(blob_iter)
        return out

    def put_many(self, tier, items):
        ordered = sorted(items.items())
        if not ordered:
            return 0
        self._request(
            "put",
            {"items": [{"tier": tier, "key": key} for key, __ in ordered]},
            [data for __, data in ordered],
        )
        return len(ordered)

    def head_many(self, tier, keys):
        keys = list(keys)
        if not keys:
            return set()
        reply, __ = self._request(
            "head", {"items": [{"tier": tier, "key": key} for key in keys]}
        )
        return {
            key for key, found in zip(keys, reply.get("found") or ())
            if found
        }

    def delete_many(self, tier, keys):
        keys = list(keys)
        if not keys:
            return 0
        reply, __ = self._request(
            "delete",
            {"items": [{"tier": tier, "key": key} for key in keys]},
        )
        return int(reply.get("deleted") or 0)

    def touch_many(self, tier, keys, ts=None):
        keys = list(keys)
        if not keys:
            return
        fields = {"items": [{"tier": tier, "key": key} for key in keys]}
        if ts is not None:
            fields["ts"] = float(ts)
        self._request("touch", fields)

    def entry_mtime(self, tier, key):
        reply, __ = self._request(
            "head", {"items": [{"tier": tier, "key": key}]}
        )
        mtimes = reply.get("mtimes") or [None]
        return mtimes[0]

    def list_tier(self, tier):
        reply, __ = self._request("list", {"tier": tier})
        return {
            str(key): float(mtime)
            for key, mtime in (reply.get("entries") or {}).items()
        }

    # -- manifests ---------------------------------------------------------

    def manifest_local_path(self, signature):
        return None

    def manifest_get(self, signature):
        reply, blobs = self._request(
            "manifest_get", {"signature": signature}
        )
        etag = reply.get("etag")
        if etag is None:
            return None, None
        return blobs[0].decode("utf-8"), etag

    def manifest_head(self, signature):
        reply, __ = self._request(
            "manifest_head", {"signature": signature}
        )
        return reply.get("etag")

    def manifest_version(self, signature):
        return self.manifest_head(signature)

    def manifest_cas(self, signature, text, expect_etag, stats=None):
        reply, blobs = self._request(
            "manifest_cas",
            {"signature": signature, "etag": expect_etag},
            [text.encode("utf-8")],
        )
        if reply.get("committed"):
            return True, reply.get("etag"), text
        current = blobs[0].decode("utf-8") if blobs else None
        return False, reply.get("etag"), current

    def manifest_put(self, signature, text, stats=None):
        reply, __ = self._request(
            "manifest_put", {"signature": signature}, [text.encode("utf-8")]
        )
        return reply.get("etag")

    def manifest_list(self):
        reply, __ = self._request("manifest_list")
        return {
            str(token): float(mtime)
            for token, mtime in (reply.get("manifests") or {}).items()
        }

    def manifest_delete(self, token, stats=None):
        reply, __ = self._request("manifest_delete", {"token": token})
        return bool(reply.get("deleted"))

    # -- garbage collection ------------------------------------------------

    def gc(self, cutoff_days=30.0, now=None, stats=None,
           extra_live_sum=(), extra_live_ast=(), _after_scan=None):
        """Server-side sweep; client pins ship inside the request, so a
        daemon's warm state protects remote frames exactly like local
        ones.  ``_after_scan`` is local-test machinery and does not
        travel."""
        fields = {
            "cutoff_days": float(cutoff_days),
            "extra_live_sum": sorted(extra_live_sum),
            "extra_live_ast": sorted(extra_live_ast),
        }
        if now is not None:
            fields["now"] = float(now)
        reply, __ = self._request("gc", fields)
        return {
            str(name): int(value)
            for name, value in (reply.get("gc") or {}).items()
        }


class TieredStore:
    """A local write-through overlay in front of a remote store.

    Reads are overlay-first (a warm local hit never touches the
    network); remote reads and all writes are written through, so the
    overlay converges to the working set.  Manifests are arbitrated by
    the remote (its CAS is the source of truth) and mirrored locally on
    every committed write, so a later offline run still has warm state.

    Any :class:`StoreError` flips the tier into *degraded* mode: the
    remote is dropped for the rest of the run (``store_degraded`` is
    counted once, each skipped remote operation as a
    ``store_fallbacks``), and every operation keeps working against the
    overlay alone -- an unreachable store can cost warmth, never a run.
    """

    def __init__(self, local, remote, stats=None):
        self.local = local
        self.remote = remote
        self.stats = stats
        self.degraded = False

    @property
    def prefers_batch(self):
        return not self.degraded and self.remote is not None

    def bind_stats(self, stats):
        if self.stats is None:
            self.stats = stats
        for backend in (self.local, self.remote):
            if backend is not None:
                backend.bind_stats(stats)

    def close(self):
        for backend in (self.local, self.remote):
            if backend is not None:
                backend.close()

    def _count(self, name, amount=1):
        if self.stats is not None:
            self.stats.add(name, amount)

    def _degrade(self, err):
        if not self.degraded:
            self.degraded = True
            self._count("store_degraded")
            if self.stats is not None:
                self.stats.record_degradation(
                    "store",
                    "remote store unavailable (%s); continuing local-only"
                    % err,
                )

    def _remote_ok(self):
        if self.remote is None:
            return False
        if self.degraded:
            self._count("store_fallbacks")
            return False
        return True

    def count_overlay_hit(self, amount=1):
        self._count("store_overlay_hits", amount)

    # -- frames ------------------------------------------------------------

    def local_path(self, tier, key):
        if self.local is None:
            return None
        return self.local.local_path(tier, key)

    def get_many(self, tier, keys):
        keys = list(keys)
        out = {}
        if self.local is not None:
            out = self.local.get_many(tier, keys)
            if out:
                self.count_overlay_hit(len(out))
        missing = [key for key in keys if key not in out]
        if missing and self._remote_ok():
            try:
                fetched = self.remote.get_many(tier, missing)
            except StoreError as err:
                self._degrade(err)
                fetched = {}
            if fetched and self.local is not None:
                self.local.put_many(tier, fetched)
            out.update(fetched)
        return out

    def put_many(self, tier, items):
        count = 0
        if self.local is not None:
            count = self.local.put_many(tier, items)
        if self._remote_ok():
            try:
                count = max(count, self.remote.put_many(tier, items))
            except StoreError as err:
                self._degrade(err)
        return count

    def head_many(self, tier, keys):
        keys = list(keys)
        found = set()
        if self.local is not None:
            found = self.local.head_many(tier, keys)
        missing = [key for key in keys if key not in found]
        if missing and self._remote_ok():
            try:
                found |= self.remote.head_many(tier, missing)
            except StoreError as err:
                self._degrade(err)
        return found

    def delete_many(self, tier, keys):
        deleted = 0
        if self.local is not None:
            deleted = self.local.delete_many(tier, keys)
        if self._remote_ok():
            try:
                deleted = max(deleted, self.remote.delete_many(tier, keys))
            except StoreError as err:
                self._degrade(err)
        return deleted

    def touch_many(self, tier, keys, ts=None):
        if self.local is not None:
            self.local.touch_many(tier, keys, ts=ts)
        if self._remote_ok():
            try:
                self.remote.touch_many(tier, keys, ts=ts)
            except StoreError as err:
                self._degrade(err)

    def entry_mtime(self, tier, key):
        if self.local is not None:
            mtime = self.local.entry_mtime(tier, key)
            if mtime is not None:
                return mtime
        if self._remote_ok():
            try:
                return self.remote.entry_mtime(tier, key)
            except StoreError as err:
                self._degrade(err)
        return None

    def list_tier(self, tier):
        out = {}
        if self._remote_ok():
            try:
                out = self.remote.list_tier(tier)
            except StoreError as err:
                self._degrade(err)
        if self.local is not None:
            out.update(self.local.list_tier(tier))
        return out

    # -- manifests ---------------------------------------------------------

    def manifest_local_path(self, signature):
        if self.local is None:
            return None
        return self.local.manifest_local_path(signature)

    def manifest_get(self, signature):
        if self._remote_ok():
            try:
                text, etag = self.remote.manifest_get(signature)
                if text is None and self.local is not None:
                    # Rejoin after offline work: seed the remote with the
                    # overlay's manifest so its state is not lost.  A
                    # rival seeding first simply wins the CAS; we adopt
                    # its document.
                    local_text, __ = self.local.manifest_get(signature)
                    if local_text is not None:
                        ok, new_etag, current = self.remote.manifest_cas(
                            signature, local_text, None
                        )
                        return (
                            (local_text, new_etag) if ok
                            else (current, new_etag)
                        )
                return text, etag
            except StoreError as err:
                self._degrade(err)
        if self.local is not None:
            return self.local.manifest_get(signature)
        return None, None

    def manifest_head(self, signature):
        if self._remote_ok():
            try:
                return self.remote.manifest_head(signature)
            except StoreError as err:
                self._degrade(err)
        if self.local is not None:
            return self.local.manifest_head(signature)
        return None

    def manifest_version(self, signature):
        if self._remote_ok():
            try:
                return self.remote.manifest_version(signature)
            except StoreError as err:
                self._degrade(err)
        if self.local is not None:
            return self.local.manifest_version(signature)
        return None

    def manifest_cas(self, signature, text, expect_etag, stats=None):
        if self._remote_ok():
            try:
                ok, etag, current = self.remote.manifest_cas(
                    signature, text, expect_etag, stats=stats
                )
                if ok and self.local is not None:
                    self.local.manifest_put(signature, text, stats=stats)
                return ok, etag, current
            except StoreError as err:
                self._degrade(err)
        if self.local is not None:
            return self.local.manifest_cas(
                signature, text, expect_etag, stats=stats
            )
        # No storage at all left: accept the write so the merge loop
        # terminates -- a lost manifest costs the next run warmth, which
        # the degradation record already announced.
        return True, etag_of(text), text

    def manifest_put(self, signature, text, stats=None):
        etag = None
        if self.local is not None:
            etag = self.local.manifest_put(signature, text, stats=stats)
        if self._remote_ok():
            try:
                etag = self.remote.manifest_put(signature, text, stats=stats)
            except StoreError as err:
                self._degrade(err)
        return etag if etag is not None else etag_of(text)

    def manifest_list(self):
        out = {}
        if self._remote_ok():
            try:
                out = self.remote.manifest_list()
            except StoreError as err:
                self._degrade(err)
        if self.local is not None:
            out.update(self.local.manifest_list())
        return out

    def manifest_delete(self, token, stats=None):
        deleted = False
        if self.local is not None:
            deleted = self.local.manifest_delete(token, stats=stats)
        if self._remote_ok():
            try:
                deleted = self.remote.manifest_delete(
                    token, stats=stats
                ) or deleted
            except StoreError as err:
                self._degrade(err)
        return deleted

    # -- garbage collection ------------------------------------------------

    def gc(self, cutoff_days=30.0, now=None, stats=None,
           extra_live_sum=(), extra_live_ast=(), _after_scan=None):
        """Sweep both sides: the overlay locally (with the full locked
        pin discipline) and the remote server-side, shipping the same
        extra-live pins.  Counters are summed across tiers."""
        counters = {}
        if self.local is not None:
            counters = dict(self.local.gc(
                cutoff_days=cutoff_days, now=now, stats=stats,
                extra_live_sum=extra_live_sum, extra_live_ast=extra_live_ast,
                _after_scan=_after_scan,
            ))
        if self._remote_ok():
            try:
                remote_counters = self.remote.gc(
                    cutoff_days=cutoff_days, now=now, stats=stats,
                    extra_live_sum=extra_live_sum,
                    extra_live_ast=extra_live_ast,
                )
                for name, value in remote_counters.items():
                    counters[name] = counters.get(name, 0) + value
            except StoreError as err:
                self._degrade(err)
        return counters


def open_store(cache_dir=None, store_url=None, stats=None, timeout=10.0):
    """The backend for a (cache_dir, store_url) configuration.

    - both: a :class:`TieredStore` (local overlay + remote);
    - ``store_url`` only: a remote-backed tier with no overlay (still a
      TieredStore, for the degradation semantics);
    - ``cache_dir`` only: a plain :class:`LocalStore` (the pre-store
      behavior, byte for byte);
    - neither: None (caching disabled).
    """
    if store_url:
        remote = RemoteStore(store_url, stats=stats, timeout=timeout)
        local = (
            LocalStore(root=cache_dir, stats=stats)
            if cache_dir else None
        )
        return TieredStore(local, remote, stats=stats)
    if cache_dir:
        return LocalStore(root=cache_dir, stats=stats)
    return None
