/* Kernel-flavoured torture: attributes, statics, goto ladders, the
   list_for_each shape, and error-path discipline. */

typedef unsigned int u32;
typedef unsigned long ulong;

struct list_node { struct list_node *next; void *payload; };
struct queue { struct list_node *head; int len; int lck; };

static struct queue global_q;
static int stats_enqueued;

static __inline__ int __attribute__((always_inline)) q_len(struct queue *q) {
    return q->len;
}

int q_enqueue(struct queue *q, void *payload) __attribute__((warn_unused_result));

int q_enqueue(struct queue *q, void *payload) {
    struct list_node *node = kmalloc(sizeof(struct list_node));
    int rc = 0;

    if (!node)
        return -1;
    node->payload = payload;

    lock(&q->lck);
    if (q->len >= 1024) {
        rc = -2;
        goto out_free;
    }
    node->next = q->head;
    q->head = node;
    q->len++;
    stats_enqueued++;
    unlock(&q->lck);
    return 0;

out_free:
    unlock(&q->lck);
    kfree(node);
    return rc;
}

void *q_dequeue(struct queue *q) {
    struct list_node *node;
    void *payload = 0;

    lock(&q->lck);
    node = q->head;
    if (node) {
        q->head = node->next;
        q->len--;
    }
    unlock(&q->lck);

    if (node) {
        payload = node->payload;
        kfree(node);
    }
    return payload;
}

int q_walk(struct queue *q, int (*visit)(void *)) {
    struct list_node *cursor;
    int visited = 0;

    lock(&q->lck);
    for (cursor = q->head; cursor; cursor = cursor->next) {
        if (visit(cursor->payload))
            visited++;
    }
    unlock(&q->lck);
    return visited;
}

u32 q_checksum(const struct queue *q) {
    u32 sum = 0;
    const struct list_node *cursor;
    for (cursor = q->head; cursor != 0; cursor = cursor->next)
        sum = (sum << 3) ^ (u32)(ulong)cursor->payload;
    return sum;
}
