"""The ``xgcc`` command line interface.

Usage::

    xgcc --checker free --checker lock file1.c file2.c
    xgcc --metal my_checker.metal --rank statistical src/*.c
    xgcc --checker lock --jobs 4 --cache-dir .xgcc-cache src/*.c
    xgcc --checker lock --watch src --cache-dir .xgcc-cache \\
         --daemon-socket /tmp/xgccd.sock          # run the daemon
    xgcc --daemon-socket /tmp/xgccd.sock --daemon-request analyze
    xgcc --list-checkers
"""

import argparse
import functools
import os
import sys

from repro.checkers import ALL_CHECKERS
from repro.driver.project import Project
from repro.engine.analysis import AnalysisOptions
from repro.engine.history import HistoryDatabase
from repro.metal.language import compile_metal
from repro.ranking import rank_reports


def build_parser():
    parser = argparse.ArgumentParser(
        prog="xgcc",
        description="metal/xgcc reproduction: system-specific static analysis",
    )
    parser.add_argument("files", nargs="*", help="C source files to analyze")
    parser.add_argument(
        "--checker",
        "-c",
        action="append",
        default=[],
        choices=sorted(ALL_CHECKERS),
        help="built-in checker to run (repeatable)",
    )
    parser.add_argument(
        "--metal",
        "-m",
        action="append",
        default=[],
        help="metal extension file to compile and run (repeatable)",
    )
    parser.add_argument("--list-checkers", action="store_true")
    parser.add_argument(
        "--infer",
        choices=["pairs", "retcheck", "nullarg"],
        action="append",
        default=[],
        help="statistical rule inference: 'pairs' (must-be-paired "
        "functions), 'retcheck' (must-check-result functions), or "
        "'nullarg' (must-not-be-NULL argument positions)",
    )
    parser.add_argument(
        "--min-z",
        type=float,
        default=1.0,
        help="z-score threshold for inferred rules (default 1.0)",
    )
    parser.add_argument(
        "--rank",
        choices=["generic", "severity", "statistical", "none"],
        default="severity",
        help="error ranking mode (default: severity + generic)",
    )
    parser.add_argument("--history", help="history DB for false-positive suppression")
    parser.add_argument(
        "--triage", metavar="FILE",
        help="triage file (docs/REPORTS.md): suppressions, severity "
        "overrides, and false-positive marks applied to this run's "
        "reports; merged over any shared triage state in the store",
    )
    parser.add_argument(
        "--triage-suppress", metavar="KEY",
        help="record a suppression -- KEY is a stable report hash or "
        "'rule:ID' -- into --triage FILE when given, else into the "
        "shared store (--cache-dir/--store-url); with no input files "
        "this records and exits",
    )
    parser.add_argument(
        "--triage-reason", metavar="TEXT",
        help="provenance note stored with --triage-suppress",
    )
    parser.add_argument(
        "--record-run", action="store_true",
        help="persist this run's structured reports in the store's run "
        "history (requires --cache-dir or --store-url); the run id is "
        "printed on stderr and usable with --diff",
    )
    parser.add_argument(
        "--refine", nargs="?", const="demote", metavar="MODE",
        choices=["annotate", "demote", "drop"],
        help="path-feasibility refinement (docs/REFINE.md): slice each "
        "report's error path and symbolically execute it (intervals + "
        "congruence, no SMT); verdicts ride as report annotations and "
        "feed statistical ranking, and MODE picks what happens to "
        "infeasible reports after ranking: 'demote' (the default) "
        "sinks them below the rest, 'drop' removes them, 'annotate' "
        "leaves the order untouched; verdicts are cached per "
        "(function fingerprint, report hash) in the artifact store",
    )
    parser.add_argument(
        "--prune-runs", type=int, metavar="N",
        help="bound the stored run history to the newest N runs (0 "
        "empties it -- deliberate, not a no-op); with no input files "
        "this prunes and exits, otherwise it runs after --record-run; "
        "with --watch the daemon re-applies the bound after every "
        "recorded run",
    )
    parser.add_argument(
        "--diff", nargs=2, metavar=("BASE", "HEAD"),
        help="no analysis: diff two recorded runs by stable report hash "
        "('latest' and unambiguous id prefixes work); prints new / "
        "resolved / unresolved reports, exit 1 when any are new",
    )
    parser.add_argument("--new", action="store_true",
                        help="with --diff: print only new reports")
    parser.add_argument("--resolved", action="store_true",
                        help="with --diff: print only resolved reports")
    parser.add_argument("--unresolved", action="store_true",
                        help="with --diff: print only unresolved reports")
    parser.add_argument(
        "--report-json", metavar="FILE",
        help="also write the run's structured report model as JSON to "
        "FILE ('-' for stdout); text output is unchanged",
    )
    parser.add_argument("--include", "-I", action="append", default=[],
                        help="preprocessor include path (repeatable)")
    parser.add_argument("--define", "-D", action="append", default=[],
                        help="preprocessor define NAME[=VALUE] (repeatable)")
    parser.add_argument(
        "--matcher", choices=["compiled", "interp"], default=None,
        help="pattern-matching engine: 'compiled' table-driven matchers "
        "(the default; docs/MATCHER.md) or the tree-walking 'interp' "
        "oracle -- both produce byte-identical reports",
    )
    parser.add_argument("--no-interprocedural", action="store_true")
    parser.add_argument("--no-false-path-pruning", action="store_true")
    parser.add_argument("--no-caching", action="store_true")
    parser.add_argument("--no-kills", action="store_true")
    parser.add_argument("--no-synonyms", action="store_true")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for both passes (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="persistent content-addressed AST cache: unchanged files are "
        "loaded instead of re-parsed on re-runs",
    )
    parser.add_argument(
        "--store-url", metavar="URL",
        default=os.environ.get("XGCC_STORE") or None,
        help="shared artifact-store server (tcp://HOST:PORT; defaults to "
        "$XGCC_STORE): cached ASTs, summaries, and manifests are shared "
        "with every client of the store; with --cache-dir the local "
        "cache acts as a write-through overlay, and an unreachable "
        "store degrades the run to local-only instead of failing it",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="persist per-root summaries under --cache-dir and, on "
        "re-runs, re-analyze only functions whose fingerprint changed "
        "(plus their transitive callers); replayed reports are "
        "byte-identical to a cold run",
    )
    parser.add_argument(
        "--cache-gc", action="store_true",
        help="before analyzing (or by itself, with no input files), drop "
        "cached frames not referenced by any manifest newer than "
        "--cache-gc-days and manifests older than it",
    )
    parser.add_argument(
        "--cache-gc-days", type=float, default=30.0, metavar="DAYS",
        help="staleness cutoff for --cache-gc (default 30)",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="degrade instead of aborting: skip files whose pass 1 fails "
        "and roots whose analysis crashes, recording each degradation "
        "in the stats",
    )
    parser.add_argument(
        "--worker-timeout", type=float, metavar="SECONDS",
        help="declare a worker hung after SECONDS; its work is retried "
        "once, then runs in-process",
    )
    parser.add_argument(
        "--max-steps-per-root", type=int, metavar="N",
        help="per-root step budget: a root exceeding it is abandoned "
        "(partial reports kept) while the rest of the run continues",
    )
    parser.add_argument(
        "--max-paths-per-root", type=int, metavar="N",
        help="per-root completed-path budget (see --max-steps-per-root)",
    )
    parser.add_argument(
        "--max-seconds-per-root", type=float, metavar="S",
        help="per-root wall-clock budget (see --max-steps-per-root)",
    )
    parser.add_argument(
        "--watch", action="append", default=[], metavar="DIR",
        help="run as an analysis daemon (xgccd) watching DIR for edits "
        "(repeatable); requires --cache-dir and --daemon-socket, implies "
        "--incremental; serves requests until a shutdown request",
    )
    parser.add_argument(
        "--daemon-socket", metavar="PATH",
        help="UNIX socket path the daemon listens on (with --watch) or a "
        "client request goes to (with --daemon-request)",
    )
    parser.add_argument(
        "--daemon-request", metavar="OP",
        choices=["analyze", "stats", "gc", "ping", "shutdown"],
        help="client mode: send OP to the daemon at --daemon-socket and "
        "print its answer ('analyze' prints ranked reports, exit 1 when "
        "any; other ops print JSON)",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="daemon idle fingerprint-poll interval (default 0.5)",
    )
    parser.add_argument(
        "--http-port", type=int, metavar="PORT",
        help="with --watch: also serve the multi-client HTTP report API "
        "(GET /runs, /diff, POST /triage; docs/REPORTS.md) on PORT "
        "(0 = any free port)",
    )
    parser.add_argument("--stats", action="store_true",
                        help="print engine + driver stats")
    parser.add_argument(
        "--stats-json", metavar="FILE",
        help="dump driver/engine stats as JSON to FILE",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the why-trace under each report (§3.2)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report output format",
    )
    parser.add_argument(
        "--dump-cfg", action="store_true",
        help="dump every function's CFG instead of analyzing",
    )
    parser.add_argument(
        "--dump-dot", action="store_true",
        help="dump CFGs in Graphviz DOT syntax",
    )
    parser.add_argument(
        "--dump-callgraph", action="store_true",
        help="dump the call graph (roots marked with *)",
    )
    parser.add_argument(
        "--dump-summaries", action="store_true",
        help="after analyzing, dump Figure-5-style block/suffix summaries",
    )
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run(parser, args)
    except OSError as error:
        print("xgcc: %s" % error, file=sys.stderr)
        return 2
    except Exception as error:  # SourceError and friends: diagnostics
        from repro.cfront.source import SourceError
        from repro.metal.language import MetalError

        if isinstance(error, (SourceError, MetalError)):
            print("xgcc: %s" % error, file=sys.stderr)
            return 2
        raise


def _open_backend(args, stats=None):
    """The (cache_dir, store_url) backend, or None when neither is set."""
    from repro.driver.store import open_store

    return open_store(cache_dir=args.cache_dir, store_url=args.store_url,
                      stats=stats)


def _load_triage(args, backend):
    """The effective triage state: shared store state (when a backend
    exists) with any ``--triage FILE`` entries merged over it."""
    from repro.reports.triage import TriageError, TriageStore

    store = TriageStore()
    if backend is not None:
        try:
            store.merge(TriageStore.load_backend(backend))
        except TriageError as err:
            print("xgcc: ignoring shared triage state: %s" % err,
                  file=sys.stderr)
    if args.triage and os.path.exists(args.triage):
        store.merge(TriageStore.load(args.triage))
    return store


def _parse_triage_key(token):
    """``('rule', id)`` for ``rule:ID`` tokens, else ``('hash', token)``."""
    if token.startswith("rule:"):
        return "rule", token[len("rule:"):]
    return "hash", token


def _triage_record_mode(parser, args):
    """``xgcc --triage-suppress KEY`` with no input files: record the
    suppression and exit."""
    from repro.reports.triage import TriageStore

    kind, key = _parse_triage_key(args.triage_suppress)
    if args.triage:
        store = TriageStore.load_path(args.triage)
        store._make(kind, key, reason=args.triage_reason)
        store.save(args.triage)
        where = args.triage
    else:
        backend = _open_backend(args)
        if backend is None:
            parser.error(
                "--triage-suppress needs --triage FILE, --cache-dir, or "
                "--store-url"
            )
        store = TriageStore.load_backend(backend)
        store._make(kind, key, reason=args.triage_reason)
        store.save_backend(backend)
        where = "shared store"
    print("xgcc: triaged %s %r (%d entries in %s)"
          % (kind, key, len(store), where), file=sys.stderr)
    return 0


def _prune_runs_mode(parser, args):
    """``xgcc --prune-runs N`` with no input files: bound the stored run
    history and exit (``N=0`` empties it)."""
    from repro.reports.history import RunHistory, RunHistoryError

    backend = _open_backend(args)
    if backend is None:
        parser.error("--prune-runs requires --cache-dir or --store-url")
    try:
        deleted = RunHistory(backend).prune(keep=args.prune_runs)
    except RunHistoryError as error:
        print("xgcc: %s" % error, file=sys.stderr)
        return 2
    print("xgcc: pruned %d stored run(s) (keep=%d)"
          % (deleted, args.prune_runs), file=sys.stderr)
    return 0


#: ``--diff`` bucket order (and the flag for each).
_DIFF_BUCKETS = ("new", "resolved", "unresolved")


def _diff_mode(parser, args):
    """``xgcc --diff BASE HEAD``: hash set-difference between two
    recorded runs -- no analysis runs."""
    import json

    from repro.reports.history import RunHistory, RunHistoryError
    from repro.reports.model import Report

    backend = _open_backend(args)
    if backend is None:
        parser.error("--diff requires --cache-dir or --store-url")
    base, head = args.diff
    triage = _load_triage(args, backend)
    try:
        diff = RunHistory(backend).diff(base, head, triage=triage)
    except RunHistoryError as error:
        print("xgcc: %s" % error, file=sys.stderr)
        return 2
    selected = [
        bucket for bucket in _DIFF_BUCKETS if getattr(args, bucket)
    ] or list(_DIFF_BUCKETS)
    if args.format == "json":
        doc = {bucket: diff[bucket] for bucket in selected}
        doc.update(base=diff["base"], head=diff["head"],
                   suppressed=diff["suppressed"])
        print(json.dumps(doc, indent=2))
    else:
        bare = len(selected) == 1
        for bucket in selected:
            docs = diff[bucket]
            if not bare:
                print("== %s (%d) ==" % (bucket, len(docs)))
            for doc in docs:
                print(Report.from_dict(doc).format())
    return 1 if diff["new"] else 0


def _make_project(args):
    defines = {}
    for item in args.define:
        name, __, value = item.partition("=")
        defines[name] = value or "1"
    project = Project(include_paths=args.include, defines=defines,
                      cache_dir=args.cache_dir, keep_going=args.keep_going,
                      store_url=getattr(args, "store_url", None))
    project.compile_files(args.files, jobs=args.jobs,
                          worker_timeout=args.worker_timeout)
    return project


def _build_extensions(checker_names, metal_sources):
    """Rebuild the CLI extension list (also runs inside worker processes,
    where compiled extensions cannot be shipped by pickle)."""
    extensions = [ALL_CHECKERS[name]() for name in checker_names]
    for text, path in metal_sources:
        extensions.append(compile_metal(text, path))
    return extensions


def _dump_mode(args):
    from repro.cfg.builder import build_cfg
    from repro.driver.dump import dump_callgraph, dump_cfg, dump_cfg_dot

    project = _make_project(args)
    if args.dump_callgraph:
        print(dump_callgraph(project.callgraph))
    if args.dump_cfg or args.dump_dot:
        for name in sorted(project.callgraph.functions):
            cfg = build_cfg(project.callgraph.functions[name])
            print(dump_cfg_dot(cfg) if args.dump_dot else dump_cfg(cfg))
            print()
    return 0


def _read_metal_sources(args):
    metal_sources = []
    for path in args.metal:
        with open(path) as handle:
            metal_sources.append((handle.read(), path))
    return metal_sources


def _daemon_client_mode(parser, args):
    """``xgcc --daemon-socket S --daemon-request OP``: one request to a
    running daemon, answer printed, daemon exit-code conventions."""
    import json

    from repro.driver.daemon import DaemonClient, DaemonError

    if not args.daemon_socket:
        parser.error("--daemon-request requires --daemon-socket")
    try:
        with DaemonClient(args.daemon_socket) as client:
            fields = {}
            if args.daemon_request == "gc":
                fields["days"] = args.cache_gc_days
            reply = client.request(args.daemon_request, **fields)
    except DaemonError as error:
        print("xgcc: %s" % error, file=sys.stderr)
        return 2
    if not reply.get("ok"):
        print("xgcc: daemon error: %s" % reply.get("error"), file=sys.stderr)
        return 2
    if args.daemon_request == "analyze":
        # Print exactly what a cold run would: the ranked report lines.
        sys.stdout.write(reply.get("reports", ""))
        for entry in reply.get("degradations", ()):
            print("xgcc: degraded: %s" % entry, file=sys.stderr)
        return 1 if reply.get("report_count") else 0
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0


def _daemon_mode(parser, args):
    """``xgcc --watch DIR --daemon-socket S``: run xgccd in the
    foreground until a shutdown request arrives."""
    from repro.driver.daemon import XgccDaemon
    from repro.driver.session import IncrementalSession, session_signature

    if not args.daemon_socket:
        parser.error("--watch requires --daemon-socket")
    if not args.cache_dir and not args.store_url:
        parser.error("--watch requires --cache-dir or --store-url")

    metal_sources = _read_metal_sources(args)
    extensions = _build_extensions(args.checker, metal_sources)
    if not extensions:
        parser.error("no checkers selected (use --checker or --metal)")

    defines = {}
    for item in args.define:
        name, __, value = item.partition("=")
        defines[name] = value or "1"
    options = _make_options(args)
    signature = session_signature(
        checker_names=args.checker,
        metal_texts=[text for text, __ in metal_sources],
        options=options,
    )
    session = IncrementalSession(args.cache_dir, signature,
                                 pin_warm_state=True,
                                 store_url=args.store_url)
    factory = functools.partial(
        _build_extensions, tuple(args.checker), tuple(metal_sources)
    )
    daemon = XgccDaemon(
        watch_roots=args.watch,
        extension_factory=factory,
        session=session,
        socket_path=args.daemon_socket,
        files=args.files,
        include_paths=args.include,
        defines=defines,
        cache_dir=args.cache_dir,
        store_url=args.store_url,
        options=options,
        rank=args.rank,
        refine=args.refine,
        run_keep=args.prune_runs,
        jobs=args.jobs,
        worker_timeout=args.worker_timeout,
        poll_interval=args.poll_interval,
    )
    http_server = None
    if args.http_port is not None:
        from repro.driver.report_server import ReportServer

        http_server = ReportServer(daemon=daemon,
                                   backend=session.backend,
                                   port=args.http_port)
        http_server.start()
        print("xgccd: report API on %s" % http_server.url, file=sys.stderr)
    print("xgccd: watching %s, serving on %s"
          % (", ".join(args.watch) or "<files>", args.daemon_socket),
          file=sys.stderr)
    try:
        daemon.serve_forever()
    finally:
        if http_server is not None:
            http_server.stop()
    if args.stats:
        for line in daemon.stats.format_lines():
            print("# %s" % line, file=sys.stderr)
    if args.stats_json:
        daemon.stats.dump_json(args.stats_json)
    return 0


def _make_options(args):
    return AnalysisOptions(
        interprocedural=not args.no_interprocedural,
        false_path_pruning=not args.no_false_path_pruning,
        caching=not args.no_caching,
        kills=not args.no_kills,
        synonyms=not args.no_synonyms,
        max_steps_per_root=args.max_steps_per_root,
        max_paths_per_root=args.max_paths_per_root,
        max_seconds_per_root=args.max_seconds_per_root,
        root_error_policy="degrade" if args.keep_going else "raise",
        matcher=args.matcher,
    )


def _run(parser, args):

    if args.list_checkers:
        for name in sorted(ALL_CHECKERS):
            print(name)
        return 0

    if args.daemon_request:
        return _daemon_client_mode(parser, args)

    if args.watch:
        return _daemon_mode(parser, args)

    if args.diff:
        return _diff_mode(parser, args)

    if args.triage_suppress and not args.files:
        return _triage_record_mode(parser, args)

    if args.prune_runs is not None and not args.files:
        return _prune_runs_mode(parser, args)

    if args.cache_gc and not args.cache_dir and not args.store_url:
        parser.error("--cache-gc requires --cache-dir or --store-url")

    if not args.files and not args.cache_gc:
        parser.error("no input files")

    if args.incremental and not args.cache_dir and not args.store_url:
        parser.error("--incremental requires --cache-dir or --store-url")
    if args.incremental and args.dump_summaries:
        # Figure-5 summary dumps need the live per-block tables of a full
        # serial run; replayed roots have none.
        parser.error("--dump-summaries is incompatible with --incremental")

    gc_counters = None
    if args.cache_gc:
        from repro.driver.cache import collect_cache_garbage

        gc_backend = None
        if args.store_url:
            from repro.driver.store import open_store

            gc_backend = open_store(
                cache_dir=args.cache_dir, store_url=args.store_url
            )
        gc_counters = collect_cache_garbage(
            args.cache_dir, cutoff_days=args.cache_gc_days,
            backend=gc_backend,
        )
        if not args.files:
            # GC-only invocation: sweep, report, done.
            from repro.driver.stats import DriverStats

            stats = DriverStats()
            for name, value in gc_counters.items():
                if value:
                    stats.add(name, value)
            if args.stats:
                for line in stats.format_lines():
                    print("# %s" % line, file=sys.stderr)
            if args.stats_json:
                stats.dump_json(args.stats_json)
            return 0

    if args.dump_cfg or args.dump_dot or args.dump_callgraph:
        return _dump_mode(args)

    metal_sources = _read_metal_sources(args)
    extensions = _build_extensions(args.checker, metal_sources)
    if not extensions and not args.infer:
        parser.error("no checkers selected (use --checker, --metal, or --infer)")

    from repro.metal.validate import validate as validate_extension

    for extension in extensions:
        for finding in validate_extension(extension):
            print("xgcc: %s: %s" % (extension.name, finding), file=sys.stderr)
            if finding.level == "error":
                return 2

    project = _make_project(args)
    if gc_counters:
        for name, value in gc_counters.items():
            if value:
                project.stats.add(name, value)

    options = _make_options(args)

    reports = []
    result = None
    if extensions:
        factory = functools.partial(
            _build_extensions, tuple(args.checker), tuple(metal_sources)
        )
        if args.incremental:
            from repro.driver.session import (
                IncrementalSession,
                session_signature,
            )

            signature = session_signature(
                checker_names=args.checker,
                metal_texts=[text for text, __ in metal_sources],
                options=options,
            )
            session = IncrementalSession(
                args.cache_dir, signature,
                backend=project.store_backend,
            )
            result = project.run(extensions, options, jobs=args.jobs,
                                 extension_factory=factory,
                                 worker_timeout=args.worker_timeout,
                                 incremental=session)
        elif args.jobs > 1 and not args.dump_summaries:
            # Summary tables are worker-local; --dump-summaries forces the
            # serial path below.
            result = project.run(extensions, options, jobs=args.jobs,
                                 extension_factory=factory,
                                 worker_timeout=args.worker_timeout)
        else:
            analysis = project.analysis(options)
            result = analysis.run(extensions)
            if args.dump_summaries:
                from repro.driver.dump import dump_summaries

                for ext_name, table in result.tables.items():
                    print("### summaries for %s" % ext_name, file=sys.stderr)
                    print(dump_summaries(analysis, table), file=sys.stderr)
        reports.extend(result.reports)

    if "pairs" in args.infer:
        from repro.checkers import infer_pairs, make_pair_checker

        pairs = [
            p
            for p in infer_pairs(project.callgraph)
            if p.z_score >= args.min_z and p.counterexamples > 0
        ]
        for pair in pairs:
            print(
                "# inferred rule: %s() must be followed by %s() "
                "(e=%d c=%d z=%.2f)"
                % (pair.first, pair.second, pair.examples,
                   pair.counterexamples, pair.z_score),
                file=sys.stderr,
            )
            pair_result = project.run(make_pair_checker(pair.first, pair.second),
                                      options)
            reports.extend(pair_result.reports)
    if "retcheck" in args.infer:
        from repro.checkers import report_deviant_sites

        reports.extend(
            report_deviant_sites(project.callgraph, min_z=args.min_z)
        )
    if "nullarg" in args.infer:
        from repro.checkers import report_null_argument_sites

        reports.extend(
            report_null_argument_sites(project.callgraph, min_z=args.min_z)
        )
    if args.history:
        db = HistoryDatabase.load(args.history) if os.path.exists(args.history) else HistoryDatabase()
        reports = db.filter(reports)

    if args.triage_suppress:
        # Record first, then let the fresh entry suppress in this very
        # run (--triage-suppress HASH + re-run in one invocation).
        _triage_record_mode(parser, args)

    triage = _load_triage(args, project.store_backend)
    if len(triage):
        reports, __ = triage.apply(reports, stats=project.stats)

    if args.refine:
        from repro.cfg.fingerprint import fingerprint_tables
        from repro.refine import apply_refine_mode, refine_reports

        __, fingerprints = fingerprint_tables(project.callgraph)
        refine_reports(reports, project.callgraph,
                       stats=project.stats,
                       backend=project.store_backend,
                       fingerprints=fingerprints)

    reports = rank_reports(reports, args.rank,
                           result.log if result is not None else None)

    if args.refine:
        reports = apply_refine_mode(reports, args.refine)

    if args.record_run:
        from repro.reports.history import RunHistory, RunHistoryError

        backend = project.store_backend
        if backend is None:
            parser.error("--record-run requires --cache-dir or --store-url")
        try:
            run_id = RunHistory(backend, stats=project.stats).record_run(
                reports,
                meta={"checkers": sorted(args.checker), "rank": args.rank},
            )
            print("xgcc: recorded run %s" % run_id, file=sys.stderr)
        except RunHistoryError as error:
            print("xgcc: run not recorded: %s" % error, file=sys.stderr)

    if args.prune_runs is not None:
        from repro.reports.history import RunHistory, RunHistoryError

        backend = project.store_backend
        if backend is None:
            parser.error("--prune-runs requires --cache-dir or --store-url")
        try:
            deleted = RunHistory(backend, stats=project.stats).prune(
                keep=args.prune_runs
            )
            if deleted:
                print("xgcc: pruned %d stored run(s)" % deleted,
                      file=sys.stderr)
        except RunHistoryError as error:
            print("xgcc: runs not pruned: %s" % error, file=sys.stderr)

    if args.report_json:
        from repro.driver.dump import reports_to_json

        project.stats.add("report_json_dumps")
        payload = reports_to_json(reports)
        if args.report_json == "-":
            print(payload)
        else:
            with open(args.report_json, "w") as handle:
                handle.write(payload + "\n")

    if result is not None and result.degraded:
        # Engine-level degradations (abandoned roots) join the driver's
        # own (workers, cache, units) so --stats/--stats-json enumerate
        # everything the run survived.
        project.stats.record_engine_degradations(result.degraded)
        for entry in result.degraded:
            print("xgcc: degraded: %s" % entry.describe(), file=sys.stderr)

    if args.format == "json":
        import json

        from repro.driver.dump import report_legacy_json

        print(json.dumps([report_legacy_json(r) for r in reports], indent=2))
    else:
        from repro.driver.dump import render_reports

        sys.stdout.write(render_reports(reports, trace=args.trace))
    if args.stats:
        if result is not None:
            for key, value in sorted(result.stats.items()):
                print("# %s = %s" % (key, value), file=sys.stderr)
        for line in project.stats.format_lines():
            print("# %s" % line, file=sys.stderr)
    if args.stats_json:
        project.stats.dump_json(
            args.stats_json,
            extra={"engine": dict(result.stats) if result is not None else {}},
        )
    return 1 if reports else 0


if __name__ == "__main__":
    sys.exit(main())
