/* Ring buffer management.
 *
 * Seeded bugs (ground truth, asserted by tests/test_toy_kernel.py):
 *   ring_push_noalloc : missing NULL check of kmalloc    (mallocfail)
 *   ring_reset        : missing unlock on the early path (lock)
 */
#include "kernel.h"

int ring_push(struct ring *r, int n) {
    char *slot = kmalloc(n);
    if (!slot)
        return -EIO;
    lock(&r->lck);
    r->slots[r->head] = slot;
    r->head = (r->head + 1) % RING_SIZE;
    unlock(&r->lck);
    return 0;
}

int ring_push_noalloc(struct ring *r, int n) {
    char *slot = kmalloc(n);
    slot[0] = 0;                    /* BUG: kmalloc may return NULL */
    lock(&r->lck);
    r->slots[r->head] = slot;
    r->head = (r->head + 1) % RING_SIZE;
    unlock(&r->lck);
    return 0;
}

int ring_pop(struct ring *r, char **out) {
    lock(&r->lck);
    if (r->head == r->tail) {
        unlock(&r->lck);
        return -EINVAL;
    }
    *out = r->slots[r->tail];
    r->tail = (r->tail + 1) % RING_SIZE;
    unlock(&r->lck);
    return 0;
}

int ring_reset(struct ring *r, int hard) {
    lock(&r->lck);
    if (hard && r->head != r->tail)
        return -EINVAL;             /* BUG: lock still held */
    r->head = 0;
    r->tail = 0;
    unlock(&r->lck);
    return 0;
}
