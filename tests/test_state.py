"""State representation tests (§3.1, §5.1-5.2)."""

from repro.cfront.parser import parse_expression
from repro.metal import ANY_POINTER, Extension
from repro.metal.sm import PLACEHOLDER
from repro.engine.state import SMInstance, VarInstance, describe_tuple, state_tuples


def make_ext():
    ext = Extension("t")
    ext.state_var("v", ANY_POINTER)
    ext.transition("start", "{ kfree(v) }", to="v.freed")
    return ext


class TestVarInstance:
    def test_tuple_key(self):
        inst = VarInstance("v", parse_expression("p"), "freed")
        gstate, rest = inst.tuple_key("start")
        assert gstate == "start"
        var, __, value, data = rest
        assert var == "v" and value == "freed" and data is None

    def test_structurally_equal_objects_share_key(self):
        a = VarInstance("v", parse_expression("d->ptr"), "freed")
        b = VarInstance("v", parse_expression("d->ptr"), "freed")
        assert a.tuple_key("s") == b.tuple_key("s")
        assert a.uid != b.uid

    def test_copy_preserves_uid_and_metadata(self):
        inst = VarInstance("v", parse_expression("p"), "freed", {"k": 1})
        inst.conditionals_crossed = 3
        clone = inst.copy()
        assert clone.uid == inst.uid
        assert clone.conditionals_crossed == 3
        clone.data["k"] = 2
        assert inst.data["k"] == 1  # deep-enough copy

    def test_data_key_in_tuple(self):
        a = VarInstance("v", parse_expression("p"), "held", {"depth": 1})
        b = VarInstance("v", parse_expression("p"), "held", {"depth": 2})
        assert a.tuple_key("s") != b.tuple_key("s")

    def test_retarget(self):
        inst = VarInstance("v", parse_expression("p"), "freed")
        inst.retarget(parse_expression("q"))
        assert inst.obj.name == "q"
        assert inst.obj_key != VarInstance("v", parse_expression("p"), "x").obj_key


class TestSMInstance:
    def test_initial_state_is_placeholder(self):
        # §5.2: initial state of the free checker is {(start, <>)}
        sm = SMInstance(make_ext())
        assert state_tuples(sm) == {("start", PLACEHOLDER)}

    def test_tuples_after_instance(self):
        sm = SMInstance(make_ext())
        sm.add(VarInstance("v", parse_expression("p"), "freed"))
        tuples = state_tuples(sm)
        assert len(tuples) == 1
        assert ("start", PLACEHOLDER) not in tuples  # placeholder ignored

    def test_find_by_structural_key(self):
        sm = SMInstance(make_ext())
        inst = sm.add(VarInstance("v", parse_expression("a[i]"), "freed"))
        from repro.cfront.astnodes import structural_key

        assert sm.find(structural_key(parse_expression("a[i]"))) is inst
        assert sm.find(structural_key(parse_expression("a[j]"))) is None

    def test_copy_is_deep(self):
        sm = SMInstance(make_ext())
        sm.add(VarInstance("v", parse_expression("p"), "freed"))
        clone = sm.copy()
        clone.active_vars[0].value = "stop"
        clone.gstate = "other"
        assert sm.active_vars[0].value == "freed"
        assert sm.gstate == "start"

    def test_inactive_excluded_from_tuples(self):
        sm = SMInstance(make_ext())
        inst = sm.add(VarInstance("v", parse_expression("p"), "freed"))
        inst.inactive = True
        assert state_tuples(sm) == {("start", PLACEHOLDER)}

    def test_path_data_copied(self):
        sm = SMInstance(make_ext())
        sm.path_data["k"] = 1
        clone = sm.copy()
        clone.path_data["k"] = 2
        assert sm.path_data["k"] == 1

    def test_describe_tuple(self):
        sm = SMInstance(make_ext())
        inst = sm.add(VarInstance("v", parse_expression("p"), "freed"))
        text = describe_tuple(inst.tuple_key("start"))
        assert text == "(start,v:p->freed)"
        assert describe_tuple(("start", PLACEHOLDER)) == "(start,<>)"
