"""AST -> C source text.

Used for error messages (``mc_identifier`` prints the offending expression),
round-trip testing of the parser, and dumping generated workloads.
"""

from repro.cfront import astnodes as ast
from repro.cfront import types as ctypes

# Precedence table mirroring the parser's grammar; higher binds tighter.
_PRECEDENCE = {
    ",": 0,
    "=": 1,
    "?:": 2,
    "||": 3,
    "&&": 4,
    "|": 5,
    "^": 6,
    "&": 7,
    "==": 8,
    "!=": 8,
    "<": 9,
    ">": 9,
    "<=": 9,
    ">=": 9,
    "<<": 10,
    ">>": 10,
    "+": 11,
    "-": 11,
    "*": 12,
    "/": 12,
    "%": 12,
    "unary": 13,
    "postfix": 14,
    "primary": 15,
}


def unparse(node):
    """Render an AST node (expression, statement, or declaration) as C."""
    if node is None:
        return ""
    if isinstance(node, ast.Expr):
        return _expr(node, 0)
    if isinstance(node, ast.Stmt):
        return _stmt(node, 0)
    if isinstance(node, ast.Decl):
        return _decl(node, 0)
    if isinstance(node, ast.TranslationUnit):
        return "\n".join(_decl(d, 0) for d in node.decls) + "\n"
    raise TypeError("cannot unparse %r" % (node,))


def _maybe_paren(text, inner_prec, outer_prec):
    if inner_prec < outer_prec:
        return "(%s)" % text
    return text


def _expr(node, outer_prec):
    if isinstance(node, ast.Ident):
        return node.name
    if isinstance(node, ast.Hole):
        return node.name
    if isinstance(node, (ast.IntLit, ast.FloatLit, ast.CharLit, ast.StringLit)):
        return node.spelling
    if isinstance(node, ast.Unary):
        if node.postfix:
            text = "%s%s" % (_expr(node.operand, _PRECEDENCE["postfix"]), node.op)
            return _maybe_paren(text, _PRECEDENCE["postfix"], outer_prec)
        operand = _expr(node.operand, _PRECEDENCE["unary"])
        # Avoid gluing "- -x" into "--x" (and "& &x" into "&&x"); "**x" is
        # unambiguous since "**" is not a token.
        space = " " if node.op in ("-", "+", "&") and operand.startswith(node.op) else ""
        text = "%s%s%s" % (node.op, space, operand)
        return _maybe_paren(text, _PRECEDENCE["unary"], outer_prec)
    if isinstance(node, ast.Binary):
        prec = _PRECEDENCE[node.op]
        left = _expr(node.left, prec)
        right = _expr(node.right, prec + 1)
        return _maybe_paren("%s %s %s" % (left, node.op, right), prec, outer_prec)
    if isinstance(node, ast.Assign):
        prec = _PRECEDENCE["="]
        left = _expr(node.target, prec + 1)
        right = _expr(node.value, prec)
        return _maybe_paren("%s %s %s" % (left, node.op, right), prec, outer_prec)
    if isinstance(node, ast.Conditional):
        prec = _PRECEDENCE["?:"]
        text = "%s ? %s : %s" % (
            _expr(node.cond, prec + 1),
            _expr(node.then, 0),
            _expr(node.otherwise, prec),
        )
        return _maybe_paren(text, prec, outer_prec)
    if isinstance(node, ast.Call):
        func = _expr(node.func, _PRECEDENCE["postfix"])
        args = ", ".join(_expr(a, _PRECEDENCE["="]) for a in node.args)
        return _maybe_paren("%s(%s)" % (func, args), _PRECEDENCE["postfix"], outer_prec)
    if isinstance(node, ast.Member):
        obj = _expr(node.obj, _PRECEDENCE["postfix"])
        return _maybe_paren(
            "%s%s%s" % (obj, "->" if node.arrow else ".", node.name),
            _PRECEDENCE["postfix"],
            outer_prec,
        )
    if isinstance(node, ast.Index):
        array = _expr(node.array, _PRECEDENCE["postfix"])
        return _maybe_paren(
            "%s[%s]" % (array, _expr(node.index, 0)), _PRECEDENCE["postfix"], outer_prec
        )
    if isinstance(node, ast.Cast):
        text = "(%s)%s" % (_type_name(node.to_type), _expr(node.operand, _PRECEDENCE["unary"]))
        return _maybe_paren(text, _PRECEDENCE["unary"], outer_prec)
    if isinstance(node, ast.SizeofExpr):
        return _maybe_paren(
            "sizeof %s" % _expr(node.operand, _PRECEDENCE["unary"]),
            _PRECEDENCE["unary"],
            outer_prec,
        )
    if isinstance(node, ast.SizeofType):
        return "sizeof(%s)" % _type_name(node.of_type)
    if isinstance(node, ast.Comma):
        text = "%s, %s" % (_expr(node.left, 1), _expr(node.right, 1))
        return _maybe_paren(text, _PRECEDENCE[","], outer_prec)
    if isinstance(node, ast.InitList):
        return "{%s}" % ", ".join(_expr(i, _PRECEDENCE["="]) for i in node.items)
    raise TypeError("cannot unparse expression %r" % (node,))


def _indent(depth):
    return "    " * depth


def _stmt(node, depth):
    pad = _indent(depth)
    if isinstance(node, ast.ExprStmt):
        return "%s%s;" % (pad, _expr(node.expr, 0))
    if isinstance(node, ast.EmptyStmt):
        return "%s;" % pad
    if isinstance(node, ast.Compound):
        lines = ["%s{" % pad]
        for item in node.items:
            if isinstance(item, ast.Decl):
                lines.append(_decl(item, depth + 1))
            else:
                lines.append(_stmt(item, depth + 1))
        lines.append("%s}" % pad)
        return "\n".join(lines)
    if isinstance(node, ast.If):
        text = "%sif (%s)\n%s" % (pad, _expr(node.cond, 0), _stmt_body(node.then, depth))
        if node.otherwise is not None:
            text += "\n%selse\n%s" % (pad, _stmt_body(node.otherwise, depth))
        return text
    if isinstance(node, ast.While):
        return "%swhile (%s)\n%s" % (pad, _expr(node.cond, 0), _stmt_body(node.body, depth))
    if isinstance(node, ast.DoWhile):
        return "%sdo\n%s\n%swhile (%s);" % (
            pad,
            _stmt_body(node.body, depth),
            pad,
            _expr(node.cond, 0),
        )
    if isinstance(node, ast.For):
        if node.init is None:
            init = ";"
        elif isinstance(node.init, ast.ExprStmt):
            init = "%s;" % _expr(node.init.expr, 0)
        else:  # declaration compound
            decls = "; ".join(_decl(d, 0).rstrip(";") for d in node.init.items)
            init = "%s;" % decls
        cond = _expr(node.cond, 0) if node.cond is not None else ""
        step = _expr(node.step, 0) if node.step is not None else ""
        return "%sfor (%s %s; %s)\n%s" % (pad, init, cond, step, _stmt_body(node.body, depth))
    if isinstance(node, ast.Switch):
        return "%sswitch (%s)\n%s" % (pad, _expr(node.cond, 0), _stmt_body(node.body, depth))
    if isinstance(node, ast.Case):
        return "%scase %s:\n%s" % (pad, _expr(node.expr, 0), _stmt(node.stmt, depth + 1))
    if isinstance(node, ast.Default):
        return "%sdefault:\n%s" % (pad, _stmt(node.stmt, depth + 1))
    if isinstance(node, ast.Break):
        return "%sbreak;" % pad
    if isinstance(node, ast.Continue):
        return "%scontinue;" % pad
    if isinstance(node, ast.Return):
        if node.expr is None:
            return "%sreturn;" % pad
        return "%sreturn %s;" % (pad, _expr(node.expr, 0))
    if isinstance(node, ast.Goto):
        return "%sgoto %s;" % (pad, node.label)
    if isinstance(node, ast.Label):
        return "%s%s:\n%s" % (pad, node.name, _stmt(node.stmt, depth))
    if isinstance(node, ast.Decl):
        return _decl(node, depth)
    raise TypeError("cannot unparse statement %r" % (node,))


def _stmt_body(node, depth):
    if isinstance(node, ast.Compound):
        return _stmt(node, depth)
    return _stmt(node, depth + 1)


def _declarator(ctype, name):
    """Render ``ctype name`` with C's inside-out declarator syntax."""
    resolved = ctype
    if isinstance(resolved, ctypes.TypedefType):
        return "%s %s" % (resolved.name, name or "")
    if isinstance(resolved, ctypes.PointerType):
        inner = "*%s" % (name or "")
        if isinstance(resolved.target, (ctypes.FunctionType, ctypes.ArrayType)):
            inner = "(%s)" % inner
        return _declarator(resolved.target, inner)
    if isinstance(resolved, ctypes.ArrayType):
        size = _expr(resolved.size, 0) if resolved.size is not None else ""
        return _declarator(resolved.element, "%s[%s]" % (name or "", size))
    if isinstance(resolved, ctypes.FunctionType):
        params = ", ".join(_declarator(p, "") .strip() for p in resolved.parameters)
        if resolved.varargs:
            params = params + ", ..." if params else "..."
        if not params:
            params = "void"
        return _declarator(resolved.return_type, "%s(%s)" % (name or "", params))
    return "%s %s" % (_type_name(resolved), name or "")


def _type_name(ctype):
    if isinstance(ctype, ctypes.PointerType):
        inner = _type_name(ctype.target)
        return "%s *" % inner
    if isinstance(ctype, ctypes.ArrayType):
        return _declarator(ctype, "").strip()
    if isinstance(ctype, ctypes.FunctionType):
        return _declarator(ctype, "").strip()
    if isinstance(ctype, ctypes.RecordType) and ctype.tag is None:
        # anonymous record (e.g. inside sizeof): render its full body
        return _record_text(ctype, 0).replace("\n", " ")
    return str(ctype)


def _decl(node, depth):
    pad = _indent(depth)
    if isinstance(node, ast.VarDecl):
        storage = "%s " % node.storage if node.storage in ("static", "extern") else ""
        text = "%s%s%s" % (pad, storage, _declarator(node.ctype, node.name).strip())
        if node.init is not None:
            text += " = %s" % _expr(node.init, _PRECEDENCE["="])
        return text + ";"
    if isinstance(node, ast.TypedefDecl):
        return "%stypedef %s;" % (pad, _declarator(node.ctype, node.name).strip())
    if isinstance(node, ast.ParamDecl):
        return _declarator(node.ctype, node.name or "").strip()
    if isinstance(node, ast.RecordDecl):
        return "%s%s;" % (pad, _record_text(node.record_type, depth))
    if isinstance(node, ast.EnumDecl):
        enum = node.enum_type
        body = ", ".join(
            "%s = %d" % (name, value) for name, value in enum.enumerators
        )
        return "%senum %s {%s};" % (pad, enum.tag or "", body)
    if isinstance(node, ast.FunctionDecl):
        storage = "%s " % node.storage if node.storage in ("static", "extern") else ""
        params = ", ".join(_decl(p, 0) for p in node.params)
        if node.varargs:
            params = params + ", ..." if params else "..."
        if not params:
            params = "void"
        # Build the whole declarator inside-out so functions returning
        # function pointers render as "int (*f(int))(args)".
        inner = "%s(%s)" % (node.name, params)
        header = "%s%s%s" % (pad, storage, _declarator(node.return_type, inner).strip())
        if node.body is None:
            return header + ";"
        return "%s\n%s" % (header, _stmt(node.body, depth))
    raise TypeError("cannot unparse declaration %r" % (node,))


def _record_text(record, depth):
    pad = _indent(depth)
    header = "%s %s" % (record.kind, record.tag or "")
    if record.fields is None:
        return header.strip()
    lines = ["%s {" % header.strip()]
    for name, field_type in record.fields:
        lines.append("%s    %s;" % (pad, _declarator(field_type, name).strip()))
    lines.append("%s}" % pad)
    return "\n".join(lines)
